//! Dataset identity, lineage, and data sources.
//!
//! Datasets are *soft state*: a [`DatasetId`] names a distributed object
//! whose per-worker materialization may be evicted at any time and
//! reconstructed from its [`Lineage`] (paper §5.7: "all in-memory data
//! structures are disposable ... in-memory data is reconstructed by
//! reloading the original snapshot" or "by re-executing the operation that
//! created them in the first place").

use crate::error::{EngineError, EngineResult};
use hillview_columnar::{Predicate, Table};
use std::fmt;
use std::sync::Arc;

/// Identifies a distributed dataset (a "partitioned data set" in Sketch
/// terminology, §5.7). Dense small integers; allocated by the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds{}", self.0)
    }
}

/// Names a registered [`DataSource`] plus a snapshot tag. The tag makes the
/// load operation replayable: re-loading must yield the identical snapshot
/// (paper §5.7: "the storage layer \[must\] provide an API to read a
/// particular snapshot of a dataset").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// Registered source name.
    pub source: Arc<str>,
    /// Snapshot tag passed back to the source on (re)load.
    pub snapshot: u64,
}

/// How a dataset is (re)constructed — the redo-log payload.
#[derive(Debug, Clone)]
pub enum Lineage {
    /// Loaded from a storage source.
    Loaded {
        /// What to load.
        spec: SourceSpec,
    },
    /// Rows of `parent` selected by a predicate (paper §5.6 "Selection").
    Filtered {
        /// Parent dataset.
        parent: DatasetId,
        /// Row predicate.
        predicate: Predicate,
    },
    /// `parent` plus a derived column computed by a named UDF (§5.6
    /// "User-defined maps").
    Mapped {
        /// Parent dataset.
        parent: DatasetId,
        /// Registered map function.
        udf: Arc<str>,
        /// Name of the new column.
        new_column: Arc<str>,
    },
}

impl Lineage {
    /// The parent dataset, if any.
    pub fn parent(&self) -> Option<DatasetId> {
        match self {
            Lineage::Loaded { .. } => None,
            Lineage::Filtered { parent, .. } | Lineage::Mapped { parent, .. } => Some(*parent),
        }
    }
}

/// A storage-layer connector: yields one worker's horizontal partitions.
///
/// Implementations exist over generated tables, HVC/CSV directories, etc.
/// Hillview imposes no constraints on how rows are split across workers
/// (paper §2) — only that the same `(worker, snapshot)` pair always yields
/// the same data, so replay after failures reconverges (§5.8).
pub trait DataSource: Send + Sync + 'static {
    /// Registered name.
    fn name(&self) -> &str;

    /// Load the micropartitions belonging to `worker` (of `num_workers`),
    /// each at most `micropartition_rows` rows.
    fn load(
        &self,
        worker: usize,
        num_workers: usize,
        micropartition_rows: usize,
        snapshot: u64,
    ) -> EngineResult<Vec<Table>>;
}

/// Signature of a [`FnSource`] closure: `f(worker, num_workers,
/// micropartition_rows, snapshot)` produces that worker's partitions.
pub type SourceFn = dyn Fn(usize, usize, usize, u64) -> EngineResult<Vec<Table>> + Send + Sync;

/// A [`DataSource`] built from a closure — the usual way benches and tests
/// plug in generated or file-backed data.
pub struct FnSource {
    name: String,
    f: Arc<SourceFn>,
}

impl FnSource {
    /// Wrap `f(worker, num_workers, micropartition_rows, snapshot)`.
    pub fn new(
        name: &str,
        f: impl Fn(usize, usize, usize, u64) -> EngineResult<Vec<Table>> + Send + Sync + 'static,
    ) -> Self {
        FnSource {
            name: name.to_string(),
            f: Arc::new(f),
        }
    }
}

impl DataSource for FnSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(
        &self,
        worker: usize,
        num_workers: usize,
        micropartition_rows: usize,
        snapshot: u64,
    ) -> EngineResult<Vec<Table>> {
        (self.f)(worker, num_workers, micropartition_rows, snapshot)
    }
}

impl fmt::Debug for FnSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnSource({})", self.name)
    }
}

/// A registry of named sources shared by root and workers.
#[derive(Default, Clone)]
pub struct SourceRegistry {
    sources: std::collections::HashMap<Arc<str>, Arc<dyn DataSource>>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source under its own name.
    pub fn register(&mut self, source: Arc<dyn DataSource>) {
        self.sources.insert(Arc::from(source.name()), source);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> EngineResult<Arc<dyn DataSource>> {
        self.sources
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::Unregistered(format!("data source {name:?}")))
    }
}

impl fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SourceRegistry({} sources)", self.sources.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::ColumnKind;

    fn tiny_source() -> FnSource {
        FnSource::new("tiny", |worker, _n, _mp, snapshot| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..4).map(|i| Some(i + worker as i64 * 100 + snapshot as i64)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })
    }

    #[test]
    fn fn_source_loads_per_worker() {
        let s = tiny_source();
        let a = s.load(0, 2, 10, 0).unwrap();
        let b = s.load(1, 2, 10, 0).unwrap();
        assert_eq!(a[0].get(0, "X").unwrap(), hillview_columnar::Value::Int(0));
        assert_eq!(
            b[0].get(0, "X").unwrap(),
            hillview_columnar::Value::Int(100)
        );
    }

    #[test]
    fn snapshot_changes_data() {
        let s = tiny_source();
        let a = s.load(0, 1, 10, 0).unwrap();
        let b = s.load(0, 1, 10, 5).unwrap();
        assert_ne!(a[0].get(0, "X").unwrap(), b[0].get(0, "X").unwrap());
    }

    #[test]
    fn registry_lookup() {
        let mut reg = SourceRegistry::new();
        reg.register(Arc::new(tiny_source()));
        assert!(reg.get("tiny").is_ok());
        assert!(matches!(reg.get("nope"), Err(EngineError::Unregistered(_))));
    }

    #[test]
    fn lineage_parents() {
        let l = Lineage::Loaded {
            spec: SourceSpec {
                source: Arc::from("tiny"),
                snapshot: 0,
            },
        };
        assert_eq!(l.parent(), None);
        let f = Lineage::Filtered {
            parent: DatasetId(1),
            predicate: Predicate::True,
        };
        assert_eq!(f.parent(), Some(DatasetId(1)));
    }
}
