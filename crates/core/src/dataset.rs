//! Dataset identity, lineage, and data sources.
//!
//! Datasets are *soft state*: a [`DatasetId`] names a distributed object
//! whose per-worker materialization may be evicted at any time and
//! reconstructed from its [`Lineage`] (paper §5.7: "all in-memory data
//! structures are disposable ... in-memory data is reconstructed by
//! reloading the original snapshot" or "by re-executing the operation that
//! created them in the first place").

use crate::error::{EngineError, EngineResult};
use hillview_columnar::{BlockCache, Predicate, SegmentMode, Table};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Identifies a distributed dataset (a "partitioned data set" in Sketch
/// terminology, §5.7). Dense small integers; allocated by the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds{}", self.0)
    }
}

/// Names a registered [`DataSource`] plus a snapshot tag. The tag makes the
/// load operation replayable: re-loading must yield the identical snapshot
/// (paper §5.7: "the storage layer \[must\] provide an API to read a
/// particular snapshot of a dataset").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSpec {
    /// Registered source name.
    pub source: Arc<str>,
    /// Snapshot tag passed back to the source on (re)load.
    pub snapshot: u64,
}

/// How a dataset is (re)constructed — the redo-log payload.
#[derive(Debug, Clone)]
pub enum Lineage {
    /// Loaded from a storage source.
    Loaded {
        /// What to load.
        spec: SourceSpec,
    },
    /// Rows of `parent` selected by a predicate (paper §5.6 "Selection").
    Filtered {
        /// Parent dataset.
        parent: DatasetId,
        /// Row predicate.
        predicate: Predicate,
    },
    /// `parent` plus a derived column computed by a named UDF (§5.6
    /// "User-defined maps").
    Mapped {
        /// Parent dataset.
        parent: DatasetId,
        /// Registered map function.
        udf: Arc<str>,
        /// Name of the new column.
        new_column: Arc<str>,
    },
}

impl Lineage {
    /// The parent dataset, if any.
    pub fn parent(&self) -> Option<DatasetId> {
        match self {
            Lineage::Loaded { .. } => None,
            Lineage::Filtered { parent, .. } | Lineage::Mapped { parent, .. } => Some(*parent),
        }
    }
}

/// A storage-layer connector: yields one worker's horizontal partitions.
///
/// Implementations exist over generated tables, HVC/CSV directories, etc.
/// Hillview imposes no constraints on how rows are split across workers
/// (paper §2) — only that the same `(worker, snapshot)` pair always yields
/// the same data, so replay after failures reconverges (§5.8).
pub trait DataSource: Send + Sync + 'static {
    /// Registered name.
    fn name(&self) -> &str;

    /// Load the micropartitions belonging to `worker` (of `num_workers`),
    /// each at most `micropartition_rows` rows.
    fn load(
        &self,
        worker: usize,
        num_workers: usize,
        micropartition_rows: usize,
        snapshot: u64,
    ) -> EngineResult<Vec<Table>>;

    /// Like [`DataSource::load`], but handed the calling worker's block
    /// cache so out-of-core sources can charge faulted-in chunks against
    /// that worker's budget. In-memory sources ignore the cache; the
    /// default implementation delegates to [`DataSource::load`].
    fn load_with_cache(
        &self,
        worker: usize,
        num_workers: usize,
        micropartition_rows: usize,
        snapshot: u64,
        cache: &Arc<BlockCache>,
    ) -> EngineResult<Vec<Table>> {
        let _ = cache;
        self.load(worker, num_workers, micropartition_rows, snapshot)
    }
}

/// Signature of a [`FnSource`] closure: `f(worker, num_workers,
/// micropartition_rows, snapshot)` produces that worker's partitions.
pub type SourceFn = dyn Fn(usize, usize, usize, u64) -> EngineResult<Vec<Table>> + Send + Sync;

/// A [`DataSource`] built from a closure — the usual way benches and tests
/// plug in generated or file-backed data.
pub struct FnSource {
    name: String,
    f: Arc<SourceFn>,
}

impl FnSource {
    /// Wrap `f(worker, num_workers, micropartition_rows, snapshot)`.
    pub fn new(
        name: &str,
        f: impl Fn(usize, usize, usize, u64) -> EngineResult<Vec<Table>> + Send + Sync + 'static,
    ) -> Self {
        FnSource {
            name: name.to_string(),
            f: Arc::new(f),
        }
    }
}

impl DataSource for FnSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(
        &self,
        worker: usize,
        num_workers: usize,
        micropartition_rows: usize,
        snapshot: u64,
    ) -> EngineResult<Vec<Table>> {
        (self.f)(worker, num_workers, micropartition_rows, snapshot)
    }
}

impl fmt::Debug for FnSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnSource({})", self.name)
    }
}

/// A [`DataSource`] over a directory of `hvc` part files — the out-of-core
/// loader, and the reader half of the spilling ingest
/// ([`hillview_storage::SpillingWriter`] writes `part-NNNNN.hvc` files
/// this source consumes).
///
/// Planning is header-only: parts are dealt to workers round-robin and
/// each worker probes its share with [`hillview_storage::probe_file`]
/// (schema, row count, zone maps — no payload I/O), then opens them with
/// [`hillview_storage::read_file_mapped`]. An opened part stays *mapped*:
/// its columns are windows over the file, faulted in block-granular
/// through the worker's [`BlockCache`] as scans touch them, so loading a
/// dataset costs O(headers) and querying it costs only the blocks zone
/// maps cannot prune. Heap fallbacks (v2 files, big-endian hosts) load
/// eagerly and behave exactly as before.
///
/// The directory must be immutable while browsed (paper §2); the snapshot
/// tag is ignored because the directory *is* one snapshot, which keeps
/// replay deterministic trivially.
pub struct HvcDirSource {
    name: String,
    dir: PathBuf,
    mode: SegmentMode,
    /// Fallback cache for loads outside a worker (direct [`DataSource::load`]
    /// calls); worker loads pass their own budgeted cache instead.
    fallback: Arc<BlockCache>,
}

impl HvcDirSource {
    /// A source named `name` over the `hvc` files in `dir`, opened with
    /// the default residency policy ([`SegmentMode::Auto`]: mmap when
    /// compiled in, lazy pread otherwise).
    pub fn new(name: &str, dir: impl Into<PathBuf>) -> Self {
        Self::with_mode(name, dir, SegmentMode::Auto)
    }

    /// Same, pinning how part files are opened (tests force `Heap` to get
    /// an eager baseline, `Pread`/`Mmap` to pin a tier).
    pub fn with_mode(name: &str, dir: impl Into<PathBuf>, mode: SegmentMode) -> Self {
        HvcDirSource {
            name: name.to_string(),
            dir: dir.into(),
            mode,
            fallback: BlockCache::unbounded(),
        }
    }

    /// The directory this source reads.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn storage_err(e: hillview_storage::Error) -> EngineError {
        EngineError::Source(e.to_string())
    }
}

impl DataSource for HvcDirSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn load(
        &self,
        worker: usize,
        num_workers: usize,
        micropartition_rows: usize,
        snapshot: u64,
    ) -> EngineResult<Vec<Table>> {
        self.load_with_cache(
            worker,
            num_workers,
            micropartition_rows,
            snapshot,
            &self.fallback,
        )
    }

    fn load_with_cache(
        &self,
        worker: usize,
        num_workers: usize,
        _micropartition_rows: usize,
        _snapshot: u64,
        cache: &Arc<BlockCache>,
    ) -> EngineResult<Vec<Table>> {
        let parts = hillview_storage::spill::list_parts(&self.dir).map_err(Self::storage_err)?;
        let nw = num_workers.max(1);
        let mut tables = Vec::new();
        for path in parts.iter().skip(worker % nw).step_by(nw) {
            // Header-only probe first: an empty part contributes nothing,
            // and skipping it here costs no payload I/O.
            let info = hillview_storage::probe_file(path).map_err(Self::storage_err)?;
            if info.rows == 0 {
                continue;
            }
            let table = hillview_storage::read_file_mapped(path, cache, self.mode)
                .map_err(Self::storage_err)?;
            tables.push(table);
        }
        Ok(tables)
    }
}

impl fmt::Debug for HvcDirSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HvcDirSource({} @ {})", self.name, self.dir.display())
    }
}

/// A registry of named sources shared by root and workers.
#[derive(Default, Clone)]
pub struct SourceRegistry {
    sources: std::collections::HashMap<Arc<str>, Arc<dyn DataSource>>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source under its own name.
    pub fn register(&mut self, source: Arc<dyn DataSource>) {
        self.sources.insert(Arc::from(source.name()), source);
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> EngineResult<Arc<dyn DataSource>> {
        self.sources
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::Unregistered(format!("data source {name:?}")))
    }
}

impl fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SourceRegistry({} sources)", self.sources.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::ColumnKind;

    fn tiny_source() -> FnSource {
        FnSource::new("tiny", |worker, _n, _mp, snapshot| {
            let t = Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        (0..4).map(|i| Some(i + worker as i64 * 100 + snapshot as i64)),
                    )),
                )
                .build()
                .unwrap();
            Ok(vec![t])
        })
    }

    #[test]
    fn fn_source_loads_per_worker() {
        let s = tiny_source();
        let a = s.load(0, 2, 10, 0).unwrap();
        let b = s.load(1, 2, 10, 0).unwrap();
        assert_eq!(a[0].get(0, "X").unwrap(), hillview_columnar::Value::Int(0));
        assert_eq!(
            b[0].get(0, "X").unwrap(),
            hillview_columnar::Value::Int(100)
        );
    }

    #[test]
    fn snapshot_changes_data() {
        let s = tiny_source();
        let a = s.load(0, 1, 10, 0).unwrap();
        let b = s.load(0, 1, 10, 5).unwrap();
        assert_ne!(a[0].get(0, "X").unwrap(), b[0].get(0, "X").unwrap());
    }

    #[test]
    fn registry_lookup() {
        let mut reg = SourceRegistry::new();
        reg.register(Arc::new(tiny_source()));
        assert!(reg.get("tiny").is_ok());
        assert!(matches!(reg.get("nope"), Err(EngineError::Unregistered(_))));
    }

    #[test]
    fn hvc_dir_source_deals_parts_round_robin_and_loads_mapped() {
        let dir = std::env::temp_dir().join(format!("hv-dirsource-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = hillview_storage::SpillingWriter::new(&dir, 100).unwrap();
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options((0..450).map(|i| Some(i as i64)))),
            )
            .build()
            .unwrap();
        w.push(&t).unwrap();
        let manifest = w.finish().unwrap();
        assert_eq!(manifest.parts.len(), 5);

        let src = HvcDirSource::new("parts", &dir);
        let a = src.load(0, 2, 1_000, 0).unwrap();
        let b = src.load(1, 2, 1_000, 0).unwrap();
        assert_eq!(a.len(), 3, "parts 0,2,4");
        assert_eq!(b.len(), 2, "parts 1,3");
        let rows: usize = a.iter().chain(&b).map(|t| t.num_rows()).sum();
        assert_eq!(rows, 450);
        // Little-endian hosts open v3 parts mapped: payloads are file
        // windows, not heap.
        if cfg!(target_endian = "little") {
            assert!(a[0].mapped_bytes() > 0, "v3 part did not load mapped");
        }
        // Replay determinism: the same (worker, snapshot) yields the same
        // parts in the same order.
        let a2 = src.load(0, 2, 1_000, 0).unwrap();
        for (x, y) in a.iter().zip(&a2) {
            assert_eq!(x.num_rows(), y.num_rows());
            assert_eq!(x.full_row(0), y.full_row(0));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lineage_parents() {
        let l = Lineage::Loaded {
            spec: SourceSpec {
                source: Arc::from("tiny"),
                snapshot: 0,
            },
        };
        assert_eq!(l.parent(), None);
        let f = Lineage::Filtered {
            parent: DatasetId(1),
            predicate: Predicate::True,
        };
        assert_eq!(f.parent(), Some(DatasetId(1)));
    }
}
