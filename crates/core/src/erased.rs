//! Type-erased sketches: the engine's uniform query representation.
//!
//! The cluster transports summaries as wire bytes along every tree edge —
//! exactly what the real system does over gRPC — so internally it handles
//! queries through the object-safe [`ErasedSketch`] interface. Vizketch
//! authors never see this: they implement the typed
//! [`hillview_sketch::Sketch`] trait and the blanket adapter
//! [`Erased`] does the rest (paper §5.5: developers "implement the
//! summarize and merge functions ... the architecture handles all such
//! issues in a uniform and transparent manner").

use crate::error::{EngineError, EngineResult};
use bytes::Bytes;
use hillview_net::Wire;
use hillview_sketch::{Sketch, TableView};
use std::sync::Arc;

/// Object-safe sketch interface operating on wire bytes.
pub trait ErasedSketch: Send + Sync + 'static {
    /// Sketch name (diagnostics, cache keys).
    fn name(&self) -> &'static str;
    /// Summarize one partition to wire bytes.
    fn summarize_to_bytes(&self, view: &TableView, seed: u64) -> EngineResult<Bytes>;
    /// True when the sketch supports row-range splitting
    /// ([`ErasedSketch::summarize_range_to_bytes`]); the leaf executor only
    /// fans a partition into sub-range tasks for splittable sketches.
    fn splittable(&self) -> bool;
    /// Summarize the rows of one partition whose index lies in `lo..hi`,
    /// to wire bytes (see `hillview_sketch::Sketch::summarize_range`).
    fn summarize_range_to_bytes(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> EngineResult<Bytes>;
    /// Merge two wire-encoded summaries.
    fn merge_bytes(&self, a: &Bytes, b: &Bytes) -> EngineResult<Bytes>;
    /// The identity summary, wire-encoded.
    fn identity_bytes(&self) -> Bytes;
    /// Fused filter + summarize: one block pass that evaluates `predicate`
    /// per 64-row frame and feeds surviving lanes straight into the sketch
    /// kernel, never materializing the filtered membership.
    fn summarize_filtered_to_bytes(
        &self,
        view: &TableView,
        predicate: &hillview_columnar::Predicate,
        seed: u64,
    ) -> EngineResult<Bytes>;
    /// Fused filter + summarize over the rows of one partition whose index
    /// lies in `lo..hi` of the *unfiltered* membership (filtering narrows
    /// the rows, never renumbers them, so the parent's split plan is valid).
    fn summarize_filtered_range_to_bytes(
        &self,
        view: &TableView,
        predicate: &hillview_columnar::Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> EngineResult<Bytes>;
    /// The sketch's cacheable parameter identity
    /// ([`hillview_sketch::Sketch::cache_identity`]): `Some(bytes)` when
    /// the summary is a pure, seed-independent function of the data and
    /// the bytes encode every result-shaping parameter; `None` disables
    /// the sketch-result cache for this query.
    fn cache_identity(&self) -> Option<Vec<u8>>;
}

/// Adapter from a typed [`Sketch`] to [`ErasedSketch`].
pub struct Erased<S: Sketch>(pub Arc<S>);

impl<S: Sketch> ErasedSketch for Erased<S> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn summarize_to_bytes(&self, view: &TableView, seed: u64) -> EngineResult<Bytes> {
        let summary = self.0.summarize(view, seed)?;
        Ok(summary.to_bytes())
    }

    fn splittable(&self) -> bool {
        self.0.splittable()
    }

    fn summarize_range_to_bytes(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> EngineResult<Bytes> {
        let summary = self.0.summarize_range(view, lo, hi, seed)?;
        Ok(summary.to_bytes())
    }

    fn merge_bytes(&self, a: &Bytes, b: &Bytes) -> EngineResult<Bytes> {
        use hillview_sketch::Summary as _;
        let sa = S::Summary::from_bytes(a.clone()).map_err(EngineError::from)?;
        let sb = S::Summary::from_bytes(b.clone()).map_err(EngineError::from)?;
        Ok(sa.merge(&sb).to_bytes())
    }

    fn identity_bytes(&self) -> Bytes {
        self.0.identity().to_bytes()
    }

    fn summarize_filtered_to_bytes(
        &self,
        view: &TableView,
        predicate: &hillview_columnar::Predicate,
        seed: u64,
    ) -> EngineResult<Bytes> {
        let summary = self.0.summarize_filtered(view, predicate, seed)?;
        Ok(summary.to_bytes())
    }

    fn summarize_filtered_range_to_bytes(
        &self,
        view: &TableView,
        predicate: &hillview_columnar::Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> EngineResult<Bytes> {
        let summary = self
            .0
            .summarize_filtered_range(view, predicate, lo, hi, seed)?;
        Ok(summary.to_bytes())
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        self.0.cache_identity()
    }
}

/// Convenience: erase a typed sketch.
pub fn erase<S: Sketch>(sketch: S) -> Arc<dyn ErasedSketch> {
    Arc::new(Erased(Arc::new(sketch)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::{ColumnKind, Table};
    use hillview_sketch::count::{CountSketch, CountSummary};

    fn view() -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options((0..10).map(Some))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn erased_summarize_and_merge_round_trip() {
        let e = erase(CountSketch::rows());
        let a = e.summarize_to_bytes(&view(), 0).unwrap();
        let b = e.summarize_to_bytes(&view(), 0).unwrap();
        let merged = e.merge_bytes(&a, &b).unwrap();
        let s = CountSummary::from_bytes(merged).unwrap();
        assert_eq!(s.rows, 20);
    }

    #[test]
    fn identity_is_merge_unit_through_bytes() {
        let e = erase(CountSketch::rows());
        let a = e.summarize_to_bytes(&view(), 0).unwrap();
        let m = e.merge_bytes(&a, &e.identity_bytes()).unwrap();
        assert_eq!(m, a);
    }

    #[test]
    fn corrupt_bytes_error_cleanly() {
        let e = erase(CountSketch::rows());
        let bad = Bytes::from_static(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF]);
        assert!(e.merge_bytes(&bad, &e.identity_bytes()).is_err());
    }

    #[test]
    fn sketch_errors_propagate() {
        let e = erase(CountSketch::of_column("Nope"));
        assert!(matches!(
            e.summarize_to_bytes(&view(), 0),
            Err(EngineError::Sketch(_))
        ));
    }
}
