//! Deterministic fault injection.
//!
//! The paper's resilience story (§5.7–5.8) rests on cheap recovery:
//! workers hold only soft state, the root's redo log replays lineage, and
//! deterministic re-execution reconverges bit-for-bit. This module supplies
//! the adversary that story must survive: a seeded [`FaultPlan`] whose
//! every decision is a **pure function of `(seed, epoch, site)`** — no
//! clocks, no RNG state, no arrival-order dependence — so a failing chaos
//! schedule replays *exactly* from its seed.
//!
//! Injection sites ([`FaultSite`]) are threaded through three layers:
//!
//! * **Links** ([`FaultSite::Frame`], consulted by
//!   `hillview_net::LinkSender` through a frame-fault hook): drop,
//!   duplicate, corrupt, or delay the Nth frame a worker's aggregation
//!   node ships to the root.
//! * **The work-stealing pool** ([`FaultSite::Leaf`], consulted at the
//!   head of every leaf sub-task): panic or stall a chosen leaf,
//!   identified by its deterministic `(worker, partition, range-start)`
//!   coordinates.
//! * **Workers** ([`FaultSite::WorkerOp`], consulted at every
//!   engine-visible worker operation): kill the worker at its Nth message
//!   or evict the queried dataset mid-query.
//!
//! The *epoch* is bumped once per execution-tree launch
//! (`Cluster::run_erased`), so under a random plan a retry of the same
//! query re-rolls every site — transient faults heal, exactly like a real
//! flaky network — while the schedule as a whole stays a deterministic
//! function of the seed and the (deterministic) sequence of attempts.
//! Scripted plans ([`FaultPlan::scripted`]) ignore the epoch: a rule fires
//! whenever its site matches, which is what per-class regression tests
//! want.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One concrete fault to apply at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the leaf task (must surface as
    /// [`EngineError::LeafPanicked`](crate::error::EngineError::LeafPanicked),
    /// never a process abort).
    PanicLeaf,
    /// Stall the leaf task for the given duration (a straggler).
    StallLeaf(Duration),
    /// Kill the worker (drops all soft state; queries fail with
    /// `WorkerDown` until restarted).
    Kill,
    /// Evict the dataset the operation touches (forces lineage replay).
    Evict,
    /// Drop the outgoing frame.
    DropFrame,
    /// Send the outgoing frame twice.
    DuplicateFrame,
    /// Flip one payload bit of the outgoing frame; the inner seed picks
    /// the bit deterministically.
    CorruptFrame(u64),
    /// Delay the outgoing frame by the given duration.
    DelayFrame(Duration),
}

/// Identity of an injection site. Every field is deterministic under
/// replay: frame indexes count a single aggregator thread's sends, leaf
/// coordinates come from the (pure) split plan, and worker-op indexes
/// count messages handled by one worker in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The `index`-th frame sent by `worker`'s aggregation node.
    Frame {
        /// Sending worker.
        worker: usize,
        /// Frame sequence number on that worker's root link.
        index: u64,
    },
    /// A leaf sub-task, identified by its split coordinates.
    Leaf {
        /// Executing worker.
        worker: usize,
        /// Micropartition index.
        partition: u32,
        /// Range start of the sub-task within the partition.
        lo: u64,
    },
    /// The `index`-th engine-visible operation handled by `worker`
    /// (load / filter / map / query fan-out).
    WorkerOp {
        /// Target worker.
        worker: usize,
        /// Operation sequence number on that worker.
        index: u64,
    },
}

/// Per-class fault probabilities for a random plan. Each probability is
/// evaluated independently per site from the plan's seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// P(panic) per leaf task.
    pub leaf_panic: f64,
    /// P(stall) per leaf task.
    pub leaf_stall: f64,
    /// Stall duration when a leaf stalls.
    pub stall_for: Duration,
    /// P(kill) per worker operation.
    pub kill: f64,
    /// P(evict) per worker operation.
    pub evict: f64,
    /// P(drop) per frame.
    pub drop: f64,
    /// P(duplicate) per frame.
    pub duplicate: f64,
    /// P(corrupt one bit) per frame.
    pub corrupt: f64,
    /// P(delay) per frame.
    pub delay: f64,
    /// Delay duration when a frame is delayed.
    pub delay_for: Duration,
}

impl FaultSpec {
    /// A spec exercising every fault class with moderate rates — the
    /// chaos suite's default. Rates are chosen so a typical small query
    /// (tens of leaves, a handful of frames and ops) sees roughly one
    /// fault, letting most schedules recover within a bounded retry
    /// budget while some exhaust it.
    pub fn chaos() -> Self {
        FaultSpec {
            leaf_panic: 0.02,
            leaf_stall: 0.02,
            stall_for: Duration::from_millis(30),
            kill: 0.02,
            evict: 0.02,
            drop: 0.05,
            duplicate: 0.05,
            corrupt: 0.05,
            delay: 0.05,
            delay_for: Duration::from_millis(20),
        }
    }

    /// A spec that injects nothing (baseline runs through the same code
    /// path).
    pub fn none() -> Self {
        FaultSpec {
            leaf_panic: 0.0,
            leaf_stall: 0.0,
            stall_for: Duration::ZERO,
            kill: 0.0,
            evict: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            delay_for: Duration::ZERO,
        }
    }
}

/// One scripted rule: apply `action` whenever the site matches exactly
/// (the epoch is ignored, so the rule persists across retries).
#[derive(Debug, Clone, Copy)]
struct Rule {
    site: FaultSite,
    action: FaultAction,
}

#[derive(Debug)]
enum Mode {
    Random(FaultSpec),
    Scripted(Vec<Rule>),
}

/// A deterministic fault schedule.
///
/// Decisions are pure functions of `(seed, epoch, site)` — see the module
/// docs. Arm a plan on a cluster with
/// [`Cluster::arm_faults`](crate::cluster::Cluster::arm_faults).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    epoch: AtomicU64,
    fired: AtomicU64,
    mode: Mode,
}

impl FaultPlan {
    /// A random plan: every site draws independently from `spec`'s rates,
    /// keyed by `(seed, epoch, site)`.
    pub fn seeded(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            epoch: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            mode: Mode::Random(spec),
        }
    }

    /// A scripted plan firing `action` at exactly the listed sites, every
    /// epoch (deterministic regression tests for single fault classes).
    pub fn scripted(rules: impl IntoIterator<Item = (FaultSite, FaultAction)>) -> Self {
        FaultPlan {
            seed: 0,
            epoch: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            mode: Mode::Scripted(
                rules
                    .into_iter()
                    .map(|(site, action)| Rule { site, action })
                    .collect(),
            ),
        }
    }

    /// The plan's seed (printed by the chaos harness on failure so the
    /// schedule replays locally).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Advance the epoch. Called once per execution-tree launch; under a
    /// random plan this re-rolls every site so retries can heal.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Current epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Total decisions that fired (any `Some`) over the plan's lifetime.
    /// Lets harnesses assert their adversary was not a silent no-op.
    pub fn faults_fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// The decision for `site`, or `None` to proceed normally.
    pub fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        let action = match &self.mode {
            Mode::Scripted(rules) => rules.iter().find(|r| r.site == site).map(|r| r.action),
            Mode::Random(spec) => self.decide_random(spec, site),
        };
        if action.is_some() {
            self.fired.fetch_add(1, Ordering::SeqCst);
        }
        action
    }

    fn decide_random(&self, spec: &FaultSpec, site: FaultSite) -> Option<FaultAction> {
        let h = mix(self.seed, self.epoch.load(Ordering::SeqCst), site);
        // Split the hash into a uniform draw in [0,1) and a secondary
        // seed for fault parameters (e.g. which bit to corrupt).
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        let sub = h.wrapping_mul(0x9E3779B97F4A7C15);
        // Walk the classes applicable to this site kind in a fixed order;
        // the first whose cumulative probability exceeds the draw fires.
        let mut acc = 0.0;
        let mut pick = |p: f64| {
            acc += p;
            draw < acc
        };
        match site {
            FaultSite::Leaf { .. } => {
                if pick(spec.leaf_panic) {
                    Some(FaultAction::PanicLeaf)
                } else if pick(spec.leaf_stall) {
                    Some(FaultAction::StallLeaf(spec.stall_for))
                } else {
                    None
                }
            }
            FaultSite::WorkerOp { .. } => {
                if pick(spec.kill) {
                    Some(FaultAction::Kill)
                } else if pick(spec.evict) {
                    Some(FaultAction::Evict)
                } else {
                    None
                }
            }
            FaultSite::Frame { .. } => {
                if pick(spec.drop) {
                    Some(FaultAction::DropFrame)
                } else if pick(spec.duplicate) {
                    Some(FaultAction::DuplicateFrame)
                } else if pick(spec.corrupt) {
                    Some(FaultAction::CorruptFrame(sub))
                } else if pick(spec.delay) {
                    Some(FaultAction::DelayFrame(spec.delay_for))
                } else {
                    None
                }
            }
        }
    }
}

/// SplitMix64-style finalizer over the site identity. Stable across runs
/// and platforms: the whole replay guarantee hangs on this being a pure
/// function.
fn mix(seed: u64, epoch: u64, site: FaultSite) -> u64 {
    let (kind, a, b, c) = match site {
        FaultSite::Frame { worker, index } => (1u64, worker as u64, index, 0u64),
        FaultSite::Leaf {
            worker,
            partition,
            lo,
        } => (2, worker as u64, partition as u64, lo),
        FaultSite::WorkerOp { worker, index } => (3, worker as u64, index, 0),
    };
    let mut z = seed
        .wrapping_add(epoch.wrapping_mul(0xA0761D6478BD642F))
        .wrapping_add(kind.wrapping_mul(0xE7037ED1A0B428DB))
        .wrapping_add(a.wrapping_mul(0x8EBC6AF09C88C6E3))
        .wrapping_add(b.wrapping_mul(0x589965CC75374CC3))
        .wrapping_add(c.wrapping_mul(0x1D8E4E27C47D124F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Render a panic payload into a printable message (the `Any` from
/// `catch_unwind` is almost always a `&str` or `String`).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_and_site() {
        let site = FaultSite::Leaf {
            worker: 1,
            partition: 3,
            lo: 4096,
        };
        for seed in 0..200u64 {
            let a = FaultPlan::seeded(seed, FaultSpec::chaos());
            let b = FaultPlan::seeded(seed, FaultSpec::chaos());
            assert_eq!(a.decide(site), b.decide(site), "seed {seed}");
        }
    }

    #[test]
    fn epoch_changes_decisions_but_replays_identically() {
        let spec = FaultSpec {
            leaf_panic: 0.5,
            ..FaultSpec::none()
        };
        let site = FaultSite::Leaf {
            worker: 0,
            partition: 0,
            lo: 0,
        };
        // Across epochs the decision sequence varies but is reproducible.
        let trace = |seed: u64| -> Vec<Option<FaultAction>> {
            let p = FaultPlan::seeded(seed, spec);
            (0..32)
                .map(|_| {
                    p.bump_epoch();
                    p.decide(site)
                })
                .collect()
        };
        for seed in 0..16 {
            let t = trace(seed);
            assert_eq!(t, trace(seed), "seed {seed} replays");
            assert!(
                t.iter().any(|d| d.is_some()) && t.iter().any(|d| d.is_none()),
                "p=0.5 over 32 epochs mixes outcomes (seed {seed}): {t:?}"
            );
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let spec = FaultSpec {
            drop: 0.3,
            ..FaultSpec::none()
        };
        let p = FaultPlan::seeded(99, spec);
        let hits = (0..10_000u64)
            .filter(|&i| {
                p.decide(FaultSite::Frame {
                    worker: 0,
                    index: i,
                })
                .is_some()
            })
            .count();
        assert!(
            (2_500..3_500).contains(&hits),
            "~30% of 10k frames drop, got {hits}"
        );
    }

    #[test]
    fn zero_spec_never_fires() {
        let p = FaultPlan::seeded(7, FaultSpec::none());
        for i in 0..100 {
            assert_eq!(
                p.decide(FaultSite::WorkerOp {
                    worker: 0,
                    index: i
                }),
                None
            );
        }
    }

    #[test]
    fn scripted_rules_fire_only_at_their_site_every_epoch() {
        let p = FaultPlan::scripted([(
            FaultSite::WorkerOp {
                worker: 1,
                index: 2,
            },
            FaultAction::Kill,
        )]);
        let target = FaultSite::WorkerOp {
            worker: 1,
            index: 2,
        };
        assert_eq!(p.decide(target), Some(FaultAction::Kill));
        p.bump_epoch();
        assert_eq!(p.decide(target), Some(FaultAction::Kill), "epoch-blind");
        assert_eq!(
            p.decide(FaultSite::WorkerOp {
                worker: 1,
                index: 3
            }),
            None
        );
        assert_eq!(
            p.decide(FaultSite::WorkerOp {
                worker: 0,
                index: 2
            }),
            None
        );
    }

    #[test]
    fn panic_messages_extracted() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(p), "boom 7");
        let p = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        assert_eq!(panic_message(p), "static");
    }
}
