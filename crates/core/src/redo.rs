//! The root's redo log.
//!
//! Paper §5.7: *"To enable query re-execution, the root node maintains a
//! redo log with all executed operations. The redo log is the only
//! persistent data structure maintained by Hillview."* Entries record the
//! lineage of every dataset (including seeds inside predicates/specs) so a
//! worker's lost state can be reconstructed deterministically (§5.8).

use crate::dataset::{DatasetId, Lineage};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Append-only log of dataset-producing operations.
#[derive(Debug, Default)]
pub struct RedoLog {
    entries: Mutex<LogInner>,
}

#[derive(Debug, Default)]
struct LogInner {
    by_id: HashMap<DatasetId, Lineage>,
    order: Vec<DatasetId>,
}

impl RedoLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the operation that produced `id`.
    pub fn record(&self, id: DatasetId, lineage: Lineage) {
        let mut inner = self.entries.lock();
        if inner.by_id.insert(id, lineage).is_none() {
            inner.order.push(id);
        }
    }

    /// The lineage of `id`, if logged.
    pub fn lineage(&self, id: DatasetId) -> Option<Lineage> {
        self.entries.lock().by_id.get(&id).cloned()
    }

    /// The chain of operations needed to rebuild `id`, root-first
    /// (Load before its Filters/Maps).
    pub fn chain(&self, id: DatasetId) -> Vec<(DatasetId, Lineage)> {
        let inner = self.entries.lock();
        let mut chain = Vec::new();
        let mut cursor = Some(id);
        while let Some(c) = cursor {
            match inner.by_id.get(&c) {
                Some(l) => {
                    cursor = l.parent();
                    chain.push((c, l.clone()));
                }
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.entries.lock().order.len()
    }

    /// True if nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All operations in log order (root-node restart reads this, §5.8).
    pub fn all(&self) -> Vec<(DatasetId, Lineage)> {
        let inner = self.entries.lock();
        inner
            .order
            .iter()
            .map(|id| (*id, inner.by_id[id].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SourceSpec;
    use hillview_columnar::Predicate;
    use std::sync::Arc;

    fn loaded(id: u64) -> Lineage {
        Lineage::Loaded {
            spec: SourceSpec {
                source: Arc::from("s"),
                snapshot: id,
            },
        }
    }

    #[test]
    fn chain_walks_to_the_root() {
        let log = RedoLog::new();
        log.record(DatasetId(1), loaded(1));
        log.record(
            DatasetId(2),
            Lineage::Filtered {
                parent: DatasetId(1),
                predicate: Predicate::True,
            },
        );
        log.record(
            DatasetId(3),
            Lineage::Mapped {
                parent: DatasetId(2),
                udf: Arc::from("f"),
                new_column: Arc::from("C"),
            },
        );
        let chain = log.chain(DatasetId(3));
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].0, DatasetId(1), "load comes first");
        assert_eq!(chain[2].0, DatasetId(3));
    }

    #[test]
    fn unknown_dataset_has_empty_chain() {
        let log = RedoLog::new();
        assert!(log.chain(DatasetId(9)).is_empty());
        assert!(log.lineage(DatasetId(9)).is_none());
    }

    #[test]
    fn record_is_idempotent_in_order() {
        let log = RedoLog::new();
        log.record(DatasetId(1), loaded(1));
        log.record(DatasetId(1), loaded(1));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn all_preserves_insertion_order() {
        let log = RedoLog::new();
        log.record(DatasetId(5), loaded(5));
        log.record(DatasetId(2), loaded(2));
        let all = log.all();
        assert_eq!(all[0].0, DatasetId(5));
        assert_eq!(all[1].0, DatasetId(2));
    }
}
