//! Property-based tests for the columnar substrate's core invariants.

use hillview_columnar::{Bitmap, MembershipSet, RowKey, Value};
use proptest::prelude::*;

proptest! {
    /// Bitmap set/get round-trips for arbitrary index sets.
    #[test]
    fn bitmap_roundtrip(mut idx in proptest::collection::vec(0usize..2000, 0..200)) {
        let mut bm = Bitmap::new(2000);
        for &i in &idx {
            bm.set(i);
        }
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(bm.count_ones(), idx.len());
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
    }

    /// AND/OR against naive set semantics.
    #[test]
    fn bitmap_boolean_algebra(
        a in proptest::collection::btree_set(0usize..500, 0..100),
        b in proptest::collection::btree_set(0usize..500, 0..100),
    ) {
        let mut ba = Bitmap::new(500);
        let mut bb = Bitmap::new(500);
        for &i in &a { ba.set(i); }
        for &i in &b { bb.set(i); }
        let and: Vec<usize> = ba.and(&bb).iter_ones().collect();
        let or: Vec<usize> = ba.or(&bb).iter_ones().collect();
        let naive_and: Vec<usize> = a.intersection(&b).copied().collect();
        let naive_or: Vec<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(and, naive_and);
        prop_assert_eq!(or, naive_or);
        // De Morgan over the 500-bit universe.
        let lhs = ba.and(&bb).not();
        let rhs = ba.not().or(&bb.not());
        prop_assert_eq!(lhs.iter_ones().collect::<Vec<_>>(), rhs.iter_ones().collect::<Vec<_>>());
    }

    /// Membership sets preserve row sets regardless of representation.
    #[test]
    fn membership_representation_agnostic(
        rows in proptest::collection::btree_set(0u32..1000, 0..600),
    ) {
        let v: Vec<u32> = rows.iter().copied().collect();
        let m = MembershipSet::from_rows(v.clone(), 1000);
        prop_assert_eq!(m.len(), v.len());
        prop_assert_eq!(
            m.iter().map(|r| r as u32).collect::<Vec<_>>(),
            v.clone()
        );
        for r in 0..1000usize {
            prop_assert_eq!(m.contains(r), rows.contains(&(r as u32)));
        }
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn membership_intersection_laws(
        a in proptest::collection::btree_set(0u32..400, 0..300),
        b in proptest::collection::btree_set(0u32..400, 0..300),
    ) {
        let ma = MembershipSet::from_rows(a.iter().copied().collect(), 400);
        let mb = MembershipSet::from_rows(b.iter().copied().collect(), 400);
        let i1: Vec<usize> = ma.intersect(&mb).iter().collect();
        let i2: Vec<usize> = mb.intersect(&ma).iter().collect();
        prop_assert_eq!(&i1, &i2);
        let naive: Vec<usize> = a.intersection(&b).map(|&r| r as usize).collect();
        prop_assert_eq!(i1, naive);
    }

    /// Sampling returns a subset of present rows, in ascending order, and is
    /// deterministic in the seed.
    #[test]
    fn membership_sample_is_subset(
        rows in proptest::collection::btree_set(0u32..5000, 1..2000),
        seed in any::<u64>(),
        rate in 0.05f64..0.95,
    ) {
        let m = MembershipSet::from_rows(rows.iter().copied().collect(), 5000);
        let s = m.sample(rate, seed);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending, no dups");
        for r in &s {
            prop_assert!(rows.contains(r), "sampled row {} not a member", r);
        }
        prop_assert_eq!(s.clone(), m.sample(rate, seed), "deterministic");
    }

    /// RowKey ordering is a total order consistent with reversal of the
    /// descending flag.
    #[test]
    fn rowkey_direction_antisymmetry(a in any::<i64>(), b in any::<i64>()) {
        let asc_a = RowKey::new(vec![Value::Int(a)], vec![false]);
        let asc_b = RowKey::new(vec![Value::Int(b)], vec![false]);
        let desc_a = RowKey::new(vec![Value::Int(a)], vec![true]);
        let desc_b = RowKey::new(vec![Value::Int(b)], vec![true]);
        prop_assert_eq!(asc_a.cmp(&asc_b), desc_b.cmp(&desc_a));
    }

    /// Value ordering is transitive on random triples (sort consistency).
    #[test]
    fn value_total_order(
        mut vals in proptest::collection::vec(
            prop_oneof![
                Just(Value::Missing),
                any::<i64>().prop_map(Value::Int),
                (-1e12f64..1e12).prop_map(Value::Double),
                any::<i64>().prop_map(Value::Date),
                "[a-z]{0,8}".prop_map(Value::str),
            ],
            0..50,
        ),
    ) {
        vals.sort();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
