//! Property-based tests for the columnar substrate's core invariants.

use hillview_columnar::block::{scan_frames, FrameEvent};
use hillview_columnar::scan::{scan_rows, scan_values, ScanSource, Selection, SplittableSelection};
use hillview_columnar::{
    Bitmap, EncodingKind, I64Storage, MembershipSet, NullMask, RowKey, Value, BLOCK_ROWS,
};
use proptest::prelude::*;

/// Every `IntStorage` variant that can represent `data`, forced plus the
/// automatic choice. (Delta only represents near-ascending data, so random
/// vectors exercise it rarely; `delta_storages_agree_with_plain` covers it
/// densely.)
fn all_storages(data: &[i64]) -> Vec<I64Storage> {
    let mut out = vec![
        I64Storage::plain_of(data.to_vec()),
        I64Storage::encode(data.to_vec()),
    ];
    out.extend(I64Storage::bit_packed_of(data));
    out.extend(I64Storage::run_length_of(data));
    out.extend(I64Storage::delta_of(data));
    out
}

/// A membership set of the requested shape over `n` rows, covering all
/// chunk decompositions (full range / sparse rows / dense bitmap / empty).
fn membership(kind: usize, raw: &[u32], n: usize) -> MembershipSet {
    match kind {
        0 => MembershipSet::full(n),
        1 => MembershipSet::from_rows(Vec::new(), n),
        2 => MembershipSet::from_rows(raw.iter().map(|r| r % n as u32).collect(), n),
        _ => MembershipSet::from_rows(
            (0..n as u32).filter(|r| r % 8 != 5 && r % 3 != 1).collect(),
            n,
        ),
    }
}

proptest! {
    /// Every encoding an `IntStorage` can choose is value-preserving: per
    /// row, per decoded block, and over the whole column.
    #[test]
    fn encodings_are_value_preserving(
        data in proptest::collection::vec(any::<i64>(), 0..400),
        probe in any::<u64>(),
    ) {
        for s in all_storages(&data) {
            prop_assert_eq!(s.len(), data.len(), "{} len", s.kind());
            prop_assert_eq!(&s.to_vec(), &data, "{} to_vec", s.kind());
            if !data.is_empty() {
                let i = (probe % data.len() as u64) as usize;
                prop_assert_eq!(s.get(i), data[i], "{} get({})", s.kind(), i);
                let start = i.min(data.len().saturating_sub(7));
                let n = 7.min(data.len() - start);
                let mut buf = [0i64; 7];
                s.decode_into(start, &mut buf[..n]);
                prop_assert_eq!(&buf[..n], &data[start..start + n], "{} block", s.kind());
            }
        }
    }

    /// Automatic selection picks the expected variant on shaped data and
    /// never loses information.
    #[test]
    fn selection_matches_data_shape(
        card in 1usize..6,
        run in 8usize..60,
        n in 64usize..600,
        spread in 1i64..1000,
    ) {
        // Sorted low-cardinality with wide values (so bit-packing cannot
        // undercut the run encoding) → run-length.
        let sorted: Vec<i64> = (0..n).map(|i| (i / run) as i64 * 1_234_567_890_123).collect();
        let s = I64Storage::encode(sorted.clone());
        prop_assert_eq!(s.kind(), EncodingKind::RunLength);
        prop_assert_eq!(s.to_vec(), sorted);
        // Small-range alternating values → bit-packed (no run structure).
        let packed: Vec<i64> = (0..n).map(|i| ((i * 7919) % (card * 17)) as i64 * spread % 512).collect();
        let s = I64Storage::encode(packed.clone());
        if packed.windows(2).all(|w| w[0] != w[1]) {
            prop_assert_eq!(s.kind(), EncodingKind::BitPacked);
        }
        prop_assert_eq!(s.to_vec(), packed);
        // Full-range entropy → plain.
        let noisy: Vec<i64> = (0..n as i64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64)).collect();
        prop_assert_eq!(I64Storage::encode(noisy).kind(), EncodingKind::Plain);
    }

    /// `scan_values` yields the identical value stream and missing count
    /// over every encoding × membership representation × null density.
    #[test]
    fn scans_bit_identical_across_encodings(
        rows in proptest::collection::vec((0.0f64..1.0, -500i64..500), 1..300),
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..150),
        null_p in 0.0f64..0.5,
    ) {
        let n = rows.len();
        let data: Vec<i64> = rows.iter().map(|r| r.1).collect();
        let nulls = NullMask::from_flags(rows.iter().map(|r| r.0 < null_p), n);
        let m = membership(kind, &raw, n);
        let sel = Selection::Members(&m);
        let mut reference: Option<(Vec<i64>, u64)> = None;
        for s in all_storages(&data) {
            let mut seen = Vec::new();
            let mut missing = 0u64;
            scan_values(&sel, &s, nulls.bitmap(), &mut missing, |v| seen.push(v));
            match &reference {
                None => reference = Some((seen, missing)),
                Some((ref_seen, ref_missing)) => {
                    prop_assert_eq!(&seen, ref_seen, "{} values", s.kind());
                    prop_assert_eq!(missing, *ref_missing, "{} missing", s.kind());
                }
            }
        }
        // Sampled row lists exercise the random-access path.
        let sample: Vec<u32> = (0..n as u32).step_by(3).collect();
        let sel = Selection::Rows(&sample);
        let mut reference: Option<(Vec<i64>, u64)> = None;
        for s in all_storages(&data) {
            let mut seen = Vec::new();
            let mut missing = 0u64;
            scan_values(&sel, &s, nulls.bitmap(), &mut missing, |v| seen.push(v));
            match &reference {
                None => reference = Some((seen, missing)),
                Some((ref_seen, ref_missing)) => {
                    prop_assert_eq!(&seen, ref_seen, "{} sampled values", s.kind());
                    prop_assert_eq!(missing, *ref_missing, "{} sampled missing", s.kind());
                }
            }
        }
    }

    /// Bitmap set/get round-trips for arbitrary index sets.
    #[test]
    fn bitmap_roundtrip(mut idx in proptest::collection::vec(0usize..2000, 0..200)) {
        let mut bm = Bitmap::new(2000);
        for &i in &idx {
            bm.set(i);
        }
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(bm.count_ones(), idx.len());
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), idx);
    }

    /// AND/OR against naive set semantics.
    #[test]
    fn bitmap_boolean_algebra(
        a in proptest::collection::btree_set(0usize..500, 0..100),
        b in proptest::collection::btree_set(0usize..500, 0..100),
    ) {
        let mut ba = Bitmap::new(500);
        let mut bb = Bitmap::new(500);
        for &i in &a { ba.set(i); }
        for &i in &b { bb.set(i); }
        let and: Vec<usize> = ba.and(&bb).iter_ones().collect();
        let or: Vec<usize> = ba.or(&bb).iter_ones().collect();
        let naive_and: Vec<usize> = a.intersection(&b).copied().collect();
        let naive_or: Vec<usize> = a.union(&b).copied().collect();
        prop_assert_eq!(and, naive_and);
        prop_assert_eq!(or, naive_or);
        // De Morgan over the 500-bit universe.
        let lhs = ba.and(&bb).not();
        let rhs = ba.not().or(&bb.not());
        prop_assert_eq!(lhs.iter_ones().collect::<Vec<_>>(), rhs.iter_ones().collect::<Vec<_>>());
    }

    /// Membership sets preserve row sets regardless of representation.
    #[test]
    fn membership_representation_agnostic(
        rows in proptest::collection::btree_set(0u32..1000, 0..600),
    ) {
        let v: Vec<u32> = rows.iter().copied().collect();
        let m = MembershipSet::from_rows(v.clone(), 1000);
        prop_assert_eq!(m.len(), v.len());
        prop_assert_eq!(
            m.iter().map(|r| r as u32).collect::<Vec<_>>(),
            v.clone()
        );
        for r in 0..1000usize {
            prop_assert_eq!(m.contains(r), rows.contains(&(r as u32)));
        }
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn membership_intersection_laws(
        a in proptest::collection::btree_set(0u32..400, 0..300),
        b in proptest::collection::btree_set(0u32..400, 0..300),
    ) {
        let ma = MembershipSet::from_rows(a.iter().copied().collect(), 400);
        let mb = MembershipSet::from_rows(b.iter().copied().collect(), 400);
        let i1: Vec<usize> = ma.intersect(&mb).iter().collect();
        let i2: Vec<usize> = mb.intersect(&ma).iter().collect();
        prop_assert_eq!(&i1, &i2);
        let naive: Vec<usize> = a.intersection(&b).map(|&r| r as usize).collect();
        prop_assert_eq!(i1, naive);
    }

    /// Sampling returns a subset of present rows, in ascending order, and is
    /// deterministic in the seed.
    #[test]
    fn membership_sample_is_subset(
        rows in proptest::collection::btree_set(0u32..5000, 1..2000),
        seed in any::<u64>(),
        rate in 0.05f64..0.95,
    ) {
        let m = MembershipSet::from_rows(rows.iter().copied().collect(), 5000);
        let s = m.sample(rate, seed);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]), "ascending, no dups");
        for r in &s {
            prop_assert!(rows.contains(r), "sampled row {} not a member", r);
        }
        prop_assert_eq!(s.clone(), m.sample(rate, seed), "deterministic");
    }

    /// RowKey ordering is a total order consistent with reversal of the
    /// descending flag.
    #[test]
    fn rowkey_direction_antisymmetry(a in any::<i64>(), b in any::<i64>()) {
        let asc_a = RowKey::new(vec![Value::Int(a)], vec![false]);
        let asc_b = RowKey::new(vec![Value::Int(b)], vec![false]);
        let desc_a = RowKey::new(vec![Value::Int(a)], vec![true]);
        let desc_b = RowKey::new(vec![Value::Int(b)], vec![true]);
        prop_assert_eq!(asc_a.cmp(&asc_b), desc_b.cmp(&desc_a));
    }

    /// Bounded selections are exactly the unbounded row stream clipped to
    /// the bounds, for every membership representation.
    #[test]
    fn bounded_selection_equals_clipped_iteration(
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        n in 1usize..500,
        cuts in (any::<u16>(), any::<u16>()),
    ) {
        let m = membership(kind, &raw, n);
        let a = cuts.0 as usize % (n + 1);
        let b = cuts.1 as usize % (n + 1);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let sel = Selection::members_in(&m, lo, hi);
        let mut got = Vec::new();
        scan_rows(&sel, |r| got.push(r));
        let want: Vec<usize> = m.iter().filter(|&r| r >= lo && r < hi).collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(sel.count(), want.len());
        prop_assert_eq!(m.count_range(lo, hi), want.len());
    }

    /// Recursive splitting at any grain tiles the membership exactly: the
    /// concatenated leaf scans reproduce the full row stream, weights are
    /// conserved, and the plan is deterministic.
    #[test]
    fn splittable_selection_tiles_exactly(
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        n in 1usize..500,
        grain in 1usize..128,
    ) {
        fn leaves(part: SplittableSelection<'_>, grain: usize, out: &mut Vec<(usize, usize, usize)>) {
            if part.weight() > grain {
                if let Some((l, r)) = part.split() {
                    leaves(l, grain, out);
                    leaves(r, grain, out);
                    return;
                }
            }
            let (lo, hi) = part.bounds();
            out.push((lo, hi, part.weight()));
        }
        let m = membership(kind, &raw, n);
        let mut plan_a = Vec::new();
        leaves(SplittableSelection::new(&m), grain, &mut plan_a);
        let mut plan_b = Vec::new();
        leaves(SplittableSelection::new(&m), grain, &mut plan_b);
        prop_assert_eq!(&plan_a, &plan_b, "plan is deterministic");
        let total: usize = plan_a.iter().map(|&(_, _, w)| w).sum();
        prop_assert_eq!(total, m.len(), "weights conserved");
        let mut rows = Vec::new();
        for &(lo, hi, w) in &plan_a {
            prop_assert_eq!(w, m.count_range(lo, hi));
            scan_rows(&Selection::members_in(&m, lo, hi), |r| rows.push(r));
        }
        let whole: Vec<usize> = m.iter().collect();
        prop_assert_eq!(rows, whole, "leaves tile the membership");
    }

    /// The ascending cursor agrees with plain `get` on arbitrary ascending
    /// (and occasionally jumping) probe sequences, for every encoding.
    #[test]
    fn ascending_cursor_agrees_with_get(
        data in proptest::collection::vec(-50i64..50, 1..400),
        probes in proptest::collection::vec(any::<u32>(), 1..100),
    ) {
        for s in all_storages(&data) {
            let mut sorted: Vec<usize> =
                probes.iter().map(|&p| p as usize % data.len()).collect();
            sorted.sort_unstable();
            let mut cur = 0usize;
            for &i in &sorted {
                prop_assert_eq!(s.get_ascending(&mut cur, i), data[i], "{} asc", s.kind());
            }
            // A backward jump after the walk still answers correctly.
            let back = sorted[0];
            prop_assert_eq!(s.get_ascending(&mut cur, back), data[back], "{} back", s.kind());
        }
    }

    /// Delta storage is value-preserving on ascending data at every access
    /// granularity: per row, ascending cursor, arbitrary-offset block
    /// decode, and whole frames.
    #[test]
    fn delta_storages_agree_with_plain(
        increments in proptest::collection::vec(0u32..10_000, 1..400),
        start in any::<i32>(),
        probe in any::<u64>(),
    ) {
        let mut v = start as i64;
        let data: Vec<i64> = increments
            .iter()
            .map(|&d| {
                v += d as i64;
                v
            })
            .collect();
        let s = I64Storage::delta_of(&data).expect("ascending data delta-codes");
        prop_assert_eq!(s.kind(), EncodingKind::Delta);
        prop_assert_eq!(&s.to_vec(), &data);
        let i = (probe % data.len() as u64) as usize;
        prop_assert_eq!(s.get(i), data[i]);
        // Whole frames, in ascending cursor order.
        let mut buf = [0i64; BLOCK_ROWS];
        let mut cursor = 0usize;
        let mut base = 0usize;
        while base < data.len() {
            let len = BLOCK_ROWS.min(data.len() - base);
            let lanes = s.decode_frame(&mut cursor, base, len, &mut buf);
            prop_assert_eq!(lanes, &data[base..base + len], "frame {}", base);
            base += BLOCK_ROWS;
        }
        // Arbitrary offset decode.
        let n = 17.min(data.len() - i);
        let mut out = vec![0i64; n];
        s.decode_into(i, &mut out);
        prop_assert_eq!(&out[..], &data[i..i + n]);
    }

    /// Block-ABI tiling laws: the frames of any selection have 64-aligned,
    /// strictly ascending bases; selection words stay within the frame
    /// length; and frame bits plus sparse rows reproduce the selection's
    /// row stream exactly, conserving the total weight.
    #[test]
    fn frames_tile_the_selection_exactly(
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        n in 1usize..500,
        cuts in (any::<u16>(), any::<u16>()),
    ) {
        let m = membership(kind, &raw, n);
        let a = cuts.0 as usize % (n + 1);
        let b = cuts.1 as usize % (n + 1);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for sel in [Selection::Members(&m), Selection::members_in(&m, lo, hi)] {
            let mut rows: Vec<usize> = Vec::new();
            let mut weight = 0usize;
            let mut last_base: Option<usize> = None;
            scan_frames(&sel, |ev| match ev {
                FrameEvent::Frame { base, len, word } => {
                    assert_eq!(base % BLOCK_ROWS, 0, "base 64-aligned");
                    assert!(len <= BLOCK_ROWS);
                    assert!(word != 0, "empty frames are never emitted");
                    assert_eq!(word & !(u64::MAX >> (64 - len)), 0, "selection bits within len");
                    if let Some(prev) = last_base {
                        assert!(base > prev, "bases strictly ascending");
                    }
                    last_base = Some(base);
                    weight += word.count_ones() as usize;
                    let mut w = word;
                    while w != 0 {
                        let k = w.trailing_zeros() as usize;
                        w &= w - 1;
                        rows.push(base + k);
                    }
                }
                FrameEvent::Row(r) => {
                    weight += 1;
                    rows.push(r);
                }
            });
            let want: Vec<usize> = match sel {
                Selection::Members(_) => m.iter().collect(),
                _ => m.iter().filter(|&r| r >= lo && r < hi).collect(),
            };
            prop_assert_eq!(&rows, &want, "frames tile the selection");
            prop_assert_eq!(weight, sel.count(), "weights conserved");
        }
    }

    /// `decode_frame` agrees with `decode_into` (and the raw data) for
    /// every storage at every frame of the column.
    #[test]
    fn decode_frame_matches_reference(
        data in proptest::collection::vec(-300i64..300, 1..400),
    ) {
        for s in all_storages(&data) {
            let mut buf = [0i64; BLOCK_ROWS];
            let mut cursor = 0usize;
            let mut base = 0usize;
            while base < data.len() {
                let len = BLOCK_ROWS.min(data.len() - base);
                let lanes = ScanSource::decode_frame(&s, &mut cursor, base, len, &mut buf);
                prop_assert_eq!(lanes, &data[base..base + len], "{} frame {}", s.kind(), base);
                base += BLOCK_ROWS;
            }
        }
    }

    /// With the `simd` feature on, the vector codegen of every primitive
    /// is byte-identical to its forced-scalar fallback on arbitrary
    /// inputs — the dispatch only selects codegen, never semantics.
    #[cfg(feature = "simd")]
    #[test]
    fn simd_primitives_match_scalar_fallbacks(
        vals in proptest::collection::vec(-1.0e6f64..1.0e6, 1..65),
        live in any::<u64>(),
        word in any::<u64>(),
        lohi in (-100.0f64..100.0, 1.0f64..500.0),
        cnt in 1u32..200,
        data in proptest::collection::vec(0i64..(1 << 20), 1..300),
    ) {
        use hillview_columnar::simd::{
            bucket_indexes, expand_word, moments_frame, set_force_scalar, BucketParams,
            MomentLanes,
        };
        let p = BucketParams {
            lo: lohi.0,
            hi: lohi.0 + lohi.1,
            scale: cnt as f64 / lohi.1,
            cnt,
        };
        let run = |scalar: bool| {
            set_force_scalar(scalar);
            let mut cells = [0u32; 64];
            bucket_indexes(&vals, live, &p, cnt + 1, &mut cells);
            let mut masks = [0u32; 64];
            expand_word(word, &mut masks);
            let mut acc = MomentLanes::new(3);
            moments_frame(&vals, &mut acc);
            let mut packed_out = Vec::new();
            if let Some(s) = I64Storage::bit_packed_of(&data) {
                packed_out = s.to_vec();
            }
            set_force_scalar(false);
            (cells, masks, acc.collapse(), packed_out)
        };
        let fast = run(false);
        let slow = run(true);
        prop_assert_eq!(fast.0, slow.0, "bucket cells");
        prop_assert_eq!(fast.1, slow.1, "expanded masks");
        prop_assert_eq!(fast.2.0.to_bits(), slow.2.0.to_bits(), "min");
        prop_assert_eq!(fast.2.1.to_bits(), slow.2.1.to_bits(), "max");
        for (a, b) in fast.2.2.iter().zip(&slow.2.2) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "power sums");
        }
        prop_assert_eq!(fast.3, slow.3, "bit-unpack");
    }

    /// The predicate word primitives (`range_word_incl`, `range_word_half`,
    /// `eq_word`, `probe_word`) produce bit-identical selection words under
    /// forced-scalar and vector dispatch, including NaN lanes and
    /// out-of-bitmap dictionary codes.
    #[cfg(feature = "simd")]
    #[test]
    fn predicate_word_primitives_match_scalar_fallbacks(
        fraw in proptest::collection::vec(
            proptest::option::weighted(0.85, -1.0e6f64..1.0e6),
            1..65,
        ),
        ivals in proptest::collection::vec(any::<i64>(), 1..65),
        cvals in proptest::collection::vec(0u32..200, 1..65),
        codes in proptest::collection::vec(0u32..160, 1..65),
        bits in proptest::collection::vec(any::<u64>(), 2..3),
        flo in -1.0e5f64..1.0e5,
        fspan in 0.0f64..1.0e5,
        ilo in any::<i64>(),
        ispan in 0i64..1_000_000,
        traw in proptest::option::weighted(0.8, -1.0e6f64..1.0e6),
    ) {
        use hillview_columnar::simd::{
            eq_word, probe_word, range_word_half, range_word_incl, set_force_scalar,
        };
        // The vendored proptest has no weighted one-of; model "mostly finite,
        // sometimes NaN" lanes with a weighted Option instead.
        let fvals: Vec<f64> = fraw.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
        let target = traw.unwrap_or(f64::NAN);
        let run = |scalar: bool| {
            set_force_scalar(scalar);
            let out = (
                range_word_incl(&ivals, ilo, ilo.saturating_add(ispan)),
                range_word_incl(&cvals, 20u32, 150u32),
                range_word_incl(&fvals, flo, flo + fspan),
                range_word_half(&fvals, flo, flo + fspan),
                eq_word(&fvals, target),
                probe_word(&codes, &bits),
            );
            set_force_scalar(false);
            out
        };
        let fast = run(false);
        let slow = run(true);
        prop_assert_eq!(fast.0, slow.0, "range_word_incl i64");
        prop_assert_eq!(fast.1, slow.1, "range_word_incl u32");
        prop_assert_eq!(fast.2, slow.2, "range_word_incl f64");
        prop_assert_eq!(fast.3, slow.3, "range_word_half");
        prop_assert_eq!(fast.4, slow.4, "eq_word");
        prop_assert_eq!(fast.5, slow.5, "probe_word");
    }

    /// Value ordering is transitive on random triples (sort consistency).
    #[test]
    fn value_total_order(
        mut vals in proptest::collection::vec(
            prop_oneof![
                Just(Value::Missing),
                any::<i64>().prop_map(Value::Int),
                (-1e12f64..1e12).prop_map(Value::Double),
                any::<i64>().prop_map(Value::Date),
                "[a-z]{0,8}".prop_map(Value::str),
            ],
            0..50,
        ),
    ) {
        vals.sort();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
