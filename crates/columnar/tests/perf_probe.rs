//! Ignored-by-default perf probe: whole-frame bit-unpack throughput per
//! width, for tuning the block decoders (compare against the cycles/value
//! notes in ROADMAP.md when touching `unpack_span`).
//!
//! Run with:
//! `cargo test -p hillview-columnar --release --features simd --test perf_probe -- --ignored --nocapture`

use hillview_columnar::{I64Storage, ScanSource, BLOCK_ROWS};
use std::time::Instant;

#[test]
#[ignore]
fn probe_unpack() {
    const N: usize = 1_000_000;
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for width in [1usize, 4, 8, 12, 16, 20, 31] {
        let vals: Vec<i64> = (0..N).map(|_| (next() % (1 << width)) as i64).collect();
        let s = I64Storage::bit_packed_of(&vals).unwrap();
        let mut buf = [0i64; BLOCK_ROWS];
        let mut sum = 0i64;
        // warmup
        for _ in 0..2 {
            let mut cursor = 0usize;
            for base in (0..N).step_by(64) {
                let lanes =
                    ScanSource::decode_frame(&s, &mut cursor, base, 64.min(N - base), &mut buf);
                sum = sum.wrapping_add(lanes[0]);
            }
        }
        let t = Instant::now();
        let reps = 10;
        for _ in 0..reps {
            let mut cursor = 0usize;
            for base in (0..N).step_by(64) {
                let lanes =
                    ScanSource::decode_frame(&s, &mut cursor, base, 64.min(N - base), &mut buf);
                sum = sum.wrapping_add(lanes[63.min(lanes.len() - 1)]);
            }
        }
        let el = t.elapsed();
        println!(
            "width {width:>2}: {:>8.3} ms/pass  ({:.2} cycles/val @3.5GHz)  [{sum}]",
            el.as_secs_f64() * 1000.0 / reps as f64,
            el.as_secs_f64() * 3.5e9 / (reps * N) as f64
        );
    }
}

/// Text-search throughput probe for the filter pipeline: the
/// display-format path must reuse one scratch buffer (no per-row `String`)
/// and case-insensitive matching must fold without allocating. Compare
/// ns/row against the notes in ROADMAP.md when touching `text_match` or
/// the `MatchDisplay`/`MatchCodes` predicate leaves.
#[test]
#[ignore]
fn probe_text_filter() {
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::predicate::{filter_members, filter_members_rowwise};
    use hillview_columnar::{ColumnKind, MembershipSet, NullMask, Predicate, StrMatchKind, Table};
    use std::sync::Arc;

    const N: usize = 1_000_000;
    let t = Table::builder()
        .column(
            "Id",
            ColumnKind::Int,
            Column::Int(I64Column::new(
                (0..N as i64).map(|i| i * 37 % 1_000_003).collect(),
                NullMask::none(),
            )),
        )
        .column(
            "Carrier",
            ColumnKind::Category,
            Column::Cat(DictColumn::from_strings(
                (0..N).map(|i| Some(["UA", "AA", "DL", "gandalf-airlines"][i % 4])),
            )),
        )
        .build()
        .unwrap();
    let full = Arc::new(MembershipSet::full(N));
    for (name, pred) in [
        (
            "substring on numeric (display path)",
            Predicate::str_match("Id", "999", StrMatchKind::Substring, false),
        ),
        (
            "ci substring on numeric",
            Predicate::str_match("Id", "999", StrMatchKind::Substring, true),
        ),
        (
            "ci substring on dictionary",
            Predicate::str_match("Carrier", "GANDALF", StrMatchKind::Substring, true),
        ),
    ] {
        for (path, f) in [
            (
                "rowwise",
                &(|| filter_members_rowwise(&t, &pred, &full).unwrap().len()) as &dyn Fn() -> usize,
            ),
            (
                "block",
                &(|| filter_members(&t, &pred, &full).unwrap().len()),
            ),
        ] {
            let matches = f(); // warmup
            let reps = 3;
            let start = Instant::now();
            for _ in 0..reps {
                assert_eq!(f(), matches);
            }
            let el = start.elapsed();
            println!(
                "{name:<38} {path:<8} {:>8.1} ns/row  ({matches} matches)",
                el.as_secs_f64() * 1e9 / (reps * N) as f64
            );
        }
    }
}
