//! Ignored-by-default perf probe: whole-frame bit-unpack throughput per
//! width, for tuning the block decoders (compare against the cycles/value
//! notes in ROADMAP.md when touching `unpack_span`).
//!
//! Run with:
//! `cargo test -p hillview-columnar --release --features simd --test perf_probe -- --ignored --nocapture`

use hillview_columnar::{I64Storage, ScanSource, BLOCK_ROWS};
use std::time::Instant;

#[test]
#[ignore]
fn probe_unpack() {
    const N: usize = 1_000_000;
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for width in [1usize, 4, 8, 12, 16, 20, 31] {
        let vals: Vec<i64> = (0..N).map(|_| (next() % (1 << width)) as i64).collect();
        let s = I64Storage::bit_packed_of(&vals).unwrap();
        let mut buf = [0i64; BLOCK_ROWS];
        let mut sum = 0i64;
        // warmup
        for _ in 0..2 {
            let mut cursor = 0usize;
            for base in (0..N).step_by(64) {
                let lanes =
                    ScanSource::decode_frame(&s, &mut cursor, base, 64.min(N - base), &mut buf);
                sum = sum.wrapping_add(lanes[0]);
            }
        }
        let t = Instant::now();
        let reps = 10;
        for _ in 0..reps {
            let mut cursor = 0usize;
            for base in (0..N).step_by(64) {
                let lanes =
                    ScanSource::decode_frame(&s, &mut cursor, base, 64.min(N - base), &mut buf);
                sum = sum.wrapping_add(lanes[63.min(lanes.len() - 1)]);
            }
        }
        let el = t.elapsed();
        println!(
            "width {width:>2}: {:>8.3} ms/pass  ({:.2} cycles/val @3.5GHz)  [{sum}]",
            el.as_secs_f64() * 1000.0 / reps as f64,
            el.as_secs_f64() * 3.5e9 / (reps * N) as f64
        );
    }
}
