//! Property tests pinning block-wise predicate evaluation bit-identical to
//! the rowwise `CompiledPredicate::eval` reference, across integer
//! encodings (plain / bit-packed / run-length / delta) × membership
//! representations × null densities × predicate shapes, in both simd-on
//! and forced-scalar modes.

use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::predicate::{filter_members, filter_members_rowwise};
use hillview_columnar::{
    simd, ColumnKind, I64Storage, MembershipSet, NullMask, Predicate, StrMatchKind, Table, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

const ALPHABET: [&str; 5] = ["alpha", "Beta", "gamma-2", "15", "Ünïcode"];

/// Every `IntStorage` variant that can represent `data`, forced plus the
/// automatic choice (delta only represents near-ascending data, so the
/// dedicated sorted test below covers it densely).
fn all_storages(data: &[i64]) -> Vec<I64Storage> {
    let mut out = vec![
        I64Storage::plain_of(data.to_vec()),
        I64Storage::encode(data.to_vec()),
    ];
    out.extend(I64Storage::bit_packed_of(data));
    out.extend(I64Storage::run_length_of(data));
    out.extend(I64Storage::delta_of(data));
    out
}

/// A membership set of the requested shape over `n` rows, covering all
/// frame decompositions (full range / sparse rows / dense bitmap / empty).
fn membership(kind: usize, raw: &[u32], n: usize) -> MembershipSet {
    match kind {
        0 => MembershipSet::full(n),
        1 => MembershipSet::from_rows(Vec::new(), n),
        2 => MembershipSet::from_rows(raw.iter().map(|r| r % n as u32).collect(), n),
        _ => MembershipSet::from_rows(
            (0..n as u32).filter(|r| r % 8 != 5 && r % 3 != 1).collect(),
            n,
        ),
    }
}

/// The predicate shapes one case exercises: every leaf kind, numeric
/// cross-type equality, NaN corners, text and regex on both dictionary and
/// display-text columns, and nested combinators (including the documented
/// Not-over-missing complement).
fn predicate_set(lo: f64, hi: f64, eq_target: f64, query: &str) -> Vec<Predicate> {
    vec![
        Predicate::True,
        Predicate::range("I", lo, hi),
        Predicate::range("F", lo, hi),
        Predicate::range("S", lo, hi),
        Predicate::range("I", f64::NAN, hi),
        Predicate::equals("I", eq_target),
        Predicate::equals("I", Value::Int(eq_target as i64)),
        Predicate::equals("F", eq_target),
        Predicate::Equals {
            column: Arc::from("I"),
            value: Value::Double(f64::NAN),
        },
        Predicate::equals("I", Value::Missing),
        Predicate::equals("S", "Beta"),
        Predicate::equals("S", "not-in-dictionary"),
        Predicate::str_match("S", query, StrMatchKind::Substring, false),
        Predicate::str_match("S", query, StrMatchKind::Substring, true),
        Predicate::str_match("S", query, StrMatchKind::Exact, true),
        Predicate::str_match("S", "", StrMatchKind::Substring, false),
        Predicate::str_match("I", "1", StrMatchKind::Substring, false),
        Predicate::str_match("F", "5", StrMatchKind::Substring, false),
        Predicate::str_match("S", "^[gG]amma", StrMatchKind::Regex, false),
        Predicate::str_match("I", "^-", StrMatchKind::Regex, false),
        Predicate::IsMissing {
            column: Arc::from("F"),
        },
        Predicate::range("I", lo, hi).not(),
        Predicate::range("F", lo, hi)
            .not()
            .and(Predicate::IsMissing {
                column: Arc::from("F"),
            }),
        Predicate::range("I", lo, hi).and(Predicate::str_match(
            "S",
            query,
            StrMatchKind::Substring,
            true,
        )),
        Predicate::equals("S", "alpha").or(Predicate::range("F", lo, hi)),
        Predicate::range("I", lo, hi)
            .or(Predicate::equals("I", eq_target))
            .not(),
    ]
}

/// Block and rowwise filtering must select the identical row set for every
/// predicate, under both codegens.
fn assert_equivalent(t: &Table, preds: &[Predicate], members: &MembershipSet, ctx: &str) {
    for p in preds {
        let want: Vec<usize> = filter_members_rowwise(t, p, members)
            .unwrap()
            .iter()
            .collect();
        for force in [false, true] {
            simd::set_force_scalar(force);
            let got: Vec<usize> = filter_members(t, p, members).unwrap().iter().collect();
            simd::set_force_scalar(false);
            assert_eq!(got, want, "{ctx} scalar={force} predicate {p:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random data over every representable encoding × membership shape.
    #[test]
    fn block_filter_bit_identical_to_rowwise(
        rows in proptest::collection::vec(
            (-500i64..500, -50.0f64..50.0, 0usize..5, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
            1..260,
        ),
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..130),
        null_p in 0.0f64..0.4,
        lo in -60.0f64..60.0,
        span in 0.0f64..80.0,
        probe in any::<u64>(),
        query_pick in 0usize..4,
    ) {
        let n = rows.len();
        let ints: Vec<i64> = rows.iter().map(|r| r.0).collect();
        let int_nulls = NullMask::from_flags(rows.iter().map(|r| r.3 < null_p), n);
        let f_opts: Vec<Option<f64>> =
            rows.iter().map(|r| (r.4 >= null_p).then_some(r.1)).collect();
        let strs: Vec<Option<&str>> = rows
            .iter()
            .map(|r| (r.5 >= null_p).then(|| ALPHABET[r.2]))
            .collect();
        let members = membership(kind, &raw, n);
        let eq_target = ints[(probe % n as u64) as usize] as f64;
        let query = ["a", "AMM", "eta", "15"][query_pick];
        let preds = predicate_set(lo, lo + span, eq_target, query);
        for storage in all_storages(&ints) {
            let enc = storage.kind();
            let t = Table::builder()
                .column(
                    "I",
                    ColumnKind::Int,
                    Column::Int(I64Column::with_storage(storage, int_nulls.clone())),
                )
                .column(
                    "F",
                    ColumnKind::Double,
                    Column::Double(F64Column::from_options(f_opts.iter().copied())),
                )
                .column(
                    "S",
                    ColumnKind::String,
                    Column::Str(DictColumn::from_strings(strs.iter().copied())),
                )
                .build()
                .unwrap();
            assert_equivalent(&t, &preds, &members, &format!("{enc:?} membership {kind}"));
        }
    }

    /// Ascending data pins the delta encoding (and dense zone-map skipping)
    /// under selective, unselective, empty, and boundary-crossing ranges.
    #[test]
    fn block_filter_on_sorted_columns(
        deltas in proptest::collection::vec(0i64..5, 65..400),
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..130),
        null_p in 0.0f64..0.25,
        nulls_seed in proptest::collection::vec(0.0f64..1.0, 400),
        lo_frac in 0.0f64..1.2,
        span_frac in 0.0f64..0.6,
        probe in any::<u64>(),
    ) {
        let n = deltas.len();
        let mut v = -37i64;
        let ints: Vec<i64> = deltas.iter().map(|d| { v += d; v }).collect();
        let int_nulls = NullMask::from_flags((0..n).map(|i| nulls_seed[i] < null_p), n);
        let members = membership(kind, &raw, n);
        let top = *ints.last().unwrap() as f64;
        let lo = ints[0] as f64 - 3.0 + lo_frac * (top - ints[0] as f64);
        let hi = lo + span_frac * (top - ints[0] as f64 + 6.0);
        let eq_target = ints[(probe % n as u64) as usize] as f64;
        let preds = vec![
            Predicate::range("I", lo, hi),
            Predicate::range("I", lo, lo),
            Predicate::range("I", top + 1.0, top + 50.0),
            Predicate::equals("I", eq_target),
            Predicate::range("I", lo, hi).not(),
        ];
        for storage in all_storages(&ints) {
            let enc = storage.kind();
            let t = Table::builder()
                .column(
                    "I",
                    ColumnKind::Int,
                    Column::Int(I64Column::with_storage(storage, int_nulls.clone())),
                )
                .build()
                .unwrap();
            assert_equivalent(&t, &preds, &members, &format!("sorted {enc:?} membership {kind}"));
        }
    }

    /// Extreme i64 magnitudes: the integer-domain bound translation must
    /// agree with the per-row `as f64` comparison even where the
    /// conversion rounds (|v| > 2^53).
    #[test]
    fn block_filter_at_extreme_magnitudes(
        base in any::<i64>(),
        offsets in proptest::collection::vec(any::<i64>(), 1..120),
        kind in 0usize..4,
        raw in proptest::collection::vec(any::<u32>(), 0..60),
        lo in any::<f64>(),
        span in 0.0f64..1e19,
    ) {
        let ints: Vec<i64> = offsets.iter().map(|o| base.wrapping_add(o >> 16)).collect();
        let n = ints.len();
        let members = membership(kind, &raw, n);
        let lo = if lo.is_nan() { 0.0 } else { lo };
        let preds = vec![
            Predicate::range("I", lo, lo + span),
            Predicate::equals("I", ints[0] as f64),
            Predicate::equals("I", Value::Int(ints[0])),
            Predicate::equals("I", 9.223372036854776e18),
            Predicate::range("I", -9.3e18, 9.3e18),
        ];
        for storage in all_storages(&ints) {
            let enc = storage.kind();
            let t = Table::builder()
                .column(
                    "I",
                    ColumnKind::Int,
                    Column::Int(I64Column::with_storage(storage, NullMask::none())),
                )
                .build()
                .unwrap();
            assert_equivalent(&t, &preds, &members, &format!("extreme {enc:?} membership {kind}"));
        }
    }
}

/// Draw the next structure byte, defaulting to 0 past the end.
fn next_byte(bytes: &[u8], pos: &mut usize) -> u8 {
    let b = bytes.get(*pos).copied().unwrap_or(0);
    *pos += 1;
    b
}

/// A random predicate tree over columns `I` and `F`, shaped by a byte
/// stream: small depths, every leaf kind the canonicalizer normalizes.
fn build_tree(bytes: &[u8], pos: &mut usize, depth: usize, lo: f64, hi: f64, eq: f64) -> Predicate {
    let b = next_byte(bytes, pos);
    if depth == 0 || b % 8 < 4 {
        match b % 4 {
            0 => Predicate::range("I", lo, hi),
            1 => Predicate::range("F", lo, hi),
            2 => Predicate::equals("I", eq),
            _ => Predicate::IsMissing {
                column: Arc::from("F"),
            },
        }
    } else {
        let d = depth - 1;
        match b % 8 {
            4 => build_tree(bytes, pos, d, lo, hi, eq).and(build_tree(bytes, pos, d, lo, hi, eq)),
            5 => build_tree(bytes, pos, d, lo, hi, eq).or(build_tree(bytes, pos, d, lo, hi, eq)),
            6 => build_tree(bytes, pos, d, lo, hi, eq).not(),
            _ => Predicate::True.and(build_tree(bytes, pos, d, lo, hi, eq)),
        }
    }
}

/// A semantics-preserving respelling of `p`, shaped by its own byte
/// stream: operand swaps, De Morgan rewrites, double negation, neutral
/// (`AND true` / `OR false`) and idempotent (`p OP p`) padding — exactly
/// the equivalences [`Predicate::canonical_bytes`] claims to normalize.
fn respell(p: &Predicate, bytes: &[u8], pos: &mut usize) -> Predicate {
    let b = next_byte(bytes, pos);
    let core = match p {
        Predicate::And(x, y) => {
            let (rx, ry) = (respell(x, bytes, pos), respell(y, bytes, pos));
            match b % 3 {
                0 => rx.and(ry),
                1 => ry.and(rx),
                _ => rx.not().or(ry.not()).not(), // De Morgan
            }
        }
        Predicate::Or(x, y) => {
            let (rx, ry) = (respell(x, bytes, pos), respell(y, bytes, pos));
            match b % 3 {
                0 => rx.or(ry),
                1 => ry.or(rx),
                _ => rx.not().and(ry.not()).not(), // De Morgan
            }
        }
        Predicate::Not(x) => respell(x, bytes, pos).not(),
        leaf => leaf.clone(),
    };
    match (b >> 2) % 5 {
        0 => core.not().not(),
        1 => core.and(Predicate::True),
        2 => core.clone().and(core),
        3 => core.clone().or(core),
        _ => core,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalization soundness: a random semantics-preserving
    /// respelling of a random predicate tree has byte-identical canonical
    /// form (so the predicate-identity cache treats them as one query),
    /// and — the soundness half — the two spellings select the identical
    /// row set on a real table.
    #[test]
    fn canonical_form_is_respelling_invariant_and_sound(
        rows in proptest::collection::vec((-80i64..80, -40.0f64..40.0, 0.0f64..1.0), 1..200),
        structure in proptest::collection::vec(any::<u8>(), 32),
        rewrites in proptest::collection::vec(any::<u8>(), 64),
        null_p in 0.0f64..0.4,
        lo in -50.0f64..50.0,
        span in 0.0f64..60.0,
        probe in any::<u64>(),
    ) {
        let n = rows.len();
        let ints: Vec<Option<i64>> =
            rows.iter().map(|r| (r.2 >= null_p).then_some(r.0)).collect();
        let floats: Vec<Option<f64>> =
            rows.iter().map(|r| (r.2 >= null_p / 2.0).then_some(r.1)).collect();
        let t = Table::builder()
            .column(
                "I",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(ints.iter().copied())),
            )
            .column(
                "F",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(floats.iter().copied())),
            )
            .build()
            .unwrap();
        let eq = rows[(probe % n as u64) as usize].0 as f64;
        let p = build_tree(&structure, &mut 0, 3, lo, lo + span, eq);
        let r = respell(&p, &rewrites, &mut 0);

        // Identity: both spellings collapse to one canonical encoding,
        // schema-aware and schema-less alike.
        prop_assert_eq!(
            p.canonical_bytes(Some(&t)),
            r.canonical_bytes(Some(&t)),
            "respelling changed the schema-aware canonical form of {:?}",
            p
        );
        prop_assert_eq!(
            p.canonical_bytes(None),
            r.canonical_bytes(None),
            "respelling changed the schema-less canonical form of {:?}",
            p
        );

        // Soundness: canonical equality must imply identical selection.
        let members = MembershipSet::full(n);
        let want: Vec<usize> = filter_members(&t, &p, &members).unwrap().iter().collect();
        let got: Vec<usize> = filter_members(&t, &r, &members).unwrap().iter().collect();
        prop_assert_eq!(want, got, "canonically-equal spellings selected different rows: {:?}", p);
    }
}
