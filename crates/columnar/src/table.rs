//! Immutable columnar tables.
//!
//! A [`Table`] is one horizontal partition's worth of data: a schema plus one
//! reference-counted column per schema entry. Derived tables (projections,
//! tables with appended UDF columns) share column storage with their parents,
//! mirroring Hillview's "tables share common data" design (paper §5.6).

use crate::column::Column;
use crate::error::{Error, Result};
use crate::rows::Row;
use crate::schema::{ColumnDesc, ColumnKind, Schema};
use crate::value::Value;
use std::sync::Arc;

/// An immutable table: schema + columns + row count.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Arc<Column>>,
    num_rows: usize,
}

impl Table {
    /// Start building a table column by column.
    pub fn builder() -> TableBuilder {
        TableBuilder::default()
    }

    /// An empty table with no columns and no rows.
    pub fn empty() -> Self {
        Table {
            schema: Arc::new(Schema::new()),
            columns: Vec::new(),
            num_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Total number of cells (rows × columns) — the paper's headline unit.
    pub fn num_cells(&self) -> u64 {
        self.num_rows as u64 * self.columns.len() as u64
    }

    /// Column at schema position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Shared handle to column `i` (for zero-copy projections).
    pub fn column_arc(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// The value of cell (`row`, column named `name`).
    pub fn get(&self, row: usize, name: &str) -> Result<Value> {
        if row >= self.num_rows {
            return Err(Error::RowOutOfBounds {
                row,
                len: self.num_rows,
            });
        }
        Ok(self.column_by_name(name)?.value(row))
    }

    /// Materialize row `row` across the given column indexes.
    pub fn row(&self, row: usize, cols: &[usize]) -> Row {
        Row::new(cols.iter().map(|&c| self.columns[c].value(row)).collect())
    }

    /// Materialize row `row` across all columns.
    pub fn full_row(&self, row: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// A new table sharing storage but containing only the named columns.
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let schema = self.schema.project(names)?;
        let columns = names
            .iter()
            .map(|n| Ok(self.columns[self.schema.index_of(n)?].clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            schema: Arc::new(schema),
            columns,
            num_rows: self.num_rows,
        })
    }

    /// A new table sharing all existing columns plus one appended column.
    /// This is how UDF-derived columns are attached (paper §5.6).
    pub fn with_column(&self, name: &str, column: Column) -> Result<Table> {
        if !self.columns.is_empty() && column.len() != self.num_rows {
            return Err(Error::LengthMismatch {
                expected: self.num_rows,
                actual: column.len(),
            });
        }
        let mut schema = (*self.schema).clone();
        schema.push(ColumnDesc::new(name, column.kind()))?;
        let mut columns = self.columns.clone();
        let num_rows = if self.columns.is_empty() {
            column.len()
        } else {
            self.num_rows
        };
        columns.push(Arc::new(column));
        Ok(Table {
            schema: Arc::new(schema),
            columns,
            num_rows,
        })
    }

    /// Approximate heap footprint of all columns, for cache accounting.
    /// Mapped (file-backed) payloads are excluded — see
    /// [`Table::mapped_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }

    /// Bytes of column payload addressed through lazily-resident mapped
    /// segments (zero for fully heap-resident tables).
    pub fn mapped_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.mapped_bytes()).sum()
    }
}

/// Builds a [`Table`] column by column, validating kinds and lengths.
#[derive(Default)]
pub struct TableBuilder {
    descs: Vec<ColumnDesc>,
    columns: Vec<Arc<Column>>,
    err: Option<Error>,
}

impl TableBuilder {
    /// Append a column. Errors are deferred to [`TableBuilder::build`].
    pub fn column(mut self, name: &str, kind: ColumnKind, column: Column) -> Self {
        if self.err.is_some() {
            return self;
        }
        if column.kind() != kind {
            self.err = Some(Error::TypeMismatch {
                context: format!("column {name:?}"),
                expected: kind.to_string(),
                actual: column.kind().to_string(),
            });
            return self;
        }
        if let Some(first) = self.columns.first() {
            if first.len() != column.len() {
                self.err = Some(Error::LengthMismatch {
                    expected: first.len(),
                    actual: column.len(),
                });
                return self;
            }
        }
        self.descs.push(ColumnDesc::new(name, kind));
        self.columns.push(Arc::new(column));
        self
    }

    /// Finish building.
    pub fn build(self) -> Result<Table> {
        if let Some(e) = self.err {
            return Err(e);
        }
        let num_rows = self.columns.first().map_or(0, |c| c.len());
        let schema = Schema::from_descs(self.descs)?;
        Ok(Table {
            schema: Arc::new(schema),
            columns: self.columns,
            num_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{DictColumn, F64Column, I64Column};

    fn flights() -> Table {
        Table::builder()
            .column(
                "Carrier",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings([
                    Some("UA"),
                    Some("AA"),
                    None,
                    Some("DL"),
                ])),
            )
            .column(
                "DepDelay",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(5.0),
                    Some(-2.0),
                    Some(60.0),
                    None,
                ])),
            )
            .column(
                "Distance",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([
                    Some(2500),
                    Some(300),
                    Some(900),
                    Some(100),
                ])),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn dimensions_and_cells() {
        let t = flights();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.num_cells(), 12);
    }

    #[test]
    fn cell_access() {
        let t = flights();
        assert_eq!(t.get(0, "Carrier").unwrap(), Value::str("UA"));
        assert_eq!(t.get(2, "Carrier").unwrap(), Value::Missing);
        assert_eq!(t.get(1, "DepDelay").unwrap(), Value::Double(-2.0));
        assert!(t.get(9, "Carrier").is_err());
        assert!(t.get(0, "Nope").is_err());
    }

    #[test]
    fn row_materialization() {
        let t = flights();
        let r = t.full_row(1);
        assert_eq!(r.values.len(), 3);
        assert_eq!(r.values[0], Value::str("AA"));
        let r = t.row(1, &[2, 0]);
        assert_eq!(r.values, vec![Value::Int(300), Value::str("AA")]);
    }

    #[test]
    fn projection_shares_storage() {
        let t = flights();
        let p = t.project(&["Distance", "Carrier"]).unwrap();
        assert_eq!(p.num_columns(), 2);
        assert_eq!(p.num_rows(), 4);
        assert!(Arc::ptr_eq(
            p.column_arc(1),
            t.column_arc(t.schema().index_of("Carrier").unwrap())
        ));
    }

    #[test]
    fn with_column_appends() {
        let t = flights();
        let doubled = Column::Int(I64Column::from_options(
            (0..4).map(|i| t.get(i, "Distance").unwrap().as_i64().map(|v| v * 2)),
        ));
        let t2 = t.with_column("Distance2", doubled).unwrap();
        assert_eq!(t2.num_columns(), 4);
        assert_eq!(t2.get(0, "Distance2").unwrap(), Value::Int(5000));
        // Original untouched.
        assert_eq!(t.num_columns(), 3);
    }

    #[test]
    fn with_column_rejects_bad_length() {
        let t = flights();
        let short = Column::Int(I64Column::from_options([Some(1)]));
        assert!(matches!(
            t.with_column("X", short),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn builder_rejects_kind_mismatch() {
        let r = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Int(I64Column::from_options([Some(1)])),
            )
            .build();
        assert!(matches!(r, Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn builder_rejects_length_mismatch() {
        let r = Table::builder()
            .column(
                "A",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(1), Some(2)])),
            )
            .column(
                "B",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(1)])),
            )
            .build();
        assert!(matches!(r, Err(Error::LengthMismatch { .. })));
    }

    #[test]
    fn empty_table() {
        let t = Table::empty();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_cells(), 0);
    }
}
