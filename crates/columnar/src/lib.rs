//! # hillview-columnar
//!
//! Columnar in-memory table substrate for Hillview-RS, a Rust reproduction of
//! *"Hillview: A trillion-cell spreadsheet for big data"* (VLDB 2019).
//!
//! Hillview operates on immutable, horizontally-partitioned tables held in a
//! column-oriented representation (paper §5.4, §6: "in-memory tables use as
//! much as possible arrays of base types"; "string columns use dictionary
//! encoding for compression"). This crate provides that representation:
//!
//! * [`Column`] — typed columns over base-type arrays with null masks:
//!   integers, doubles, dates, dictionary-encoded strings and categoricals.
//! * [`Table`] — an immutable set of columns sharing a row count; cheap to
//!   clone (columns are reference-counted) so derived tables share storage.
//! * [`MembershipSet`] — the paper's §5.6 "membership set" structure that
//!   identifies which rows belong to a filtered (derived) table, with dense
//!   (bitmap) and sparse (sorted index) implementations and uniform sampling.
//! * [`SortOrder`]/[`RowKey`] — multi-column row ordering used by the tabular
//!   view vizketches (next-items, quantile scrollbar, find).
//! * [`Predicate`] — row selection expressions (comparisons, ranges, text
//!   search including a small self-contained regex engine), compiled to a
//!   per-row reference form and to the block-wise form the filter pipeline
//!   runs ([`predicate::filter_members`]): 64-bit selection words per
//!   decoded frame, dictionary match bitmaps, and zone-map block skipping
//!   (see the [`predicate`] module docs).
//! * [`udf`] — named user-defined map functions that derive new columns from
//!   existing ones (paper §5.6 "user-defined maps"; Rust closures substitute
//!   for the paper's JavaScript functions).
//!
//! ## Chunked scans
//!
//! The [`scan`] module is the performance substrate for sketch kernels: it
//! decomposes any [`MembershipSet`] into [`scan::ScanChunk`]s — dense row
//! ranges, 64-row bitmap words, or sparse index lists — and provides typed
//! drivers ([`scan::scan_values`], [`scan::scan_rows`],
//! [`scan::count_missing`]) that combine those chunks with a column's raw
//! value slice and null-mask words. Null checks cost one word fetch per 64
//! rows, and when a chunk is a dense range over a column with no nulls the
//! inner loop degenerates to a plain slice iteration (the *dense fast
//! path*) that the compiler can unroll and vectorize. Chunks arrive in
//! ascending row order, so chunked kernels visit exactly the rows
//! `MembershipSet::iter` would, in the same order — which is what makes
//! chunked and per-row kernel results bit-identical.
//!
//! For intra-partition parallelism, [`scan::SplittableSelection`] divides
//! any membership set into balanced row-weighted sub-ranges without
//! materializing row ids, and [`scan::Selection::members_in`] scans one
//! such sub-range through the same drivers; adjacent sub-range scans
//! concatenate to exactly the whole-partition row stream.
//!
//! ## Compressed columns and the block ABI
//!
//! Integer values and dictionary codes sit behind the [`encoding`] layer:
//! an [`IntStorage`] holds them plain, frame-of-reference bit-packed,
//! run-length encoded, or per-block delta coded, chosen automatically at
//! ingest by byte cost. The scan drivers and kernels meet the storage at
//! the [`block`] ABI: 64-row-aligned [`block::Block`] frames of decoded
//! value lanes plus selection/validity words, produced zero-copy from
//! plain storage and via whole-word block decoders otherwise — so every
//! kernel works unchanged over every encoding, and the encoding property
//! tests assert the results are bit-identical. The [`simd`] module holds
//! the feature-gated lane-parallel fast paths kernels run over those
//! frames, with mandatory bit-identical scalar fallbacks.
//!
//! ## Lazy residency (out-of-core)
//!
//! The [`residency`] module adds a third dimension under the encodings: a
//! column payload ([`ValueBuf`]) is either an owned heap vector or a
//! zero-copy window into a mapped `hvc` v3 file ([`Segment`]), faulted in
//! chunk-at-a-time through a per-worker byte-accounted [`BlockCache`].
//! Because the fused filter pipeline consults zone maps *before* decoding,
//! a block the predicate rejects is never decoded — and for mapped storage
//! "never decoded" means its file bytes are never read at all, so the
//! 190–483x block-skip ratios become I/O-skip ratios on out-of-core data.
//!
//! ## Query execution pipeline
//!
//! A filtered query — the paper's interactive zoom/search (§3.3) — is
//! **fused** into a single memory pass over each 64-row frame:
//!
//! 1. the compiled [`BlockPredicate`] evaluates the frame into a 64-bit
//!    *match word* (consulting zone maps first, so a block whose min/max
//!    — value or dictionary code — sits outside the predicate's bounds
//!    produces its word without decoding a single lane);
//! 2. the match word is ANDed into the parent *selection word* inside
//!    [`scan::Selection::Filtered`] (wrapping a [`FrameFilter`]), and
//!    zero words are dropped on the spot;
//! 3. surviving words flow straight into the block kernel, whose cursor
//!    decodes each surviving frame exactly once for both stages.
//!
//! No intermediate [`MembershipSet`] is materialized and no second decode
//! happens — predicate word → selection word → kernel, one pass. Derived
//! columns take the same path: block-compilable UDFs ([`udf::BlockUdf`])
//! materialize frame-at-a-time through the encodings' block decoders
//! instead of a per-row closure.
//!
//! Sampled kernels run fused too: the selection word is thinned by the
//! deterministic per-row hash *before* the kernel sees it, so a sampled
//! filtered query samples the filtered rows in one pass. The two-pass
//! execution ([`filter_members`] into a membership set, then a second
//! scan) remains, deliberately — it is what materializing a derived table
//! runs, when the engine's cost-based planner decides a filter will be
//! queried often enough to pay for the membership set once. The fused and
//! two-pass pipelines are property-tested bit-identical across encodings
//! × membership representations × null densities × simd modes, so the
//! planner's choice is invisible in results.
//!
//! Two predicate-layer services feed that planner. Every [`Predicate`]
//! reduces to a **canonical form** ([`Predicate::canonical_bytes`]):
//! negation-normal form, flattened and
//! sorted commutative operands, idempotence/absorption collapsed, numeric
//! bounds snapped to the column's integer domain — so any two respellings
//! of the same selection (operand order, double negation, De Morgan
//! variants) yield byte-identical encodings. Those bytes are the
//! *predicate identity* the engine hashes into structural cache keys: a
//! canonically-equal query hits the sketch-result cache no matter how the
//! caller spelled it. And [`estimate_selectivity`] probes a bounded prefix
//! of each column's zone maps to report, without a full scan, both the
//! fraction of rows a predicate keeps and the fraction of blocks it can
//! skip — the two costs the fuse-vs-materialize decision weighs.

//!
//! ## Safety & invariants
//!
//! This is the only workspace crate (outside `vendor/`) that uses `unsafe`,
//! and every use falls into one of three audited families:
//!
//! 1. **SIMD intrinsics** (`simd.rs`, `encoding.rs`): every `#[target_feature]`
//!    kernel is called only behind a runtime `is_x86_feature_detected!` check,
//!    and every vector path has a scalar fallback that must produce
//!    byte-identical output (pinned by the forced-scalar equivalence tests
//!    and the `simd-registry` lint rule).
//! 2. **Out-of-core residency** (`residency.rs`): raw page-aligned buffers
//!    and mmap-backed `ValueBuf`s. Exclusive write access during `populate`
//!    is guaranteed by the block cache's residency protocol (a chunk is
//!    written only while non-resident and only under the cache lock), and
//!    mapped reads borrow an `Arc`-kept segment whose bounds and alignment
//!    were validated at construction.
//! 3. **`Pod` reinterpretation** (`residency.rs`): byte-slice casts are
//!    restricted to the sealed `Pod` trait (`u32`/`i64`/`f64`/`u64`), whose
//!    implementations have no padding and accept any bit pattern.
//!
//! Every `unsafe` site carries a `// SAFETY:` comment; `hillview-lint`
//! (rule `safety-comment`) fails CI when one is missing, and
//! `unsafe_op_in_unsafe_fn` is denied so `unsafe fn` bodies must scope
//! their dereferences explicitly. All other workspace crates are
//! `#![forbid(unsafe_code)]`.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(rust_2018_idioms)]

pub mod bitmap;
pub mod block;
pub mod column;
pub mod dictionary;
pub mod encoding;
pub mod error;
pub mod membership;
pub mod nullmask;
pub mod predicate;
pub mod regexlite;
pub mod residency;
pub mod rows;
pub mod scan;
pub mod schema;
pub mod simd;
pub mod sort;
pub mod table;
pub mod udf;
pub mod value;

pub use bitmap::Bitmap;
pub use block::{scan_blocks, scan_frames, Block, BlockCursor, BlockSink, FrameEvent, BLOCK_ROWS};
pub use column::{Column, DictColumn, F64Column, I64Column};
pub use dictionary::Dictionary;
pub use encoding::{CodeStorage, EncodingKind, I64Storage, IntStorage, PackedInt, ZoneMap};
pub use error::{Error, Result};
pub use membership::{row_sampled, MembershipSet};
pub use nullmask::NullMask;
pub use predicate::{
    estimate_selectivity, filter_members, filter_members_rowwise, fnv1a, BlockPredicate,
    CompiledPredicate, FrameFilter, Predicate, SelectivityEstimate, StrMatchKind, FNV_OFFSET,
};
pub use residency::{BlockCache, BlockCacheStats, Segment, SegmentMode, ValueBuf};
pub use rows::{Row, RowKey};
pub use scan::{rows_in_range, ScanChunk, ScanSource, Selection, SplittableSelection};
pub use schema::{ColumnDesc, ColumnKind, Schema};
pub use sort::{ResolvedSortOrder, SortColumn, SortOrder};
pub use table::Table;
pub use udf::UdfRegistry;
pub use value::Value;
