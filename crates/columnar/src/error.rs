//! Error type shared by the columnar substrate.

use std::fmt;

/// Errors produced by columnar-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column name was not found in a schema.
    UnknownColumn(String),
    /// A column was accessed with a type it does not have.
    TypeMismatch {
        /// Operation or column that failed.
        context: String,
        /// What the caller expected.
        expected: String,
        /// What was actually present.
        actual: String,
    },
    /// Two columns (or a column and a table) disagree on row count.
    LengthMismatch {
        /// What the caller expected.
        expected: usize,
        /// What was actually present.
        actual: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending index.
        row: usize,
        /// The number of rows available.
        len: usize,
    },
    /// A schema already contains a column with this name.
    DuplicateColumn(String),
    /// An invalid regular expression was supplied to the lite regex engine.
    BadRegex(String),
    /// A user-defined map function was not found in the registry.
    UnknownUdf(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            Error::TypeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, got {actual}"
            ),
            Error::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected} rows, got {actual}")
            }
            Error::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for length {len}")
            }
            Error::DuplicateColumn(name) => write!(f, "duplicate column: {name:?}"),
            Error::BadRegex(msg) => write!(f, "invalid regex: {msg}"),
            Error::UnknownUdf(name) => write!(f, "unknown map function: {name:?}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownColumn("DepDelay".into());
        assert!(e.to_string().contains("DepDelay"));
        let e = Error::TypeMismatch {
            context: "histogram".into(),
            expected: "Double".into(),
            actual: "String".into(),
        };
        assert!(e.to_string().contains("histogram"));
        assert!(e.to_string().contains("Double"));
        let e = Error::RowOutOfBounds { row: 9, len: 3 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::DuplicateColumn("x".into()));
    }
}
