//! Compressed integer column storage: the encoding layer under the block
//! scan pipeline.
//!
//! The paper's "trillion-cell" claim rests on workers holding far more cells
//! than naive 8-bytes-per-value storage allows (§5: columnar in-memory
//! storage sized to the cluster). This module provides the in-memory
//! counterpart of `hvc`'s on-disk delta coding: an [`IntStorage`] enum that
//! backs [`I64Column`](crate::column::I64Column) values and
//! [`DictColumn`](crate::column::DictColumn) dictionary codes with one of
//! four physical encodings:
//!
//! * [`IntStorage::Plain`] — the raw `Vec<T>`, for high-entropy data.
//! * [`IntStorage::BitPacked`] — frame-of-reference + bit-packing: values
//!   are stored as `value - base` deltas in `width` bits each, packed
//!   little-endian into `u64` words. A column of small-range integers
//!   (ports, bucket ids, year/month fields, dictionary codes) shrinks to
//!   `width/64` of its plain size.
//! * [`IntStorage::RunLength`] — run-length encoding for sorted or
//!   low-cardinality data: `(value, end)` pairs where `ends` is the
//!   cumulative (exclusive) end row of each run.
//! * [`IntStorage::Delta`] — per-64-row-block frame-of-reference delta
//!   coding for *sorted* (mostly-ascending) columns of mostly-unique values
//!   — timestamps, sequential ids. Each 64-row block stores its first value
//!   in `anchors`, and every row stores `value - previous value` bit-packed
//!   at a global `width` (block-anchor rows pack a zero). A million
//!   sequential timestamps shrink from 8 bytes to ~1 bit per row plus one
//!   anchor per block, matching what `hvc` already achieves on disk.
//!
//! ## Block-decoder contract
//!
//! Encodings stay opaque to kernels. The scan drivers in [`crate::scan`]
//! iterate [`crate::block::Block`] frames — 64-row-aligned windows — and
//! obtain each frame's value lanes from
//! [`ScanSource::decode_frame`](crate::scan::ScanSource::decode_frame):
//! plain storage borrows the backing slice zero-copy, bit-packed and delta
//! storage decode whole words through the const-generic unpackers (the
//! 64-value body of every frame is word-aligned for *every* width, so the
//! inner loop is fixed shifts with no straddle bookkeeping), and run-length
//! storage splats whole runs via an ascending run cursor — a run covering
//! the entire frame is a single `fill`, not 64 per-row steps. Decoding is
//! strictly in ascending row order, so kernels observe exactly the same
//! value sequence across every encoding — the scan-equivalence and encoding
//! property tests pin this down bit-for-bit.
//!
//! With the `simd` cargo feature, the unpack bodies are additionally
//! compiled under wider vector ISAs and dispatched at runtime (see
//! [`crate::simd`]); the decoded values are bit-identical either way.
//!
//! ## Encoding selection
//!
//! [`IntStorage::encode`] analyzes min/max, run structure, and adjacent
//! deltas in one pass and picks the cheapest encoding, but only if it saves
//! at least 25% over plain — marginal wins are not worth the decode work.
//! Selection happens at ingest wherever columns are built (`I64Column::new`,
//! `DictColumn::new`, and therefore CSV/JSONL/HVC readers and
//! `partition_table` slices, which re-analyze each micropartition).

/// The physical encoding of an [`IntStorage`], for tests, stats, and the
/// `hvc` file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingKind {
    /// Raw values.
    Plain,
    /// Frame-of-reference bit-packing.
    BitPacked,
    /// Run-length encoding.
    RunLength,
    /// Per-block anchors + bit-packed adjacent deltas.
    Delta,
}

impl std::fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EncodingKind::Plain => "plain",
            EncodingKind::BitPacked => "bit-packed",
            EncodingKind::RunLength => "run-length",
            EncodingKind::Delta => "delta",
        })
    }
}

mod sealed {
    /// [`PackedInt`](super::PackedInt) is sealed: the vector decode paths
    /// dispatch on `BYTES` and store raw lane bit patterns, which is only
    /// sound for the two known implementors.
    pub trait Sealed {}
    impl Sealed for i64 {}
    impl Sealed for u32 {}
}

/// Integer types that can live in an [`IntStorage`]: they convert to and
/// from unsigned deltas relative to a base value. Implemented for `i64`
/// (column values) and `u32` (dictionary codes); sealed.
pub trait PackedInt:
    Copy + Default + Ord + std::fmt::Debug + crate::simd::LaneOrd + sealed::Sealed + 'static
{
    /// Bytes one plain value occupies.
    const BYTES: usize;
    /// `self - base` as an unsigned delta (two's-complement exact).
    fn offset_from(self, base: Self) -> u64;
    /// `base + delta`, inverse of [`PackedInt::offset_from`].
    fn add_offset(base: Self, delta: u64) -> Self;
}

impl PackedInt for i64 {
    const BYTES: usize = 8;
    #[inline]
    fn offset_from(self, base: Self) -> u64 {
        self.wrapping_sub(base) as u64
    }
    #[inline]
    fn add_offset(base: Self, delta: u64) -> Self {
        base.wrapping_add(delta as i64)
    }
}

impl PackedInt for u32 {
    const BYTES: usize = 4;
    #[inline]
    fn offset_from(self, base: Self) -> u64 {
        self.wrapping_sub(base) as u64
    }
    #[inline]
    fn add_offset(base: Self, delta: u64) -> Self {
        base.wrapping_add(delta as u32)
    }
}

/// Rows per decoded block frame (the scan layer's 64-row granularity).
pub const BLOCK_ROWS: usize = 64;

/// Compressed (or plain) storage for a column of integers.
///
/// Immutable once built, like everything else in a [`Table`](crate::Table)
/// snapshot. See the [module docs](self) for the encoding inventory and the
/// block-decoder contract.
///
/// The bulk payloads — plain values and packed words — live in a
/// [`ValueBuf`](crate::residency::ValueBuf), so they are either owned heap
/// vectors (ingest, v2 files, the wire) or zero-copy windows into a mapped
/// `hvc` v3 [`Segment`](crate::residency::Segment) with lazy, chunk-granular
/// residency. The small side structures (run values/ends, delta anchors) are
/// always owned: they are consulted by every block decision, so keeping
/// them resident is the point. Decode paths touch only the words of the
/// frames they decode, which is what turns zone-map block skipping into
/// skipped *I/O*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntStorage<T> {
    /// Raw values.
    Plain(crate::residency::ValueBuf<T>),
    /// Frame-of-reference bit-packing: value `i` is
    /// `base + bits[i*width .. (i+1)*width]`, packed little-endian across
    /// `words`. `width` is at most 63 (a 64-bit range stays plain); width 0
    /// means every row equals `base`.
    BitPacked {
        /// The minimum value (frame of reference).
        base: T,
        /// Bits per packed delta (0..=63).
        width: u8,
        /// Number of rows.
        len: usize,
        /// `ceil(len * width / 64)` packed words.
        words: crate::residency::ValueBuf<u64>,
    },
    /// Run-length encoding: row `i` holds `values[k]` for the unique `k`
    /// with `ends[k-1] <= i < ends[k]` (`ends` is strictly increasing and
    /// `ends[last] == len`). Rows must fit in `u32` (micropartitions do).
    RunLength {
        /// One value per run.
        values: Vec<T>,
        /// Exclusive cumulative end row of each run.
        ends: Vec<u32>,
    },
    /// Per-block delta coding: row `i` is
    /// `anchors[i/64] + Σ delta[j]` for `j` in `(i/64)*64 + 1 ..= i`, where
    /// `delta[j] = value[j] - value[j-1]` is packed in `width` bits at the
    /// same little-endian layout as [`IntStorage::BitPacked`]. Rows at
    /// block starts (`j % 64 == 0`) pack a zero — their value is the
    /// anchor. Only viable when every adjacent delta fits `width` bits as
    /// an unsigned offset, i.e. for (near-)ascending data.
    Delta {
        /// Value of row `b * 64` for each block `b` (`ceil(len/64)` of them).
        anchors: Vec<T>,
        /// Bits per packed adjacent delta (0..=63).
        width: u8,
        /// Number of rows.
        len: usize,
        /// `ceil(len * width / 64)` packed words.
        words: crate::residency::ValueBuf<u64>,
    },
}

impl<T> Default for IntStorage<T> {
    fn default() -> Self {
        IntStorage::Plain(crate::residency::ValueBuf::default())
    }
}

/// Bits needed to represent `delta` (0 for 0).
#[inline]
fn bits_needed(delta: u64) -> usize {
    (64 - delta.leading_zeros()) as usize
}

/// The low `width` bits set (`width` <= 63).
#[inline]
fn low_mask(width: usize) -> u64 {
    debug_assert!(width < 64);
    (1u64 << width) - 1
}

/// The packed-word index range covering packed values `start..end` at
/// `width` bits each — the residency footprint of a decode, handed to
/// [`ValueBuf::hot`](crate::residency::ValueBuf::hot) so lazily mapped
/// storage faults in only the words a frame actually reads.
#[inline]
fn word_range(width: usize, start: usize, end: usize) -> std::ops::Range<usize> {
    (start * width) / 64..(end * width).div_ceil(64)
}

/// Packed delta at row `i` for an arbitrary (non-constant) width: the
/// per-value shift/mask reference every block unpacker must match.
#[inline]
fn packed_at(words: &[u64], width: usize, i: usize) -> u64 {
    let bit = i * width;
    let w = bit >> 6;
    let off = bit & 63;
    let mut d = words[w] >> off;
    if off + width > 64 {
        d |= words[w + 1] << (64 - off);
    }
    d & low_mask(width)
}

impl<T: PackedInt> IntStorage<T> {
    /// Analyze `values` (min/max range, run structure, adjacent deltas) and
    /// store them under the cheapest encoding, keeping them plain unless a
    /// packed form saves at least 25% of the bytes.
    pub fn encode(values: Vec<T>) -> Self {
        let n = values.len();
        if n == 0 {
            return IntStorage::Plain(values.into());
        }
        let mut min = values[0];
        let mut max = values[0];
        let mut runs = 1usize;
        // Widest adjacent delta at non-anchor rows, as an unsigned offset;
        // descending data produces a huge offset and rules delta out.
        let mut delta_width = 0usize;
        for i in 1..n {
            let v = values[i];
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
            if v != values[i - 1] {
                runs += 1;
            }
            if !i.is_multiple_of(BLOCK_ROWS) {
                delta_width = delta_width.max(bits_needed(v.offset_from(values[i - 1])));
            }
        }
        let plain_cost = n * T::BYTES;
        let width = bits_needed(max.offset_from(min));
        let packed_cost = if width >= 64 {
            usize::MAX
        } else {
            (n * width).div_ceil(64) * 8
        };
        let rl_cost = if n > u32::MAX as usize {
            usize::MAX
        } else {
            runs * (T::BYTES + 4)
        };
        let delta_cost = if delta_width >= 64 {
            usize::MAX
        } else {
            n.div_ceil(BLOCK_ROWS) * T::BYTES + (n * delta_width).div_ceil(64) * 8
        };
        // Only leave plain when the saving is real (>= 25%).
        let budget = plain_cost - plain_cost / 4;
        if rl_cost <= packed_cost && rl_cost <= delta_cost && rl_cost <= budget {
            Self::run_length_from(&values)
        } else if delta_cost < packed_cost && delta_cost <= budget {
            Self::delta_from(&values, delta_width)
        } else if packed_cost <= budget {
            Self::bit_packed_from(&values, min, width)
        } else {
            IntStorage::Plain(values.into())
        }
    }

    /// Store `values` uncompressed regardless of their shape (benchmarks
    /// and encoding-equivalence tests force specific variants).
    pub fn plain_of(values: Vec<T>) -> Self {
        IntStorage::Plain(values.into())
    }

    /// Force frame-of-reference bit-packing. `None` when the value range
    /// needs all 64 bits (only possible for `i64` extremes).
    pub fn bit_packed_of(values: &[T]) -> Option<Self> {
        let Some(&first) = values.first() else {
            return Some(IntStorage::BitPacked {
                base: T::default(),
                width: 0,
                len: 0,
                words: crate::residency::ValueBuf::default(),
            });
        };
        let min = values.iter().copied().fold(first, T::min);
        let max = values.iter().copied().fold(first, T::max);
        let width = bits_needed(max.offset_from(min));
        (width < 64).then(|| Self::bit_packed_from(values, min, width))
    }

    /// Force run-length encoding. `None` when there are more rows than
    /// `u32` can index.
    pub fn run_length_of(values: &[T]) -> Option<Self> {
        (values.len() <= u32::MAX as usize).then(|| Self::run_length_from(values))
    }

    /// Force per-block delta coding. `None` when some adjacent delta does
    /// not fit 63 bits as an unsigned offset (descending `i64` data).
    pub fn delta_of(values: &[T]) -> Option<Self> {
        let mut delta_width = 0usize;
        for i in 1..values.len() {
            if !i.is_multiple_of(BLOCK_ROWS) {
                delta_width = delta_width.max(bits_needed(values[i].offset_from(values[i - 1])));
            }
        }
        (delta_width < 64).then(|| Self::delta_from(values, delta_width))
    }

    fn bit_packed_from(values: &[T], base: T, width: usize) -> Self {
        debug_assert!(width < 64);
        let n = values.len();
        let mut words = vec![0u64; (n * width).div_ceil(64)];
        if width > 0 {
            let mut bit = 0usize;
            for &v in values {
                let d = v.offset_from(base);
                let w = bit >> 6;
                let off = bit & 63;
                words[w] |= d << off;
                if off + width > 64 {
                    words[w + 1] |= d >> (64 - off);
                }
                bit += width;
            }
        }
        IntStorage::BitPacked {
            base,
            width: width as u8,
            len: n,
            words: words.into(),
        }
    }

    fn run_length_from(values: &[T]) -> Self {
        let mut rvalues = Vec::new();
        let mut ends = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if rvalues.last() != Some(&v) || ends.is_empty() {
                rvalues.push(v);
                ends.push(i as u32 + 1);
            } else {
                *ends.last_mut().expect("non-empty") = i as u32 + 1;
            }
        }
        IntStorage::RunLength {
            values: rvalues,
            ends,
        }
    }

    fn delta_from(values: &[T], width: usize) -> Self {
        debug_assert!(width < 64);
        let n = values.len();
        let mut anchors = Vec::with_capacity(n.div_ceil(BLOCK_ROWS));
        let mut words = vec![0u64; (n * width).div_ceil(64)];
        let mut bit = 0usize;
        for (i, &v) in values.iter().enumerate() {
            let d = if i.is_multiple_of(BLOCK_ROWS) {
                anchors.push(v);
                0
            } else {
                v.offset_from(values[i - 1])
            };
            if width > 0 {
                debug_assert!(bits_needed(d) <= width);
                let w = bit >> 6;
                let off = bit & 63;
                words[w] |= d << off;
                if off + width > 64 {
                    words[w + 1] |= d >> (64 - off);
                }
                bit += width;
            }
        }
        IntStorage::Delta {
            anchors,
            width: width as u8,
            len: n,
            words: words.into(),
        }
    }

    /// Rebuild a storage from its parts (used by `hvc` decode, which
    /// preserves the encoded representation instead of re-analyzing).
    /// Returns `None` if the parts are structurally inconsistent.
    pub fn from_bit_packed(base: T, width: u8, len: usize, words: Vec<u64>) -> Option<Self> {
        Self::from_bit_packed_buf(base, width, len, words.into())
    }

    /// [`IntStorage::from_bit_packed`] over an arbitrary word buffer —
    /// the mapped-file (`hvc` v3) construction path. Validation never
    /// touches the buffer's bytes, only its length.
    pub fn from_bit_packed_buf(
        base: T,
        width: u8,
        len: usize,
        words: crate::residency::ValueBuf<u64>,
    ) -> Option<Self> {
        if width >= 64 || words.len() != (len * width as usize).div_ceil(64) {
            return None;
        }
        Some(IntStorage::BitPacked {
            base,
            width,
            len,
            words,
        })
    }

    /// Rebuild a run-length storage from its parts; `None` unless `ends`
    /// is strictly increasing, matches `values` in length, and is non-empty
    /// exactly when `values` is.
    pub fn from_run_length(values: Vec<T>, ends: Vec<u32>) -> Option<Self> {
        if values.len() != ends.len() || ends.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(IntStorage::RunLength { values, ends })
    }

    /// Rebuild a delta storage from its parts (`hvc` decode); `None` if
    /// the anchor or word counts are inconsistent with `len`/`width`.
    pub fn from_delta(anchors: Vec<T>, width: u8, len: usize, words: Vec<u64>) -> Option<Self> {
        Self::from_delta_buf(anchors, width, len, words.into())
    }

    /// [`IntStorage::from_delta`] over an arbitrary word buffer — the
    /// mapped-file (`hvc` v3) construction path. Anchors stay owned: every
    /// frame decode starts from one, so they are resident by design.
    pub fn from_delta_buf(
        anchors: Vec<T>,
        width: u8,
        len: usize,
        words: crate::residency::ValueBuf<u64>,
    ) -> Option<Self> {
        if width >= 64
            || anchors.len() != len.div_ceil(BLOCK_ROWS)
            || words.len() != (len * width as usize).div_ceil(64)
        {
            return None;
        }
        Some(IntStorage::Delta {
            anchors,
            width,
            len,
            words,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            IntStorage::Plain(v) => v.len(),
            IntStorage::BitPacked { len, .. } | IntStorage::Delta { len, .. } => *len,
            IntStorage::RunLength { ends, .. } => ends.last().map_or(0, |&e| e as usize),
        }
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which encoding this storage uses.
    pub fn kind(&self) -> EncodingKind {
        match self {
            IntStorage::Plain(_) => EncodingKind::Plain,
            IntStorage::BitPacked { .. } => EncodingKind::BitPacked,
            IntStorage::RunLength { .. } => EncodingKind::RunLength,
            IntStorage::Delta { .. } => EncodingKind::Delta,
        }
    }

    /// The backing slice when the storage is plain *and owned* (the scan
    /// drivers' fully-resident fast path). Mapped plain storage returns
    /// `None` on purpose: that routes scans through the frame-granular
    /// decoders, whose [`ValueBuf::hot`](crate::residency::ValueBuf::hot)
    /// touches are what keep zone-skipped blocks from faulting in.
    #[inline]
    pub fn as_plain(&self) -> Option<&[T]> {
        match self {
            IntStorage::Plain(v) => v.as_owned_slice(),
            _ => None,
        }
    }

    /// Value at row `i`. O(1) for plain and bit-packed storage,
    /// O(log runs) for run-length, O(row-in-block) for delta.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        match self {
            IntStorage::Plain(v) => v.hot(i..i + 1)[i],
            IntStorage::BitPacked {
                base,
                width,
                len,
                words,
            } => {
                assert!(i < *len, "row {i} out of range {len}");
                let width = *width as usize;
                if width == 0 {
                    return *base;
                }
                let words = words.hot(word_range(width, i, i + 1));
                T::add_offset(*base, packed_at(words, width, i))
            }
            IntStorage::RunLength { values, ends } => {
                values[ends.partition_point(|&e| e as usize <= i)]
            }
            IntStorage::Delta {
                anchors,
                width,
                len,
                words,
            } => {
                assert!(i < *len, "row {i} out of range {len}");
                let width = *width as usize;
                let mut v = anchors[i / BLOCK_ROWS];
                if width > 0 {
                    let start = i / BLOCK_ROWS * BLOCK_ROWS;
                    let words = words.hot(word_range(width, start, i + 1));
                    for j in (start + 1)..=i {
                        v = T::add_offset(v, packed_at(words, width, j));
                    }
                }
                v
            }
        }
    }

    /// Like [`IntStorage::get`], but tuned for *ascending* row sequences.
    /// `cursor` is opaque state (start at 0, reuse across the calls of one
    /// scan): run-length storage keeps the current run index there, so an
    /// ascending walk advances it O(1) amortized instead of binary-searching
    /// per row. Backward jumps fall back to a binary re-seek, so the method
    /// is correct for any access order.
    #[inline]
    pub fn get_ascending(&self, cursor: &mut usize, i: usize) -> T {
        match self {
            IntStorage::RunLength { .. } => self.run_at(cursor, i).0,
            _ => self.get(i),
        }
    }

    /// Run-length lookup returning `(value, exclusive end of the run
    /// containing row i)`; for every other encoding the "run" is the single
    /// row `(value, i + 1)`. Ascending callers (sparse scans, samples) use
    /// the returned end to serve *every remaining row of the run — and a
    /// run covering a whole 64-row frame serves the whole frame — without
    /// re-probing the storage.
    #[inline]
    pub fn run_at(&self, cursor: &mut usize, i: usize) -> (T, usize) {
        match self {
            IntStorage::RunLength { values, ends } => {
                let mut run = *cursor;
                if run >= ends.len() || (run > 0 && ends[run - 1] as usize > i) {
                    run = ends.partition_point(|&e| e as usize <= i);
                } else if ends[run] as usize <= i {
                    // Ahead of the cursor: O(1) when the target sits in the
                    // next run (the common ascending step), a binary
                    // re-seek into the tail for longer jumps — a cold
                    // cursor never walks the run list linearly.
                    run += 1;
                    if run < ends.len() && (ends[run] as usize) <= i {
                        run += ends[run..].partition_point(|&e| e as usize <= i);
                    }
                }
                *cursor = run;
                (values[run], ends[run] as usize)
            }
            _ => (self.get(i), i + 1),
        }
    }

    /// Decode rows `start .. start + out.len()` into `out`, in row order.
    /// Works at any offset; the aligned whole-frame entry point the scan
    /// drivers use is [`IntStorage::decode_frame`].
    pub fn decode_into(&self, start: usize, out: &mut [T]) {
        match self {
            IntStorage::Plain(v) => {
                let end = start + out.len();
                out.copy_from_slice(&v.hot(start..end)[start..end]);
            }
            IntStorage::BitPacked {
                base, width, words, ..
            } => {
                let width = *width as usize;
                if width == 0 {
                    out.fill(*base);
                } else {
                    let ws = words.hot(word_range(width, start, start + out.len()));
                    unpack_span(ws, *base, width, start, out);
                }
            }
            IntStorage::RunLength { .. } => {
                let mut cursor = 0usize;
                let mut i = start;
                let mut o = 0usize;
                while o < out.len() {
                    let (v, run_end) = self.run_at(&mut cursor, i);
                    let take = run_end.min(start + out.len()) - i;
                    out[o..o + take].fill(v);
                    i += take;
                    o += take;
                }
            }
            IntStorage::Delta { .. } => {
                // Frame-wise: decode each overlapping 64-row block and copy
                // the requested span.
                let mut buf = [T::default(); BLOCK_ROWS];
                let n = self.len();
                let mut i = start;
                let mut o = 0usize;
                let mut cursor = 0usize;
                while o < out.len() {
                    let fb = i / BLOCK_ROWS * BLOCK_ROWS;
                    let flen = BLOCK_ROWS.min(n - fb);
                    let lanes = self.decode_frame(&mut cursor, fb, flen, &mut buf);
                    let take = (fb + flen).min(start + out.len()) - i;
                    out[o..o + take].copy_from_slice(&lanes[i - fb..i - fb + take]);
                    i += take;
                    o += take;
                }
            }
        }
    }

    /// Decode the 64-row-aligned frame `base .. base + len` (`len <= 64`),
    /// returning the decoded value lanes — borrowed zero-copy from plain
    /// storage, materialized into `buf` otherwise. `cursor` is opaque
    /// ascending scan state shared with [`IntStorage::run_at`] (run-length
    /// storage resumes from the current run instead of re-seeking, so a run
    /// covering the whole frame costs one `fill`).
    ///
    /// This is the block-decoder entry point of the scan pipeline: frames
    /// are always word-aligned in the packed bit stream (64 values × any
    /// width is a whole number of words), so bit-packed and delta decode
    /// run the const-generic whole-word unpackers with no straddle head.
    #[inline]
    pub fn decode_frame<'a>(
        &'a self,
        cursor: &mut usize,
        base: usize,
        len: usize,
        buf: &'a mut [T; BLOCK_ROWS],
    ) -> &'a [T] {
        debug_assert!(base.is_multiple_of(BLOCK_ROWS) && len <= BLOCK_ROWS);
        match self {
            IntStorage::Plain(v) => &v.hot(base..base + len)[base..base + len],
            IntStorage::BitPacked {
                base: b,
                width,
                words,
                ..
            } => {
                let width = *width as usize;
                let out = &mut buf[..len];
                if width == 0 {
                    out.fill(*b);
                } else {
                    let ws = words.hot(word_range(width, base, base + len));
                    unpack_span(ws, *b, width, base, out);
                }
                &buf[..len]
            }
            IntStorage::RunLength { .. } => {
                let mut i = base;
                let mut o = 0usize;
                while o < len {
                    let (v, run_end) = self.run_at(cursor, i);
                    let take = run_end.min(base + len) - i;
                    buf[o..o + take].fill(v);
                    i += take;
                    o += take;
                }
                &buf[..len]
            }
            IntStorage::Delta {
                anchors,
                width,
                words,
                ..
            } => {
                let width = *width as usize;
                let out = &mut buf[..len];
                if width == 0 {
                    out.fill(anchors[base / BLOCK_ROWS]);
                } else {
                    // Unpack the packed deltas of the frame (anchor rows
                    // packed zero), then prefix-sum from the anchor.
                    let ws = words.hot(word_range(width, base, base + len));
                    unpack_span(ws, T::default(), width, base, out);
                    prefix_frame(anchors[base / BLOCK_ROWS], out);
                }
                &buf[..len]
            }
        }
    }

    /// Decode rows `start..end` into a fresh vector (partition slicing).
    pub fn decode_range(&self, start: usize, end: usize) -> Vec<T> {
        let mut out = vec![T::default(); end - start];
        self.decode_into(start, &mut out);
        out
    }

    /// Decode every row (tests, format conversions).
    pub fn to_vec(&self) -> Vec<T> {
        self.decode_range(0, self.len())
    }

    /// Approximate heap footprint in bytes of the encoded payload. Mapped
    /// (file-backed) payloads count zero here — see
    /// [`IntStorage::mapped_bytes`].
    pub fn heap_bytes(&self) -> usize {
        match self {
            IntStorage::Plain(v) => v.heap_bytes(),
            IntStorage::BitPacked { words, .. } => words.heap_bytes(),
            IntStorage::RunLength { values, ends } => values.len() * T::BYTES + ends.len() * 4,
            IntStorage::Delta { anchors, words, .. } => {
                anchors.len() * T::BYTES + words.heap_bytes()
            }
        }
    }

    /// Bytes of the payload addressed through a lazily-resident mapped
    /// segment (zero for fully owned storage) — the file-backed capacity a
    /// column can reach without holding it on the heap.
    pub fn mapped_bytes(&self) -> usize {
        match self {
            IntStorage::Plain(v) => v.mapped_bytes(),
            IntStorage::BitPacked { words, .. } | IntStorage::Delta { words, .. } => {
                words.mapped_bytes()
            }
            IntStorage::RunLength { .. } => 0,
        }
    }

    /// Selection word of the inclusive range test `lo <= value <= hi` over
    /// the 64-row-aligned frame `base .. base + len` (`len <= 64`): bit `k`
    /// set iff row `base + k` passes. `cursor` is the same opaque ascending
    /// scan state as [`IntStorage::decode_frame`].
    ///
    /// This is the block predicate's value compare, specialized per
    /// encoding so the comparison happens in the cheapest domain:
    ///
    /// * **Plain** — lane compares on the backing slice, no copy.
    /// * **Bit-packed** — the bounds are translated into the
    ///   frame-of-reference delta domain once, then the *raw packed deltas*
    ///   are unpacked and compared directly — no per-row reconstruction of
    ///   the value (`base + delta`) at all.
    /// * **Run-length** — one compare per run overlapping the frame; a run
    ///   covering the whole frame costs a single compare.
    /// * **Delta** — decodes the frame (the prefix sum is inherent) and
    ///   compares lanes.
    ///
    /// Bit-identical to testing `lo <= self.get(base + k) <= hi` per row.
    pub fn range_frame_word(
        &self,
        cursor: &mut usize,
        base: usize,
        len: usize,
        lo: T,
        hi: T,
        buf: &mut [T; BLOCK_ROWS],
    ) -> u64 {
        debug_assert!(base.is_multiple_of(BLOCK_ROWS) && len <= BLOCK_ROWS);
        if hi < lo || len == 0 {
            return 0;
        }
        match self {
            IntStorage::Plain(v) => {
                crate::simd::range_word_incl(&v.hot(base..base + len)[base..base + len], lo, hi)
            }
            IntStorage::BitPacked {
                base: b,
                width,
                words,
                ..
            } => {
                let width = *width as usize;
                if width == 0 {
                    return if lo <= *b && *b <= hi {
                        crate::bitmap::span_mask(0, len)
                    } else {
                        0
                    };
                }
                if hi < *b {
                    return 0;
                }
                // Translate the bounds into the packed-delta domain: value
                // is `b + d` with `d < 2^width`, so `lo <= value <= hi`
                // iff `dlo <= d <= dhi`.
                let dlo = if lo <= *b { 0 } else { lo.offset_from(*b) };
                let top = (1u64 << width) - 1;
                if dlo > top {
                    return 0;
                }
                let dhi = hi.offset_from(*b).min(top);
                let out = &mut buf[..len];
                let ws = words.hot(word_range(width, base, base + len));
                unpack_span(ws, T::default(), width, base, out);
                crate::simd::range_word_incl(
                    out,
                    T::add_offset(T::default(), dlo),
                    T::add_offset(T::default(), dhi),
                )
            }
            IntStorage::RunLength { .. } => {
                let mut w = 0u64;
                let mut i = base;
                let end = base + len;
                while i < end {
                    let (v, run_end) = self.run_at(cursor, i);
                    let take_end = run_end.min(end);
                    if v >= lo && v <= hi {
                        w |= crate::bitmap::span_mask(i - base, take_end - base);
                    }
                    i = take_end;
                }
                w
            }
            IntStorage::Delta { .. } => {
                let lanes = self.decode_frame(cursor, base, len, buf);
                crate::simd::range_word_incl(lanes, lo, hi)
            }
        }
    }
}

/// Per-64-row-block minimum and maximum of a column's stored values — the
/// zone maps the block filter pipeline (and the range vizketch) consults to
/// skip whole blocks without decoding them: when a block's extremes sit
/// entirely inside a range predicate every row passes, and when they sit
/// entirely outside none can.
///
/// Zone maps are recorded at ingest (column constructors build them right
/// after encoding selection) and fold the *stored* value of every row,
/// including the placeholder values of null rows — so a skip decision is
/// conservative but always sound once combined with the validity word.
/// They are derived acceleration state: excluded from heap-footprint
/// accounting and never serialized.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZoneMap<T> {
    mins: Vec<T>,
    maxs: Vec<T>,
}

impl<T: Copy> ZoneMap<T> {
    /// Rebuild a zone map from persisted per-block extremes (`hvc` v3
    /// stores them in the header so a mapped open never has to decode the
    /// payload it exists to skip). `None` when the vectors disagree.
    pub fn from_parts(mins: Vec<T>, maxs: Vec<T>) -> Option<Self> {
        (mins.len() == maxs.len()).then_some(ZoneMap { mins, maxs })
    }

    /// Per-block minima (persistence; index with [`ZoneMap::block`]).
    pub fn mins(&self) -> &[T] {
        &self.mins
    }

    /// Per-block maxima (persistence; index with [`ZoneMap::block`]).
    pub fn maxs(&self) -> &[T] {
        &self.maxs
    }

    /// Number of 64-row blocks covered.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// True when the map covers no blocks (empty column).
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// `(min, max)` of block `b` (rows `b * 64 .. (b + 1) * 64`, clipped to
    /// the column length).
    #[inline]
    pub fn block(&self, b: usize) -> (T, T) {
        (self.mins[b], self.maxs[b])
    }

    /// Approximate heap footprint in bytes (diagnostics only; zone maps are
    /// deliberately *not* part of column footprint accounting).
    pub fn heap_bytes(&self) -> usize {
        (self.mins.len() + self.maxs.len()) * std::mem::size_of::<T>()
    }
}

impl<T: PackedInt> ZoneMap<T> {
    /// Fold the per-block extremes of `storage` through the block decoders
    /// (run-length storage folds once per run, not per row).
    pub fn build(storage: &IntStorage<T>) -> Self {
        let n = storage.len();
        let blocks = n.div_ceil(BLOCK_ROWS);
        let mut mins = Vec::with_capacity(blocks);
        let mut maxs = Vec::with_capacity(blocks);
        if let IntStorage::RunLength { .. } = storage {
            let mut cursor = 0usize;
            for b in 0..blocks {
                let start = b * BLOCK_ROWS;
                let end = (start + BLOCK_ROWS).min(n);
                let (mut mn, run_end) = storage.run_at(&mut cursor, start);
                let mut mx = mn;
                let mut i = run_end;
                while i < end {
                    let (v, run_end) = storage.run_at(&mut cursor, i);
                    mn = mn.min(v);
                    mx = mx.max(v);
                    i = run_end;
                }
                mins.push(mn);
                maxs.push(mx);
            }
        } else {
            let mut buf = [T::default(); BLOCK_ROWS];
            let mut cursor = 0usize;
            for b in 0..blocks {
                let start = b * BLOCK_ROWS;
                let len = (n - start).min(BLOCK_ROWS);
                let lanes = storage.decode_frame(&mut cursor, start, len, &mut buf);
                let mut mn = lanes[0];
                let mut mx = lanes[0];
                for &v in &lanes[1..] {
                    mn = mn.min(v);
                    mx = mx.max(v);
                }
                mins.push(mn);
                maxs.push(mx);
            }
        }
        ZoneMap { mins, maxs }
    }
}

impl ZoneMap<f64> {
    /// Per-block extremes of a float column. `NaN` values (null rows keep
    /// their raw storage) are dropped by the `f64::min`/`f64::max` folds; a
    /// block of only `NaN`s records the `(+inf, -inf)` identities, which no
    /// range test matches — sound, because those rows are all null anyway.
    pub fn from_f64(values: &[f64]) -> Self {
        let blocks = values.len().div_ceil(BLOCK_ROWS);
        let mut mins = Vec::with_capacity(blocks);
        let mut maxs = Vec::with_capacity(blocks);
        for chunk in values.chunks(BLOCK_ROWS) {
            let mut mn = f64::INFINITY;
            let mut mx = f64::NEG_INFINITY;
            for &v in chunk {
                mn = mn.min(v);
                mx = mx.max(v);
            }
            mins.push(mn);
            maxs.push(mx);
        }
        ZoneMap { mins, maxs }
    }
}

/// Unpack `out.len()` width-`W` values starting at value index `start`:
/// the const-generic unpacker body, generalized to every width 1..=63.
///
/// Aligned 64-value groups span exactly `W` whole words, so the body loop
/// reads a `W`-word window with compile-time-constant shifts (the straddle
/// branch folds away for widths dividing 64). Produces bit-identical values
/// to the per-value [`packed_at`] reference at every offset.
#[inline(always)]
fn unpack_span_body<T: PackedInt, const W: usize>(
    words: &[u64],
    base: T,
    start: usize,
    out: &mut [T],
) {
    debug_assert!((1..64).contains(&W));
    let mask = low_mask(W);
    let mut i = start;
    let mut o = 0usize;
    // Head: reach a 64-value (W-word) group boundary.
    while o < out.len() && !i.is_multiple_of(64) {
        out[o] = T::add_offset(base, packed_at(words, W, i));
        i += 1;
        o += 1;
    }
    // Body: whole 64-value groups from W whole words, fixed shifts.
    while o + 64 <= out.len() {
        let grp = &words[i / 64 * W..i / 64 * W + W];
        for k in 0..64 {
            let bit = k * W;
            let wi = bit >> 6;
            let off = bit & 63;
            let mut d = grp[wi] >> off;
            if off + W > 64 {
                d |= grp[wi + 1] << (64 - off);
            }
            out[o + k] = T::add_offset(base, d & mask);
        }
        i += 64;
        o += 64;
    }
    // Tail.
    while o < out.len() {
        out[o] = T::add_offset(base, packed_at(words, W, i));
        i += 1;
        o += 1;
    }
}

/// The same unpack body compiled under wider vector ISAs for the
/// runtime-dispatched `simd` fast path; bit-identical output by
/// construction (same source, integer ops only).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
fn unpack_span_avx2<T: PackedInt, const W: usize>(
    words: &[u64],
    base: T,
    start: usize,
    out: &mut [T],
) {
    unpack_span_body::<T, W>(words, base, start, out);
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512bw")]
fn unpack_span_avx512<T: PackedInt, const W: usize>(
    words: &[u64],
    base: T,
    start: usize,
    out: &mut [T],
) {
    unpack_span_body::<T, W>(words, base, start, out);
}

/// Byte-gather unpack for widths ≤ 25 on AVX-512 + VBMI: at 16-value
/// granularity the packed stream is byte-exact (16·W bits = 2·W bytes), so
/// one `vpermb` gathers each value's 4-byte window into a `u32` lane, a
/// per-lane variable shift (`vpsrlvd`) drops the sub-byte offset, and a
/// mask isolates the W value bits — 16 values in ~6 vector ops, for *any*
/// width, straddling or not. The per-value windows never exceed 32 bits
/// because `(j·W) % 8 + W ≤ 7 + 25 = 32`.
///
/// Bit-identical to [`unpack_span_body`] (pinned by the per-width tests
/// and the simd equivalence proptests); loads near the end of the word
/// stream are mask-suppressed, never out of bounds.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod vbmi {
    use super::{low_mask, packed_at, PackedInt};
    use std::arch::x86_64::*;

    /// Per-16-value tables: value `j`'s window starts at byte `(j*W)/8`
    /// (gathered as 4 consecutive bytes into lane `j`) with a residual
    /// shift of `(j*W) % 8` bits.
    const fn tables<const W: usize>() -> ([u8; 64], [u32; 16]) {
        let mut idx = [0u8; 64];
        let mut sh = [0u32; 16];
        let mut j = 0;
        while j < 16 {
            let bit = j * W;
            sh[j] = (bit % 8) as u32;
            let mut b = 0;
            while b < 4 {
                idx[4 * j + b] = (bit / 8 + b) as u8;
                b += 1;
            }
            j += 1;
        }
        (idx, sh)
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512vl,avx512vbmi")]
    pub(super) fn unpack_span_vbmi<T: PackedInt, const W: usize>(
        words: &[u64],
        base: T,
        start: usize,
        out: &mut [T],
    ) {
        debug_assert!((1..=25).contains(&W));
        let (idx, sh) = const { tables::<W>() };
        // Safety: every intrinsic below is gated by this function's target
        // features; loads are masked to the words slice.
        unsafe {
            let idxv = _mm512_loadu_si512(idx.as_ptr() as *const _);
            let shv = _mm512_loadu_si512(sh.as_ptr() as *const _);
            let maskv = _mm512_set1_epi32(low_mask(W) as i32);
            let bytes = words.as_ptr() as *const u8;
            let nbytes = words.len() * 8;
            let mut i = start;
            let mut o = 0usize;
            // Head: reach 16-value (2·W-byte) alignment.
            while o < out.len() && !i.is_multiple_of(16) {
                out[o] = T::add_offset(base, packed_at(words, W, i));
                i += 1;
                o += 1;
            }
            while o + 16 <= out.len() {
                let byte_off = i * W / 8;
                let remain = nbytes - byte_off;
                let window = if remain >= 64 {
                    _mm512_loadu_si512(bytes.add(byte_off) as *const _)
                } else {
                    let m: u64 = (1u64 << remain) - 1;
                    _mm512_maskz_loadu_epi8(m, bytes.add(byte_off) as *const _)
                };
                let gathered = _mm512_permutexvar_epi8(idxv, window);
                let shifted = _mm512_srlv_epi32(gathered, shv);
                let masked = _mm512_and_si512(shifted, maskv);
                // Apply the frame of reference and store while still in
                // registers. `PackedInt` is sealed, so `BYTES` identifies
                // the lane type exactly; wrapping vector adds match
                // `add_offset`'s wrapping semantics bit for bit.
                let base_bits = base.offset_from(T::default());
                if T::BYTES == 8 {
                    let basev = _mm512_set1_epi64(base_bits as i64);
                    let lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(masked));
                    let hi = _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64::<1>(masked));
                    let p = out.as_mut_ptr().add(o) as *mut __m512i;
                    _mm512_storeu_si512(p, _mm512_add_epi64(lo, basev));
                    _mm512_storeu_si512(p.add(1), _mm512_add_epi64(hi, basev));
                } else {
                    let basev = _mm512_set1_epi32(base_bits as u32 as i32);
                    _mm512_storeu_si512(
                        out.as_mut_ptr().add(o) as *mut __m512i,
                        _mm512_add_epi32(masked, basev),
                    );
                }
                i += 16;
                o += 16;
            }
            // Tail.
            while o < out.len() {
                out[o] = T::add_offset(base, packed_at(words, W, i));
                i += 1;
                o += 1;
            }
        }
    }
}

/// Turn one frame of unpacked deltas into values: `out[k] = anchor +
/// out[0] + .. + out[k]` in the wrapping offset domain. The scalar
/// reference body; the lane-parallel variant below must stay bit-identical
/// (wrapping integer adds are associative, so regrouping is exact).
#[inline]
fn prefix_frame_body<T: PackedInt>(anchor: T, out: &mut [T]) {
    let mut v = anchor;
    for slot in out.iter_mut() {
        v = T::add_offset(v, slot.offset_from(T::default()));
        *slot = v;
    }
}

/// 4-lane Hillis–Steele prefix sum with a running carry for 64-bit lanes
/// (the sorted/id `I64Storage::Delta` hot path); 32-bit code lanes fall
/// back to the scalar body, whose dependency chain is short enough at
/// width 4.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
fn prefix_frame_avx2<T: PackedInt>(anchor: T, out: &mut [T]) {
    use std::arch::x86_64::*;
    if T::BYTES != 8 {
        prefix_frame_body(anchor, out);
        return;
    }
    // Lanes already hold the raw delta bit patterns (`add_offset` from
    // default is the identity embedding), so the whole computation runs on
    // u64 bits; wrapping vector adds match `add_offset` bit for bit.
    // Safety: intrinsics gated by this function's target features; loads
    // and stores stay inside `out`.
    unsafe {
        let mut carry = _mm256_set1_epi64x(anchor.offset_from(T::default()) as i64);
        let n = out.len();
        let mut o = 0usize;
        while o + 4 <= n {
            let ptr = out.as_mut_ptr().add(o) as *mut __m256i;
            let mut x = _mm256_loadu_si256(ptr);
            // In-vector prefix: within each 128-bit half, then carry the
            // low half's total into the high half.
            x = _mm256_add_epi64(x, _mm256_slli_si256::<8>(x));
            let lo_sum = _mm256_permute4x64_epi64::<0b01_01_01_01>(x);
            let cross = _mm256_blend_epi32::<0b1111_0000>(_mm256_setzero_si256(), lo_sum);
            x = _mm256_add_epi64(x, cross);
            x = _mm256_add_epi64(x, carry);
            carry = _mm256_permute4x64_epi64::<0b11_11_11_11>(x);
            _mm256_storeu_si256(ptr, x);
            o += 4;
        }
        if o < n {
            let v = T::add_offset(T::default(), _mm256_extract_epi64::<0>(carry) as u64);
            prefix_frame_body(v, &mut out[o..]);
        }
    }
}

#[inline]
fn prefix_frame<T: PackedInt>(anchor: T, out: &mut [T]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match crate::simd::current_tier() {
        crate::simd::Tier::Avx2 | crate::simd::Tier::Avx512 => {
            // SAFETY: both tiers are only reported after runtime detection
            // confirmed at least avx2 — the one feature the callee enables.
            return unsafe { prefix_frame_avx2(anchor, out) };
        }
        crate::simd::Tier::Scalar => {}
    }
    prefix_frame_body(anchor, out);
}

#[inline]
fn unpack_span_w<T: PackedInt, const W: usize>(
    words: &[u64],
    base: T,
    start: usize,
    out: &mut [T],
) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    match crate::simd::current_tier() {
        crate::simd::Tier::Avx512 => {
            if W <= 25 && crate::simd::vbmi_available() {
                // SAFETY: guarded by `vbmi_available()` (runtime
                // avx512vbmi detection) on top of the Avx512 tier, which
                // itself implies avx512f/dq/vl/bw were detected.
                return unsafe { vbmi::unpack_span_vbmi::<T, W>(words, base, start, out) };
            }
            // SAFETY: `Tier::Avx512` is only reported after runtime
            // detection confirmed avx512f/dq/vl/bw — the features the
            // callee enables.
            return unsafe { unpack_span_avx512::<T, W>(words, base, start, out) };
        }
        crate::simd::Tier::Avx2 => {
            // SAFETY: `Tier::Avx2` is only reported after runtime detection
            // confirmed avx2, the one feature the callee enables.
            return unsafe { unpack_span_avx2::<T, W>(words, base, start, out) };
        }
        crate::simd::Tier::Scalar => {}
    }
    unpack_span_body::<T, W>(words, base, start, out);
}

/// Width-dispatched unpack: monomorphizes [`unpack_span_body`] for every
/// width so each instantiation sees compile-time shifts.
fn unpack_span<T: PackedInt>(words: &[u64], base: T, width: usize, start: usize, out: &mut [T]) {
    macro_rules! w {
        ($($W:literal)*) => {
            match width {
                $($W => unpack_span_w::<T, $W>(words, base, start, out),)*
                _ => unreachable!("width {width} out of range"),
            }
        };
    }
    w!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
       17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
       33 34 35 36 37 38 39 40 41 42 43 44 45 46 47 48
       49 50 51 52 53 54 55 56 57 58 59 60 61 62 63)
}

/// Storage for `i64` column values.
pub type I64Storage = IntStorage<i64>;
/// Storage for `u32` dictionary codes.
pub type CodeStorage = IntStorage<u32>;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<i64>) {
        for s in [
            IntStorage::plain_of(values.clone()),
            IntStorage::encode(values.clone()),
        ]
        .into_iter()
        .chain(IntStorage::bit_packed_of(&values))
        .chain(IntStorage::run_length_of(&values))
        .chain(IntStorage::delta_of(&values))
        {
            assert_eq!(s.len(), values.len(), "{:?}", s.kind());
            assert_eq!(s.to_vec(), values, "{:?}", s.kind());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(s.get(i), v, "{:?} row {i}", s.kind());
            }
        }
    }

    #[test]
    fn all_encodings_round_trip() {
        roundtrip(vec![]);
        roundtrip(vec![42]);
        roundtrip(vec![7; 1000]);
        roundtrip((0..500).collect());
        roundtrip((0..500).map(|i| i / 37).collect());
        roundtrip((0..500).map(|i| (i * 7919) % 101 - 50).collect());
        roundtrip(vec![i64::MIN, 0, i64::MAX, -1, 1]);
    }

    #[test]
    fn extreme_range_cannot_bit_pack() {
        assert!(IntStorage::bit_packed_of(&[i64::MIN, i64::MAX]).is_none());
        // But encode falls back gracefully.
        let s = IntStorage::encode(vec![i64::MIN, i64::MAX, 0, 17]);
        assert_eq!(s.to_vec(), vec![i64::MIN, i64::MAX, 0, 17]);
    }

    #[test]
    fn selection_prefers_run_length_on_sorted_low_cardinality() {
        let values: Vec<i64> = (0..10_000).map(|i| i / 100).collect();
        let s = IntStorage::encode(values.clone());
        assert_eq!(s.kind(), EncodingKind::RunLength);
        assert!(s.heap_bytes() * 4 <= values.len() * 8);
    }

    #[test]
    fn selection_prefers_bit_packing_on_small_range() {
        let values: Vec<i64> = (0..10_000).map(|i| (i * 7919) % 4096).collect();
        let s = IntStorage::encode(values.clone());
        assert_eq!(s.kind(), EncodingKind::BitPacked);
        assert!(s.heap_bytes() * 4 <= values.len() * 8);
        assert_eq!(s.to_vec(), values);
    }

    #[test]
    fn selection_prefers_delta_on_sorted_unique() {
        // Sequential ids: runs don't help, the value range needs ~17 bits,
        // but adjacent deltas are all 1 — delta wins by a wide margin.
        let values: Vec<i64> = (0..100_000).collect();
        let s = IntStorage::encode(values.clone());
        assert_eq!(s.kind(), EncodingKind::Delta);
        assert!(
            s.heap_bytes() * 10 <= values.len() * 8,
            "{} bytes for {} sequential rows",
            s.heap_bytes(),
            values.len()
        );
        assert_eq!(s.to_vec(), values);
        // Timestamps with jitter still delta-code.
        let stamps: Vec<i64> = (0..50_000)
            .map(|i: i64| 1_700_000_000_000 + i * 250 + (i * 7919) % 137)
            .collect();
        let s = IntStorage::encode(stamps.clone());
        assert_eq!(s.kind(), EncodingKind::Delta);
        assert_eq!(s.to_vec(), stamps);
    }

    #[test]
    fn selection_keeps_high_entropy_plain() {
        // Values span nearly the full 64-bit range with no run structure.
        let values: Vec<i64> = (0..1000)
            .map(|i: i64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
            .collect();
        let s = IntStorage::encode(values);
        assert_eq!(s.kind(), EncodingKind::Plain);
    }

    #[test]
    fn constant_column_packs_to_zero_width() {
        let s = IntStorage::encode(vec![99i64; 4096]);
        assert_eq!(s.get(4095), 99);
        assert!(s.heap_bytes() <= 64, "constant column stays tiny: {s:?}");
    }

    #[test]
    fn decode_into_arbitrary_offsets() {
        let values: Vec<i64> = (0..300).map(|i| (i % 23) * 3 - 11).collect();
        let sorted: Vec<i64> = (0..300).map(|i| i * 7 + (i % 7)).collect();
        for s in [
            IntStorage::bit_packed_of(&values).unwrap(),
            IntStorage::run_length_of(&values).unwrap(),
            IntStorage::delta_of(&sorted).unwrap(),
        ] {
            let reference = s.to_vec();
            let mut buf = [0i64; 64];
            for start in [0usize, 1, 63, 64, 65, 170, 236] {
                let n = 64.min(300 - start);
                s.decode_into(start, &mut buf[..n]);
                assert_eq!(&buf[..n], &reference[start..start + n], "start {start}");
            }
        }
    }

    #[test]
    fn per_width_fast_paths_match_generic_decode() {
        // Exercise a spread of widths (dividing 64, straddling, prime) at
        // many offsets and lengths; the unpackers must be bit-identical to
        // the per-value shift/mask reference.
        for width in [1usize, 2, 4, 5, 8, 12, 13, 16, 21, 31, 33, 47, 63] {
            let top = if width >= 63 {
                i64::MAX
            } else {
                (1i64 << width) - 1
            };
            let values: Vec<i64> = (0..700)
                .map(|i: i64| ((i.wrapping_mul(0x9E37_79B9) as u64) % (top as u64 + 1)) as i64)
                .collect();
            let s = IntStorage::bit_packed_of(&values).unwrap();
            if let IntStorage::BitPacked { width: w, .. } = &s {
                assert!(
                    (*w as usize) <= width,
                    "width {w} exceeds requested {width}"
                );
            }
            let mut buf = vec![0i64; 700];
            for start in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 321, 699] {
                for len in [0usize, 1, 2, 15, 16, 17, 63, 64, 128, 130] {
                    let len = len.min(700 - start);
                    s.decode_into(start, &mut buf[..len]);
                    assert_eq!(
                        &buf[..len],
                        &values[start..start + len],
                        "width {width} start {start} len {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_width_fast_paths_cover_all_specializations() {
        // bit_packed_of derives width from the value range; pin exact widths
        // by constructing ranges that need them.
        for width in [1u32, 2, 4, 8, 12, 16, 24, 33, 48] {
            let top = (1i64 << width) - 1;
            let values: Vec<i64> = (0..300).map(|i| [0, top, 1, top - 1][i % 4]).collect();
            let s = IntStorage::bit_packed_of(&values).unwrap();
            match &s {
                IntStorage::BitPacked { width: w, .. } => assert_eq!(*w as u32, width),
                _ => panic!("expected bit-packed"),
            }
            assert_eq!(s.to_vec(), values, "width {width}");
        }
    }

    #[test]
    fn decode_frame_matches_decode_into() {
        let sorted: Vec<i64> = (0..515).map(|i| i * 11 + (i % 11)).collect();
        let mixed: Vec<i64> = (0..515).map(|i| (i * 7919) % 257 - 100).collect();
        let mut all = vec![IntStorage::plain_of(mixed.clone())];
        all.extend(IntStorage::bit_packed_of(&mixed));
        all.extend(IntStorage::run_length_of(&mixed));
        all.extend(IntStorage::delta_of(&sorted));
        for s in all {
            let reference = s.to_vec();
            let n = s.len();
            let mut buf = [0i64; 64];
            let mut cursor = 0usize;
            let mut base = 0usize;
            while base < n {
                let len = 64.min(n - base);
                let lanes = s.decode_frame(&mut cursor, base, len, &mut buf);
                assert_eq!(lanes, &reference[base..base + len], "{:?} {base}", s.kind());
                base += 64;
            }
        }
    }

    #[test]
    fn run_length_frame_decode_serves_whole_runs() {
        // One run covering many whole frames: the cursor must not re-seek.
        let values: Vec<i64> = std::iter::repeat_n(7i64, 1000)
            .chain(std::iter::repeat_n(9i64, 1000))
            .collect();
        let s = IntStorage::run_length_of(&values).unwrap();
        let mut buf = [0i64; 64];
        let mut cursor = 0usize;
        for base in (0..2000).step_by(64) {
            let len = 64.min(2000 - base);
            let lanes = s.decode_frame(&mut cursor, base, len, &mut buf);
            let expect: Vec<i64> = (base..base + len)
                .map(|i| if i < 1000 { 7 } else { 9 })
                .collect();
            assert_eq!(lanes, &expect[..], "frame at {base}");
        }
        // After a full pass the cursor sits on the final run.
        assert_eq!(cursor, 1);
    }

    #[test]
    fn ascending_cursor_matches_get() {
        let values: Vec<i64> = (0..500).map(|i| i / 37).collect();
        let rl = IntStorage::run_length_of(&values).unwrap();
        // Ascending walk with gaps.
        let mut cur = 0usize;
        for i in (0..500).step_by(13) {
            assert_eq!(rl.get_ascending(&mut cur, i), rl.get(i), "row {i}");
        }
        // Backward jump re-seeks correctly.
        assert_eq!(rl.get_ascending(&mut cur, 3), values[3]);
        assert_eq!(rl.get_ascending(&mut cur, 499), values[499]);
        // Non-RL storages ignore the cursor.
        let bp = IntStorage::bit_packed_of(&values).unwrap();
        let mut cur = 0usize;
        for i in [0usize, 400, 12, 499] {
            assert_eq!(bp.get_ascending(&mut cur, i), values[i]);
        }
    }

    #[test]
    fn run_at_reports_run_extents() {
        let values: Vec<i64> = (0..300).map(|i| i / 100).collect();
        let rl = IntStorage::run_length_of(&values).unwrap();
        let mut cur = 0usize;
        assert_eq!(rl.run_at(&mut cur, 0), (0, 100));
        assert_eq!(rl.run_at(&mut cur, 99), (0, 100));
        assert_eq!(rl.run_at(&mut cur, 100), (1, 200));
        assert_eq!(rl.run_at(&mut cur, 250), (2, 300));
        // Other encodings report single-row runs.
        let bp = IntStorage::bit_packed_of(&values).unwrap();
        let mut cur = 0usize;
        assert_eq!(bp.run_at(&mut cur, 5), (0, 6));
    }

    #[test]
    fn code_storage_round_trips() {
        let codes: Vec<u32> = (0..5000).map(|i| (i % 7) as u32).collect();
        let s = CodeStorage::encode(codes.clone());
        assert_eq!(s.kind(), EncodingKind::BitPacked);
        assert_eq!(s.to_vec(), codes);
    }

    #[test]
    fn from_parts_validates() {
        assert!(I64Storage::from_bit_packed(0, 64, 10, vec![]).is_none());
        assert!(I64Storage::from_bit_packed(0, 3, 10, vec![0]).is_some());
        assert!(I64Storage::from_bit_packed(0, 3, 100, vec![0]).is_none());
        assert!(I64Storage::from_run_length(vec![1, 2], vec![5, 3]).is_none());
        assert!(I64Storage::from_run_length(vec![1], vec![5, 9]).is_none());
        let s = I64Storage::from_run_length(vec![1, 2], vec![3, 5]).unwrap();
        assert_eq!(s.to_vec(), vec![1, 1, 1, 2, 2]);
        // Delta parts: anchor count and word count must match len/width.
        assert!(I64Storage::from_delta(vec![0], 64, 10, vec![]).is_none());
        assert!(I64Storage::from_delta(vec![0], 1, 10, vec![0]).is_some());
        assert!(I64Storage::from_delta(vec![0, 0], 1, 10, vec![0]).is_none());
        assert!(I64Storage::from_delta(vec![0], 1, 100, vec![0]).is_none());
        let s = I64Storage::from_delta(vec![5], 0, 3, vec![]).unwrap();
        assert_eq!(s.to_vec(), vec![5, 5, 5]);
    }

    #[test]
    fn zone_maps_record_block_extremes() {
        let mixed: Vec<i64> = (0..515).map(|i| (i * 7919) % 257 - 100).collect();
        let sorted: Vec<i64> = (0..515).map(|i| i * 11 + (i % 11)).collect();
        let mut all = vec![
            IntStorage::plain_of(mixed.clone()),
            IntStorage::encode(mixed.clone()),
        ];
        all.extend(IntStorage::bit_packed_of(&mixed));
        all.extend(IntStorage::run_length_of(&mixed));
        all.extend(IntStorage::delta_of(&sorted));
        for s in all {
            let values = s.to_vec();
            let z = ZoneMap::build(&s);
            assert_eq!(z.len(), values.len().div_ceil(BLOCK_ROWS), "{:?}", s.kind());
            for (b, chunk) in values.chunks(BLOCK_ROWS).enumerate() {
                let mn = *chunk.iter().min().unwrap();
                let mx = *chunk.iter().max().unwrap();
                assert_eq!(z.block(b), (mn, mx), "{:?} block {b}", s.kind());
            }
        }
        assert!(ZoneMap::build(&I64Storage::plain_of(vec![])).is_empty());
    }

    #[test]
    fn f64_zone_maps_ignore_nan() {
        let mut vals: Vec<f64> = (0..130).map(|i| i as f64 * 0.5 - 10.0).collect();
        vals[3] = f64::NAN;
        vals[70] = f64::NAN;
        let z = ZoneMap::from_f64(&vals);
        assert_eq!(z.len(), 3);
        assert_eq!(z.block(0), (-10.0, 21.5));
        assert_eq!(z.block(1), (22.0, 53.5)); // NaN at 70 dropped
        let all_nan = ZoneMap::from_f64(&[f64::NAN; 64]);
        assert_eq!(all_nan.block(0), (f64::INFINITY, f64::NEG_INFINITY));
    }

    #[test]
    fn range_frame_word_matches_per_row() {
        let mixed: Vec<i64> = (0..515).map(|i| (i * 7919) % 257 - 100).collect();
        let sorted: Vec<i64> = (0..515).map(|i| i * 3 + (i % 5)).collect();
        for (values, storages) in [
            (mixed.clone(), {
                let mut v = vec![IntStorage::plain_of(mixed.clone())];
                v.extend(IntStorage::bit_packed_of(&mixed));
                v.extend(IntStorage::run_length_of(&mixed));
                v
            }),
            (sorted.clone(), {
                let mut v = vec![IntStorage::encode(sorted.clone())];
                v.extend(IntStorage::delta_of(&sorted));
                v
            }),
        ] {
            let n = values.len();
            for s in storages {
                for (lo, hi) in [
                    (-50i64, 50i64),
                    (0, 0),
                    (10, 5),
                    (i64::MIN, i64::MAX),
                    (-1000, -200),
                    (1000, 5000),
                    (-100, 156),
                ] {
                    let mut cursor = 0usize;
                    let mut buf = [0i64; BLOCK_ROWS];
                    let mut base = 0usize;
                    while base < n {
                        let len = BLOCK_ROWS.min(n - base);
                        let w = s.range_frame_word(&mut cursor, base, len, lo, hi, &mut buf);
                        for k in 0..len {
                            let expect = values[base + k] >= lo && values[base + k] <= hi;
                            assert_eq!(
                                w >> k & 1 == 1,
                                expect,
                                "{:?} [{lo},{hi}] row {}",
                                s.kind(),
                                base + k
                            );
                        }
                        assert!(len == 64 || w >> len == 0, "{:?} stray bits", s.kind());
                        base += BLOCK_ROWS;
                    }
                }
            }
        }
        // Width-0 bit-packing (constant column).
        let s = IntStorage::bit_packed_of(&[7i64; 100]).unwrap();
        let mut cursor = 0usize;
        let mut buf = [0i64; BLOCK_ROWS];
        assert_eq!(
            s.range_frame_word(&mut cursor, 0, 64, 0, 10, &mut buf),
            u64::MAX
        );
        assert_eq!(s.range_frame_word(&mut cursor, 0, 64, 8, 10, &mut buf), 0);
    }

    #[test]
    fn delta_prefix_sum_simd_matches_scalar() {
        // The vectorized prefix-sum must reproduce the scalar fold bit for
        // bit, across frame lengths (full 64-row frames and ragged tails)
        // and extreme step values.
        let mut vals: Vec<i64> = Vec::new();
        let mut v: i64 = -1_000_000;
        for i in 0..517 {
            v += (i % 13) * 7 + 1;
            vals.push(v);
        }
        let s = IntStorage::delta_of(&vals).expect("ascending: delta encodes");
        let fast = s.to_vec();
        crate::simd::set_force_scalar(true);
        let slow = s.to_vec();
        crate::simd::set_force_scalar(false);
        assert_eq!(fast, slow);
        assert_eq!(fast, vals);
    }

    #[test]
    fn delta_of_rejects_descending_i64() {
        assert!(I64Storage::delta_of(&(0..200).rev().collect::<Vec<_>>()).is_none());
        // Descent within the first row of a block is fine (anchored).
        let mut v: Vec<i64> = (0..128).collect();
        v[64] = -1_000_000; // block anchor, no packed delta
        for (i, slot) in v.iter_mut().enumerate().skip(65) {
            *slot = -1_000_000 + i as i64;
        }
        let s = I64Storage::delta_of(&v).unwrap();
        assert_eq!(s.to_vec(), v);
    }
}
