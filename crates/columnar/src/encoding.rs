//! Compressed integer column storage: the encoding layer under the chunked
//! scan drivers.
//!
//! The paper's "trillion-cell" claim rests on workers holding far more cells
//! than naive 8-bytes-per-value storage allows (§5: columnar in-memory
//! storage sized to the cluster). This module provides the in-memory
//! counterpart of `hvc`'s on-disk delta coding: an [`IntStorage`] enum that
//! backs [`I64Column`](crate::column::I64Column) values and
//! [`DictColumn`](crate::column::DictColumn) dictionary codes with one of
//! three physical encodings:
//!
//! * [`IntStorage::Plain`] — the raw `Vec<T>`, for high-entropy data.
//! * [`IntStorage::BitPacked`] — frame-of-reference + bit-packing: values
//!   are stored as `value - base` deltas in `width` bits each, packed
//!   little-endian into `u64` words. A column of small-range integers
//!   (ports, bucket ids, year/month fields, dictionary codes) shrinks to
//!   `width/64` of its plain size.
//! * [`IntStorage::RunLength`] — run-length encoding for sorted or
//!   low-cardinality data: `(value, end)` pairs where `ends` is the
//!   cumulative (exclusive) end row of each run.
//!
//! ## Chunk-decoder contract
//!
//! Encodings stay opaque to kernels. The scan drivers in [`crate::scan`]
//! consume any [`scan::ScanSource`](crate::scan::ScanSource): when the
//! source is plain they run directly over the backing slice (the dense fast
//! path is unchanged), otherwise they call [`IntStorage::decode_into`] to
//! materialize at most 64 rows at a time into a stack scratch buffer and
//! run the identical word-granular null logic over that buffer. Decoding is
//! strictly in ascending row order, so chunked kernels observe exactly the
//! same value sequence across every encoding — the scan-equivalence and
//! encoding property tests pin this down bit-for-bit.
//!
//! ## Encoding selection
//!
//! [`IntStorage::encode`] analyzes min/max and the run count in one pass
//! and picks the cheapest encoding, but only if it saves at least 25% over
//! plain — marginal wins are not worth the decode work. Selection happens
//! at ingest wherever columns are built (`I64Column::new`,
//! `DictColumn::new`, and therefore CSV/JSONL/HVC readers and
//! `partition_table` slices, which re-analyze each micropartition).

/// The physical encoding of an [`IntStorage`], for tests, stats, and the
/// `hvc` file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingKind {
    /// Raw values.
    Plain,
    /// Frame-of-reference bit-packing.
    BitPacked,
    /// Run-length encoding.
    RunLength,
}

impl std::fmt::Display for EncodingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EncodingKind::Plain => "plain",
            EncodingKind::BitPacked => "bit-packed",
            EncodingKind::RunLength => "run-length",
        })
    }
}

/// Integer types that can live in an [`IntStorage`]: they convert to and
/// from unsigned deltas relative to a base value. Implemented for `i64`
/// (column values) and `u32` (dictionary codes).
pub trait PackedInt: Copy + Default + Ord + std::fmt::Debug + 'static {
    /// Bytes one plain value occupies.
    const BYTES: usize;
    /// `self - base` as an unsigned delta (two's-complement exact).
    fn offset_from(self, base: Self) -> u64;
    /// `base + delta`, inverse of [`PackedInt::offset_from`].
    fn add_offset(base: Self, delta: u64) -> Self;
}

impl PackedInt for i64 {
    const BYTES: usize = 8;
    #[inline]
    fn offset_from(self, base: Self) -> u64 {
        self.wrapping_sub(base) as u64
    }
    #[inline]
    fn add_offset(base: Self, delta: u64) -> Self {
        base.wrapping_add(delta as i64)
    }
}

impl PackedInt for u32 {
    const BYTES: usize = 4;
    #[inline]
    fn offset_from(self, base: Self) -> u64 {
        self.wrapping_sub(base) as u64
    }
    #[inline]
    fn add_offset(base: Self, delta: u64) -> Self {
        base.wrapping_add(delta as u32)
    }
}

/// Compressed (or plain) storage for a column of integers.
///
/// Immutable once built, like everything else in a [`Table`](crate::Table)
/// snapshot. See the [module docs](self) for the encoding inventory and the
/// chunk-decoder contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntStorage<T> {
    /// Raw values.
    Plain(Vec<T>),
    /// Frame-of-reference bit-packing: value `i` is
    /// `base + bits[i*width .. (i+1)*width]`, packed little-endian across
    /// `words`. `width` is at most 63 (a 64-bit range stays plain); width 0
    /// means every row equals `base`.
    BitPacked {
        /// The minimum value (frame of reference).
        base: T,
        /// Bits per packed delta (0..=63).
        width: u8,
        /// Number of rows.
        len: usize,
        /// `ceil(len * width / 64)` packed words.
        words: Vec<u64>,
    },
    /// Run-length encoding: row `i` holds `values[k]` for the unique `k`
    /// with `ends[k-1] <= i < ends[k]` (`ends` is strictly increasing and
    /// `ends[last] == len`). Rows must fit in `u32` (micropartitions do).
    RunLength {
        /// One value per run.
        values: Vec<T>,
        /// Exclusive cumulative end row of each run.
        ends: Vec<u32>,
    },
}

impl<T> Default for IntStorage<T> {
    fn default() -> Self {
        IntStorage::Plain(Vec::new())
    }
}

/// Bits needed to represent `delta` (0 for 0).
#[inline]
fn bits_needed(delta: u64) -> usize {
    (64 - delta.leading_zeros()) as usize
}

/// The low `width` bits set (`width` <= 63).
#[inline]
fn low_mask(width: usize) -> u64 {
    debug_assert!(width < 64);
    (1u64 << width) - 1
}

impl<T: PackedInt> IntStorage<T> {
    /// Analyze `values` (min/max range, run structure) and store them under
    /// the cheapest encoding, keeping them plain unless a packed form saves
    /// at least 25% of the bytes.
    pub fn encode(values: Vec<T>) -> Self {
        let n = values.len();
        if n == 0 {
            return IntStorage::Plain(values);
        }
        let mut min = values[0];
        let mut max = values[0];
        let mut runs = 1usize;
        for i in 1..n {
            let v = values[i];
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
            if v != values[i - 1] {
                runs += 1;
            }
        }
        let plain_cost = n * T::BYTES;
        let width = bits_needed(max.offset_from(min));
        let packed_cost = if width >= 64 {
            usize::MAX
        } else {
            (n * width).div_ceil(64) * 8
        };
        let rl_cost = if n > u32::MAX as usize {
            usize::MAX
        } else {
            runs * (T::BYTES + 4)
        };
        // Only leave plain when the saving is real (>= 25%).
        let budget = plain_cost - plain_cost / 4;
        if rl_cost <= packed_cost && rl_cost <= budget {
            Self::run_length_from(&values)
        } else if packed_cost <= budget {
            Self::bit_packed_from(&values, min, width)
        } else {
            IntStorage::Plain(values)
        }
    }

    /// Store `values` uncompressed regardless of their shape (benchmarks
    /// and encoding-equivalence tests force specific variants).
    pub fn plain_of(values: Vec<T>) -> Self {
        IntStorage::Plain(values)
    }

    /// Force frame-of-reference bit-packing. `None` when the value range
    /// needs all 64 bits (only possible for `i64` extremes).
    pub fn bit_packed_of(values: &[T]) -> Option<Self> {
        let Some(&first) = values.first() else {
            return Some(IntStorage::BitPacked {
                base: T::default(),
                width: 0,
                len: 0,
                words: Vec::new(),
            });
        };
        let min = values.iter().copied().fold(first, T::min);
        let max = values.iter().copied().fold(first, T::max);
        let width = bits_needed(max.offset_from(min));
        (width < 64).then(|| Self::bit_packed_from(values, min, width))
    }

    /// Force run-length encoding. `None` when there are more rows than
    /// `u32` can index.
    pub fn run_length_of(values: &[T]) -> Option<Self> {
        (values.len() <= u32::MAX as usize).then(|| Self::run_length_from(values))
    }

    fn bit_packed_from(values: &[T], base: T, width: usize) -> Self {
        debug_assert!(width < 64);
        let n = values.len();
        let mut words = vec![0u64; (n * width).div_ceil(64)];
        if width > 0 {
            let mut bit = 0usize;
            for &v in values {
                let d = v.offset_from(base);
                let w = bit >> 6;
                let off = bit & 63;
                words[w] |= d << off;
                if off + width > 64 {
                    words[w + 1] |= d >> (64 - off);
                }
                bit += width;
            }
        }
        IntStorage::BitPacked {
            base,
            width: width as u8,
            len: n,
            words,
        }
    }

    fn run_length_from(values: &[T]) -> Self {
        let mut rvalues = Vec::new();
        let mut ends = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if rvalues.last() != Some(&v) || ends.is_empty() {
                rvalues.push(v);
                ends.push(i as u32 + 1);
            } else {
                *ends.last_mut().expect("non-empty") = i as u32 + 1;
            }
        }
        IntStorage::RunLength {
            values: rvalues,
            ends,
        }
    }

    /// Rebuild a storage from its parts (used by `hvc` decode, which
    /// preserves the encoded representation instead of re-analyzing).
    /// Returns `None` if the parts are structurally inconsistent.
    pub fn from_bit_packed(base: T, width: u8, len: usize, words: Vec<u64>) -> Option<Self> {
        if width >= 64 || words.len() != (len * width as usize).div_ceil(64) {
            return None;
        }
        Some(IntStorage::BitPacked {
            base,
            width,
            len,
            words,
        })
    }

    /// Rebuild a run-length storage from its parts; `None` unless `ends`
    /// is strictly increasing, matches `values` in length, and is non-empty
    /// exactly when `values` is.
    pub fn from_run_length(values: Vec<T>, ends: Vec<u32>) -> Option<Self> {
        if values.len() != ends.len() || ends.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        Some(IntStorage::RunLength { values, ends })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            IntStorage::Plain(v) => v.len(),
            IntStorage::BitPacked { len, .. } => *len,
            IntStorage::RunLength { ends, .. } => ends.last().map_or(0, |&e| e as usize),
        }
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which encoding this storage uses.
    pub fn kind(&self) -> EncodingKind {
        match self {
            IntStorage::Plain(_) => EncodingKind::Plain,
            IntStorage::BitPacked { .. } => EncodingKind::BitPacked,
            IntStorage::RunLength { .. } => EncodingKind::RunLength,
        }
    }

    /// The backing slice when the storage is plain (the scan drivers' fast
    /// path).
    #[inline]
    pub fn as_plain(&self) -> Option<&[T]> {
        match self {
            IntStorage::Plain(v) => Some(v),
            _ => None,
        }
    }

    /// Value at row `i`. O(1) for plain and bit-packed storage,
    /// O(log runs) for run-length.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        match self {
            IntStorage::Plain(v) => v[i],
            IntStorage::BitPacked {
                base,
                width,
                len,
                words,
            } => {
                assert!(i < *len, "row {i} out of range {len}");
                let width = *width as usize;
                if width == 0 {
                    return *base;
                }
                let bit = i * width;
                let w = bit >> 6;
                let off = bit & 63;
                let mut d = words[w] >> off;
                if off + width > 64 {
                    d |= words[w + 1] << (64 - off);
                }
                T::add_offset(*base, d & low_mask(width))
            }
            IntStorage::RunLength { values, ends } => {
                values[ends.partition_point(|&e| e as usize <= i)]
            }
        }
    }

    /// Like [`IntStorage::get`], but tuned for *ascending* row sequences.
    /// `cursor` is opaque state (start at 0, reuse across the calls of one
    /// scan): run-length storage keeps the current run index there, so an
    /// ascending walk advances it O(1) amortized instead of binary-searching
    /// per row. Backward jumps fall back to a binary re-seek, so the method
    /// is correct for any access order.
    #[inline]
    pub fn get_ascending(&self, cursor: &mut usize, i: usize) -> T {
        match self {
            IntStorage::RunLength { values, ends } => {
                let mut run = *cursor;
                if run >= ends.len() || (run > 0 && ends[run - 1] as usize > i) {
                    run = ends.partition_point(|&e| e as usize <= i);
                } else {
                    while ends[run] as usize <= i {
                        run += 1;
                    }
                }
                *cursor = run;
                values[run]
            }
            _ => self.get(i),
        }
    }

    /// Decode rows `start .. start + out.len()` into `out`, in row order.
    /// This is the chunk-decoder entry point: the scan drivers call it with
    /// a stack scratch buffer of at most 64 rows per 64-row block.
    ///
    /// Common packed widths (1/2/4/8/16, and the 12-bit straddling layout)
    /// take unrolled per-width fast paths that extract whole words at a
    /// time; every path produces bit-identical values to the generic
    /// shift/mask decode.
    pub fn decode_into(&self, start: usize, out: &mut [T]) {
        match self {
            IntStorage::Plain(v) => out.copy_from_slice(&v[start..start + out.len()]),
            IntStorage::BitPacked {
                base, width, words, ..
            } => {
                let width = *width as usize;
                match width {
                    0 => out.fill(*base),
                    1 => unpack_div64::<T, 1>(words, *base, start, out),
                    2 => unpack_div64::<T, 2>(words, *base, start, out),
                    4 => unpack_div64::<T, 4>(words, *base, start, out),
                    8 => unpack_div64::<T, 8>(words, *base, start, out),
                    12 => unpack12(words, *base, start, out),
                    16 => unpack_div64::<T, 16>(words, *base, start, out),
                    _ => unpack_generic(words, *base, width, start, out),
                }
            }
            IntStorage::RunLength { values, ends } => {
                if out.is_empty() {
                    return;
                }
                let mut run = ends.partition_point(|&e| e as usize <= start);
                let mut i = start;
                let end = start + out.len();
                let mut o = 0usize;
                while i < end {
                    let run_end = (ends[run] as usize).min(end);
                    let v = values[run];
                    while i < run_end {
                        out[o] = v;
                        o += 1;
                        i += 1;
                    }
                    run += 1;
                }
            }
        }
    }

    /// Decode rows `start..end` into a fresh vector (partition slicing).
    pub fn decode_range(&self, start: usize, end: usize) -> Vec<T> {
        let mut out = vec![T::default(); end - start];
        self.decode_into(start, &mut out);
        out
    }

    /// Decode every row (tests, format conversions).
    pub fn to_vec(&self) -> Vec<T> {
        self.decode_range(0, self.len())
    }

    /// Approximate heap footprint in bytes of the encoded payload.
    pub fn heap_bytes(&self) -> usize {
        match self {
            IntStorage::Plain(v) => v.len() * T::BYTES,
            IntStorage::BitPacked { words, .. } => words.len() * 8,
            IntStorage::RunLength { values, ends } => values.len() * T::BYTES + ends.len() * 4,
        }
    }
}

/// Generic bit-unpack: per-value shift/mask with a word-straddle branch.
/// The reference all fast paths must match bit-for-bit.
fn unpack_generic<T: PackedInt>(words: &[u64], base: T, width: usize, start: usize, out: &mut [T]) {
    debug_assert!((1..64).contains(&width));
    let mask = low_mask(width);
    let mut bit = start * width;
    for o in out.iter_mut() {
        let w = bit >> 6;
        let off = bit & 63;
        let mut d = words[w] >> off;
        if off + width > 64 {
            d |= words[w + 1] << (64 - off);
        }
        *o = T::add_offset(base, d & mask);
        bit += width;
    }
}

/// Unrolled unpack for widths dividing 64 (1/2/4/8/16): values never
/// straddle words, so aligned groups of `64 / W` values decode from a
/// single word load with a compile-time-unrolled inner loop.
fn unpack_div64<T: PackedInt, const W: usize>(words: &[u64], base: T, start: usize, out: &mut [T]) {
    debug_assert_eq!(64 % W, 0);
    let per = 64 / W;
    let mask = low_mask(W);
    let mut i = start;
    let mut o = 0usize;
    // Head: finish a partially consumed word.
    while o < out.len() && !i.is_multiple_of(per) {
        out[o] = T::add_offset(base, (words[i / per] >> ((i % per) * W)) & mask);
        i += 1;
        o += 1;
    }
    // Body: whole words, `per` values each.
    while o + per <= out.len() {
        let w = words[i / per];
        for k in 0..per {
            out[o + k] = T::add_offset(base, (w >> (k * W)) & mask);
        }
        i += per;
        o += per;
    }
    // Tail.
    while o < out.len() {
        out[o] = T::add_offset(base, (words[i / per] >> ((i % per) * W)) & mask);
        i += 1;
        o += 1;
    }
}

/// Unrolled unpack for width 12: 16 values occupy exactly three words
/// (192 bits), with values 5 and 10 straddling word boundaries. Aligned
/// groups decode with three word loads and sixteen fixed shifts.
fn unpack12<T: PackedInt>(words: &[u64], base: T, start: usize, out: &mut [T]) {
    const W: usize = 12;
    let mask = low_mask(W);
    let mut i = start;
    let mut o = 0usize;
    let scalar = |i: usize| {
        let bit = i * W;
        let w = bit >> 6;
        let off = bit & 63;
        let mut d = words[w] >> off;
        if off + W > 64 {
            d |= words[w + 1] << (64 - off);
        }
        T::add_offset(base, d & mask)
    };
    // Head: reach a 16-value (3-word) alignment.
    while o < out.len() && !i.is_multiple_of(16) {
        out[o] = scalar(i);
        i += 1;
        o += 1;
    }
    // Body: 16 values from three words.
    while o + 16 <= out.len() {
        let wi = i * W / 64;
        let (w0, w1, w2) = (words[wi], words[wi + 1], words[wi + 2]);
        out[o] = T::add_offset(base, w0 & mask);
        out[o + 1] = T::add_offset(base, (w0 >> 12) & mask);
        out[o + 2] = T::add_offset(base, (w0 >> 24) & mask);
        out[o + 3] = T::add_offset(base, (w0 >> 36) & mask);
        out[o + 4] = T::add_offset(base, (w0 >> 48) & mask);
        out[o + 5] = T::add_offset(base, ((w0 >> 60) | (w1 << 4)) & mask);
        out[o + 6] = T::add_offset(base, (w1 >> 8) & mask);
        out[o + 7] = T::add_offset(base, (w1 >> 20) & mask);
        out[o + 8] = T::add_offset(base, (w1 >> 32) & mask);
        out[o + 9] = T::add_offset(base, (w1 >> 44) & mask);
        out[o + 10] = T::add_offset(base, ((w1 >> 56) | (w2 << 8)) & mask);
        out[o + 11] = T::add_offset(base, (w2 >> 4) & mask);
        out[o + 12] = T::add_offset(base, (w2 >> 16) & mask);
        out[o + 13] = T::add_offset(base, (w2 >> 28) & mask);
        out[o + 14] = T::add_offset(base, (w2 >> 40) & mask);
        out[o + 15] = T::add_offset(base, (w2 >> 52) & mask);
        i += 16;
        o += 16;
    }
    // Tail.
    while o < out.len() {
        out[o] = scalar(i);
        i += 1;
        o += 1;
    }
}

/// Storage for `i64` column values.
pub type I64Storage = IntStorage<i64>;
/// Storage for `u32` dictionary codes.
pub type CodeStorage = IntStorage<u32>;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<i64>) {
        for s in [
            IntStorage::plain_of(values.clone()),
            IntStorage::encode(values.clone()),
        ]
        .into_iter()
        .chain(IntStorage::bit_packed_of(&values))
        .chain(IntStorage::run_length_of(&values))
        {
            assert_eq!(s.len(), values.len(), "{:?}", s.kind());
            assert_eq!(s.to_vec(), values, "{:?}", s.kind());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(s.get(i), v, "{:?} row {i}", s.kind());
            }
        }
    }

    #[test]
    fn all_encodings_round_trip() {
        roundtrip(vec![]);
        roundtrip(vec![42]);
        roundtrip(vec![7; 1000]);
        roundtrip((0..500).collect());
        roundtrip((0..500).map(|i| i / 37).collect());
        roundtrip((0..500).map(|i| (i * 7919) % 101 - 50).collect());
        roundtrip(vec![i64::MIN, 0, i64::MAX, -1, 1]);
    }

    #[test]
    fn extreme_range_cannot_bit_pack() {
        assert!(IntStorage::bit_packed_of(&[i64::MIN, i64::MAX]).is_none());
        // But encode falls back gracefully.
        let s = IntStorage::encode(vec![i64::MIN, i64::MAX, 0, 17]);
        assert_eq!(s.to_vec(), vec![i64::MIN, i64::MAX, 0, 17]);
    }

    #[test]
    fn selection_prefers_run_length_on_sorted_low_cardinality() {
        let values: Vec<i64> = (0..10_000).map(|i| i / 100).collect();
        let s = IntStorage::encode(values.clone());
        assert_eq!(s.kind(), EncodingKind::RunLength);
        assert!(s.heap_bytes() * 4 <= values.len() * 8);
    }

    #[test]
    fn selection_prefers_bit_packing_on_small_range() {
        let values: Vec<i64> = (0..10_000).map(|i| (i * 7919) % 4096).collect();
        let s = IntStorage::encode(values.clone());
        assert_eq!(s.kind(), EncodingKind::BitPacked);
        assert!(s.heap_bytes() * 4 <= values.len() * 8);
        assert_eq!(s.to_vec(), values);
    }

    #[test]
    fn selection_keeps_high_entropy_plain() {
        // Values span nearly the full 64-bit range with no run structure.
        let values: Vec<i64> = (0..1000)
            .map(|i: i64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
            .collect();
        let s = IntStorage::encode(values);
        assert_eq!(s.kind(), EncodingKind::Plain);
    }

    #[test]
    fn constant_column_packs_to_zero_width() {
        let s = IntStorage::encode(vec![99i64; 4096]);
        assert_eq!(s.heap_bytes(), 0, "width-0 packing stores no words");
        assert_eq!(s.get(4095), 99);
    }

    #[test]
    fn decode_into_arbitrary_offsets() {
        let values: Vec<i64> = (0..300).map(|i| (i % 23) * 3 - 11).collect();
        for s in [
            IntStorage::bit_packed_of(&values).unwrap(),
            IntStorage::run_length_of(&values).unwrap(),
        ] {
            let mut buf = [0i64; 64];
            for start in [0usize, 1, 63, 64, 65, 170, 236] {
                let n = 64.min(300 - start);
                s.decode_into(start, &mut buf[..n]);
                assert_eq!(&buf[..n], &values[start..start + n], "start {start}");
            }
        }
    }

    #[test]
    fn per_width_fast_paths_match_generic_decode() {
        // Exercise every specialized width (plus a straddling generic one)
        // at many offsets and lengths; the fast paths must be bit-identical
        // to the generic shift/mask reference.
        for width in [1usize, 2, 4, 8, 12, 16, 13] {
            let top = if width >= 63 {
                i64::MAX
            } else {
                (1i64 << width) - 1
            };
            let values: Vec<i64> = (0..700)
                .map(|i: i64| (i.wrapping_mul(0x9E37_79B9) % (top + 1)).abs().min(top))
                .collect();
            let s = IntStorage::bit_packed_of(&values).unwrap();
            if let IntStorage::BitPacked { width: w, .. } = &s {
                assert!(
                    (*w as usize) <= width,
                    "width {w} exceeds requested {width}"
                );
            }
            let mut buf = vec![0i64; 700];
            for start in [0usize, 1, 15, 16, 17, 63, 64, 65, 100, 321, 699] {
                for len in [0usize, 1, 2, 15, 16, 17, 63, 64] {
                    let len = len.min(700 - start);
                    s.decode_into(start, &mut buf[..len]);
                    assert_eq!(
                        &buf[..len],
                        &values[start..start + len],
                        "width {width} start {start} len {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn forced_width_fast_paths_cover_all_specializations() {
        // bit_packed_of derives width from the value range; pin the exact
        // widths 1/2/4/8/12/16 by constructing ranges that need them.
        for width in [1u32, 2, 4, 8, 12, 16] {
            let top = (1i64 << width) - 1;
            let values: Vec<i64> = (0..300).map(|i| [0, top, 1, top - 1][i % 4]).collect();
            let s = IntStorage::bit_packed_of(&values).unwrap();
            match &s {
                IntStorage::BitPacked { width: w, .. } => assert_eq!(*w as u32, width),
                _ => panic!("expected bit-packed"),
            }
            assert_eq!(s.to_vec(), values, "width {width}");
        }
    }

    #[test]
    fn ascending_cursor_matches_get() {
        let values: Vec<i64> = (0..500).map(|i| i / 37).collect();
        let rl = IntStorage::run_length_of(&values).unwrap();
        // Ascending walk with gaps.
        let mut cur = 0usize;
        for i in (0..500).step_by(13) {
            assert_eq!(rl.get_ascending(&mut cur, i), rl.get(i), "row {i}");
        }
        // Backward jump re-seeks correctly.
        assert_eq!(rl.get_ascending(&mut cur, 3), values[3]);
        assert_eq!(rl.get_ascending(&mut cur, 499), values[499]);
        // Non-RL storages ignore the cursor.
        let bp = IntStorage::bit_packed_of(&values).unwrap();
        let mut cur = 0usize;
        for i in [0usize, 400, 12, 499] {
            assert_eq!(bp.get_ascending(&mut cur, i), values[i]);
        }
    }

    #[test]
    fn code_storage_round_trips() {
        let codes: Vec<u32> = (0..5000).map(|i| (i % 7) as u32).collect();
        let s = CodeStorage::encode(codes.clone());
        assert_eq!(s.kind(), EncodingKind::BitPacked);
        assert_eq!(s.to_vec(), codes);
    }

    #[test]
    fn from_parts_validates() {
        assert!(I64Storage::from_bit_packed(0, 64, 10, vec![]).is_none());
        assert!(I64Storage::from_bit_packed(0, 3, 10, vec![0]).is_some());
        assert!(I64Storage::from_bit_packed(0, 3, 100, vec![0]).is_none());
        assert!(I64Storage::from_run_length(vec![1, 2], vec![5, 3]).is_none());
        assert!(I64Storage::from_run_length(vec![1], vec![5, 9]).is_none());
        let s = I64Storage::from_run_length(vec![1, 2], vec![3, 5]).unwrap();
        assert_eq!(s.to_vec(), vec![1, 1, 1, 2, 2]);
    }
}
