//! Null (missing value) tracking for columns.
//!
//! Most real columns have no missing values, so the mask is lazily allocated:
//! a column with no nulls costs no extra memory and `is_null` is a single
//! branch on `None`.

use crate::bitmap::Bitmap;

/// Tracks which rows of a column are missing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullMask {
    /// Set bit == value is missing. `None` means "no nulls anywhere".
    mask: Option<Bitmap>,
}

impl NullMask {
    /// A mask with no missing values.
    pub fn none() -> Self {
        NullMask { mask: None }
    }

    /// Build from an iterator of "is null" flags of length `len`.
    pub fn from_flags(flags: impl IntoIterator<Item = bool>, len: usize) -> Self {
        let mut bm: Option<Bitmap> = None;
        for (i, f) in flags.into_iter().enumerate() {
            if f {
                bm.get_or_insert_with(|| Bitmap::new(len)).set(i);
            }
        }
        NullMask { mask: bm }
    }

    /// True if row `i` is missing.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match &self.mask {
            None => false,
            Some(b) => b.get(i),
        }
    }

    /// Mark row `i` (of a column with `len` rows) as missing.
    pub fn set_null(&mut self, i: usize, len: usize) {
        self.mask.get_or_insert_with(|| Bitmap::new(len)).set(i);
    }

    /// Number of missing rows.
    pub fn null_count(&self) -> usize {
        self.mask.as_ref().map_or(0, |b| b.count_ones())
    }

    /// True if the column has no missing values at all.
    pub fn is_empty(&self) -> bool {
        self.null_count() == 0
    }

    /// The underlying bitmap, if any nulls exist.
    pub fn bitmap(&self) -> Option<&Bitmap> {
        self.mask.as_ref()
    }

    /// Null bits of the 64-row block starting at row `64 * i` (bit `b` set
    /// means row `64 * i + b` is missing). Zero when the column has no nulls
    /// at all, so chunked kernels pay one branch-free word fetch per block
    /// instead of a per-row `is_null` probe.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        match &self.mask {
            None => 0,
            Some(b) => b.word(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_nulls() {
        let m = NullMask::none();
        assert!(!m.is_null(0));
        assert!(!m.is_null(1_000_000));
        assert_eq!(m.null_count(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn set_null_allocates_lazily() {
        let mut m = NullMask::none();
        assert!(m.bitmap().is_none());
        m.set_null(3, 10);
        assert!(m.bitmap().is_some());
        assert!(m.is_null(3));
        assert!(!m.is_null(2));
        assert_eq!(m.null_count(), 1);
    }

    #[test]
    fn from_flags_counts() {
        let m = NullMask::from_flags([false, true, false, true, true], 5);
        assert_eq!(m.null_count(), 3);
        assert!(m.is_null(1) && m.is_null(3) && m.is_null(4));
        assert!(!m.is_null(0) && !m.is_null(2));
    }

    #[test]
    fn from_flags_all_false_allocates_nothing() {
        let m = NullMask::from_flags([false; 64], 64);
        assert!(m.bitmap().is_none());
    }
}
