//! Row-selection predicates: the filter pipeline behind every derived
//! table.
//!
//! Hillview derives new tables by filtering (paper §5.6 "Selection") — e.g.
//! zooming into a chart region selects rows inside the zoom window, and the
//! find-text vizketch filters rows by a search criterion (§3.3). A
//! [`Predicate`] is the user-facing expression tree; it compiles into one
//! of **two forms** bound to a concrete [`Table`]:
//!
//! * [`CompiledPredicate`] — the per-row *reference* form:
//!   [`CompiledPredicate::eval`] answers "does row `r` match?" one row at a
//!   time. It resolves column names to indexes, pre-compiles regexes, and
//!   reuses a scratch buffer for display-text matching, but it still pays
//!   a dispatch per row. The block form below is pinned bit-identical to
//!   it by property tests.
//! * [`BlockPredicate`] — the *block-wise* form the filter pipeline runs:
//!   [`BlockPredicate::eval_frame`] turns the selection word of one
//!   64-row-aligned frame into the word of matching rows. Numeric
//!   `Range`/`Equals` leaves are lane comparisons over decoded frames
//!   (SIMD-dispatched under the `simd` feature, with the mandatory
//!   bit-identical scalar fallback), with range bounds pre-translated into
//!   the column's integer domain — and further into the packed-delta
//!   domain for bit-packed storage, so no frame-of-reference
//!   reconstruction happens at all
//!   ([`IntStorage::range_frame_word`](crate::encoding::IntStorage::range_frame_word)).
//!   Text and regex matches on dictionary columns are evaluated **once per
//!   dictionary entry** into a code-indexed match bitmap; the per-row test
//!   is then a bitmap probe on the code lane. `And`/`Or`/`Not` are bitwise
//!   word ops with short-circuiting.
//!
//! ## Zone-map skipping
//!
//! Numeric columns record per-64-row-block min/max zone maps at ingest
//! ([`ZoneMap`]). A range/equality leaf consults
//! the frame's zone entry before decoding: if the block's extremes sit
//! entirely inside the bounds every valid row passes (the leaf returns the
//! selection-and-validity word without touching the values), and if they
//! sit entirely outside it returns `0`. On sorted data a selective range
//! filter therefore decodes only the boundary blocks.
//!
//! ## Missing values and NaN
//!
//! The rules, which both compiled forms implement identically:
//!
//! * Missing rows never satisfy `Range`, a present-value `Equals`, or any
//!   text/regex match. `IsMissing` and `Equals(Value::Missing)` match
//!   exactly the missing rows.
//! * **`Not` is the exact complement** over the scanned rows:
//!   `Not(p)` matches every row `p` rejects — *including rows that are
//!   missing in the columns `p` references*. `Not(Range{..})` therefore
//!   selects rows outside the range *plus* the missing rows; conjoin
//!   `.and(Predicate::IsMissing{..}.not())` to exclude them. This is the
//!   spreadsheet complement rule, not SQL's three-valued logic.
//! * `Equals` compares numerically across the numeric kinds (`Int`,
//!   `Double`, `Date`): `Equals(Double(5.0))` matches an integer cell
//!   holding 5 and a date cell at epoch-milli 5. When both the constant
//!   and the column are integer-kinded the comparison is *exact* in the
//!   i64 domain (ids beyond 2^53 don't merge under f64 rounding); as soon
//!   as a `Double` is involved on either side, both sides normalize
//!   through `as_f64`. A string constant matches only string-like
//!   columns, and a numeric constant never matches a string column.
//! * `Equals(Double(NaN))` matches nothing (NaN is unequal to
//!   everything). Note that `Value::from(f64::NAN)` normalizes to
//!   `Value::Missing` — an `Equals` built through that conversion matches
//!   the missing rows instead. A `Range` with a NaN bound matches nothing.
//!
//! [`filter_members`] is the pipeline entry point: it streams a parent
//! [`MembershipSet`] through the block form frame by frame, intersecting
//! selection words in place (sparse parents are grouped into per-block
//! words; row ids are never materialized) and emits the narrowed
//! membership directly from the result bitmap words.

use crate::bitmap::Bitmap;
use crate::block::{scan_frames, FrameEvent, BLOCK_ROWS};
use crate::column::Column;
use crate::encoding::{CodeStorage, I64Storage, ZoneMap};
use crate::error::Result;
use crate::membership::MembershipSet;
use crate::regexlite::Regex;
use crate::scan::Selection;
use crate::simd;
use crate::table::Table;
use crate::value::Value;
use std::fmt::Write as _;
use std::sync::Arc;

/// How a text search matches a cell (paper §3.3: "exact match, substring,
/// regular expressions, case sensitivity").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrMatchKind {
    /// Whole-cell equality.
    Exact,
    /// Cell contains the query as a substring.
    Substring,
    /// Cell matches a lite-regex pattern.
    Regex,
}

/// A row predicate over named columns.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true.
    True,
    /// Numeric range test `lo <= x < hi` on a numeric column; missing rows
    /// fail. This is the predicate a chart zoom generates.
    Range {
        /// Column name.
        column: Arc<str>,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Equality with a constant value. Numeric constants compare
    /// numerically across `Int`/`Double`/`Date` cells; `Value::Missing`
    /// matches exactly the missing rows (see the module docs).
    Equals {
        /// Column name.
        column: Arc<str>,
        /// Value compared against.
        value: Value,
    },
    /// Text search on a string-like column (non-string columns are matched
    /// against their display text, like searching a spreadsheet).
    StrMatch {
        /// Column name.
        column: Arc<str>,
        /// The query text or pattern.
        query: Arc<str>,
        /// Match mode.
        kind: StrMatchKind,
        /// Fold ASCII case before comparing.
        case_insensitive: bool,
    },
    /// The row is missing in this column.
    IsMissing {
        /// Column name.
        column: Arc<str>,
    },
    /// Logical AND.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical OR.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical NOT: the exact complement, *including* rows missing in the
    /// referenced columns (module docs).
    Not(Box<Predicate>),
}

impl Predicate {
    /// Range predicate helper.
    pub fn range(column: &str, lo: f64, hi: f64) -> Self {
        Predicate::Range {
            column: Arc::from(column),
            lo,
            hi,
        }
    }

    /// Equality predicate helper.
    pub fn equals(column: &str, value: impl Into<Value>) -> Self {
        Predicate::Equals {
            column: Arc::from(column),
            value: value.into(),
        }
    }

    /// Text-search predicate helper.
    pub fn str_match(
        column: &str,
        query: &str,
        kind: StrMatchKind,
        case_insensitive: bool,
    ) -> Self {
        Predicate::StrMatch {
            column: Arc::from(column),
            query: Arc::from(query),
            kind,
            case_insensitive,
        }
    }

    /// AND combinator.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// OR combinator.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// NOT combinator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Compile to the per-row reference form: column names resolved to
    /// indexes, regexes pre-compiled, queries case-folded once, so per-row
    /// evaluation is cheap. The filter pipeline itself runs the block form
    /// ([`Predicate::compile_blockwise`]); this form is the semantic
    /// reference the block form is property-tested against, and the
    /// fallback for per-row consumers (the find vizketch).
    pub fn compile(&self, table: &Table) -> Result<CompiledPredicate> {
        Ok(match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::Range { column, lo, hi } => CompiledPredicate::Range {
                col: table.schema().index_of(column)?,
                lo: *lo,
                hi: *hi,
            },
            Predicate::Equals { column, value } => {
                let col = table.schema().index_of(column)?;
                match value {
                    Value::Missing => CompiledPredicate::EqualsMissing { col },
                    Value::Str(s) => CompiledPredicate::EqualsStr {
                        col,
                        value: s.clone(),
                    },
                    v => {
                        let int_col = matches!(table.column(col), Column::Int(_) | Column::Date(_));
                        match (v.as_i64(), int_col) {
                            // Integer constant against an integer column:
                            // compare exactly in the i64 domain, so ids and
                            // timestamps beyond 2^53 don't merge under f64
                            // rounding.
                            (Some(i), true) => CompiledPredicate::EqualsI64 { col, value: i },
                            _ => CompiledPredicate::EqualsNum {
                                col,
                                value: v.as_f64().expect("numeric value"),
                            },
                        }
                    }
                }
            }
            Predicate::StrMatch {
                column,
                query,
                kind,
                case_insensitive,
            } => CompiledPredicate::Match {
                col: table.schema().index_of(column)?,
                matcher: Matcher::compile(query, kind, *case_insensitive)?,
                scratch: String::new(),
            },
            Predicate::IsMissing { column } => CompiledPredicate::IsMissing {
                col: table.schema().index_of(column)?,
            },
            Predicate::And(a, b) => {
                CompiledPredicate::And(Box::new(a.compile(table)?), Box::new(b.compile(table)?))
            }
            Predicate::Or(a, b) => {
                CompiledPredicate::Or(Box::new(a.compile(table)?), Box::new(b.compile(table)?))
            }
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(table)?)),
        })
    }

    /// Compile to the block-wise form bound to `table`'s columns: per
    /// 64-row frame, [`BlockPredicate::eval_frame`] turns a selection word
    /// into the word of matching rows. See the module docs for the leaf
    /// strategies (lane compares, packed-domain bounds, dictionary match
    /// bitmaps, zone-map skipping).
    pub fn compile_blockwise<'a>(&self, table: &'a Table) -> Result<BlockPredicate<'a>> {
        Ok(BlockPredicate {
            node: self.block_node(table)?,
        })
    }

    fn block_node<'a>(&self, table: &'a Table) -> Result<BNode<'a>> {
        Ok(match self {
            Predicate::True => BNode::Always(true),
            Predicate::Range { column, lo, hi } => {
                let col = table.column(table.schema().index_of(column)?);
                match col {
                    Column::Double(c) => {
                        if *lo < *hi {
                            BNode::RangeF64 {
                                data: c.data(),
                                nulls: c.nulls().bitmap(),
                                zones: c.zones(),
                                lo: *lo,
                                hi: *hi,
                            }
                        } else {
                            // Empty range, or a NaN bound: nothing matches.
                            BNode::Always(false)
                        }
                    }
                    Column::Int(c) | Column::Date(c) => {
                        match (int_lower_bound(*lo), int_upper_bound_excl(*hi)) {
                            (Some(ilo), Some(ihi)) if ilo <= ihi => BNode::RangeI64 {
                                storage: c.storage(),
                                nulls: c.nulls().bitmap(),
                                zones: c.zones(),
                                lo: ilo,
                                hi: ihi,
                                cursor: 0,
                                buf: Box::new([0; BLOCK_ROWS]),
                            },
                            _ => BNode::Always(false),
                        }
                    }
                    // Range on a string column: as_f64 is None per row.
                    Column::Str(_) | Column::Cat(_) => BNode::Always(false),
                }
            }
            Predicate::Equals { column, value } => {
                let col = table.column(table.schema().index_of(column)?);
                match value {
                    Value::Missing => BNode::IsMissing {
                        nulls: col.null_bitmap(),
                    },
                    Value::Str(s) => match col.as_dict_col() {
                        Some(d) => match d.dictionary().code_of(s) {
                            Some(code) => BNode::EqualsCode {
                                codes: d.codes(),
                                nulls: d.nulls().bitmap(),
                                zones: d.zones(),
                                code,
                                cursor: 0,
                                buf: Box::new([0; BLOCK_ROWS]),
                            },
                            None => BNode::Always(false),
                        },
                        None => BNode::Always(false),
                    },
                    v => {
                        // Integer constant on an integer column: exact
                        // i64-domain equality (a degenerate range).
                        if let (Some(i), Column::Int(c) | Column::Date(c)) = (v.as_i64(), col) {
                            return Ok(BNode::RangeI64 {
                                storage: c.storage(),
                                nulls: c.nulls().bitmap(),
                                zones: c.zones(),
                                lo: i,
                                hi: i,
                                cursor: 0,
                                buf: Box::new([0; BLOCK_ROWS]),
                            });
                        }
                        let target = v.as_f64().expect("numeric value");
                        match col {
                            Column::Double(c) => {
                                if target.is_nan() {
                                    BNode::Always(false)
                                } else {
                                    BNode::EqualsF64 {
                                        data: c.data(),
                                        nulls: c.nulls().bitmap(),
                                        zones: c.zones(),
                                        value: target,
                                    }
                                }
                            }
                            Column::Int(c) | Column::Date(c) => {
                                // (v as f64) == target ⇔ v in the integer
                                // interval whose conversions land on target.
                                match (
                                    int_lower_bound(target),
                                    int_upper_bound_excl(target.next_up()),
                                ) {
                                    (Some(ilo), Some(ihi)) if ilo <= ihi => BNode::RangeI64 {
                                        storage: c.storage(),
                                        nulls: c.nulls().bitmap(),
                                        zones: c.zones(),
                                        lo: ilo,
                                        hi: ihi,
                                        cursor: 0,
                                        buf: Box::new([0; BLOCK_ROWS]),
                                    },
                                    _ => BNode::Always(false),
                                }
                            }
                            Column::Str(_) | Column::Cat(_) => BNode::Always(false),
                        }
                    }
                }
            }
            Predicate::StrMatch {
                column,
                query,
                kind,
                case_insensitive,
            } => {
                let col = table.column(table.schema().index_of(column)?);
                let matcher = Matcher::compile(query, kind, *case_insensitive)?;
                match col.as_dict_col() {
                    Some(d) => {
                        // Evaluate the matcher once per dictionary entry
                        // into a code-indexed bitmap; the per-row test is a
                        // probe on the code lane.
                        let dict = d.dictionary();
                        let mut bits = vec![0u64; dict.len().max(1).div_ceil(64)];
                        let mut hits = 0usize;
                        for (code, s) in dict.iter().enumerate() {
                            if matcher.matches(s) {
                                bits[code / 64] |= 1 << (code % 64);
                                hits += 1;
                            }
                        }
                        if hits == 0 {
                            BNode::Always(false)
                        } else if hits == dict.len() {
                            // Every entry matches: the test degenerates to
                            // "present".
                            BNode::Present {
                                nulls: d.nulls().bitmap(),
                            }
                        } else {
                            BNode::MatchCodes {
                                codes: d.codes(),
                                nulls: d.nulls().bitmap(),
                                zones: d.zones(),
                                bits,
                                cursor: 0,
                                buf: Box::new([0; BLOCK_ROWS]),
                            }
                        }
                    }
                    None => BNode::MatchDisplay {
                        col,
                        nulls: col.null_bitmap(),
                        matcher,
                        scratch: String::new(),
                    },
                }
            }
            Predicate::IsMissing { column } => BNode::IsMissing {
                nulls: table.column(table.schema().index_of(column)?).null_bitmap(),
            },
            Predicate::And(a, b) => BNode::And(
                Box::new(a.block_node(table)?),
                Box::new(b.block_node(table)?),
            ),
            Predicate::Or(a, b) => BNode::Or(
                Box::new(a.block_node(table)?),
                Box::new(b.block_node(table)?),
            ),
            Predicate::Not(p) => BNode::Not(Box::new(p.block_node(table)?)),
        })
    }
}

/// A predicate bound to a specific table's column indexes — the per-row
/// reference form (see the module docs for the two compiled forms).
#[derive(Debug)]
pub enum CompiledPredicate {
    /// Always true.
    True,
    /// See [`Predicate::Range`].
    Range {
        /// Resolved column index.
        col: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Numeric equality through `as_f64` (matches `Int`/`Double`/`Date`
    /// cells alike; a NaN target matches nothing).
    EqualsNum {
        /// Resolved column index.
        col: usize,
        /// Target value.
        value: f64,
    },
    /// Exact i64-domain equality: an integer constant against an
    /// integer/date column (no f64 rounding beyond 2^53).
    EqualsI64 {
        /// Resolved column index.
        col: usize,
        /// Target value.
        value: i64,
    },
    /// String equality on a dictionary column (never matches elsewhere).
    EqualsStr {
        /// Resolved column index.
        col: usize,
        /// Target string.
        value: Arc<str>,
    },
    /// `Equals(Value::Missing)`: matches exactly the missing rows.
    EqualsMissing {
        /// Resolved column index.
        col: usize,
    },
    /// Text or regex match (see [`Matcher`]).
    Match {
        /// Resolved column index.
        col: usize,
        /// The compiled matcher.
        matcher: Matcher,
        /// Reused display-format buffer for non-string columns.
        scratch: String,
    },
    /// See [`Predicate::IsMissing`].
    IsMissing {
        /// Resolved column index.
        col: usize,
    },
    /// Logical AND.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Logical OR.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Logical NOT (exact complement; see the module docs on missing rows).
    Not(Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Evaluate against row `row` of `table`. Takes `&mut self` so text
    /// matching on non-string columns can format into a reused scratch
    /// buffer instead of allocating per row.
    pub fn eval(&mut self, table: &Table, row: usize) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::Range { col, lo, hi } => match table.column(*col).as_f64(row) {
                Some(v) => v >= *lo && v < *hi,
                None => false,
            },
            CompiledPredicate::EqualsNum { col, value } => {
                table.column(*col).as_f64(row) == Some(*value)
            }
            CompiledPredicate::EqualsI64 { col, value } => {
                table.column(*col).as_i64_col().and_then(|c| c.get(row)) == Some(*value)
            }
            CompiledPredicate::EqualsStr { col, value } => table
                .column(*col)
                .as_dict_col()
                .and_then(|d| d.get(row))
                .is_some_and(|s| s.as_ref() == value.as_ref()),
            CompiledPredicate::EqualsMissing { col } => table.column(*col).is_null(row),
            CompiledPredicate::Match {
                col,
                matcher,
                scratch,
            } => {
                let c = table.column(*col);
                if c.is_null(row) {
                    return false;
                }
                match c.as_dict_col() {
                    Some(d) => matcher.matches(d.get(row).expect("checked non-null")),
                    // Non-string columns are matched against their display
                    // text, like searching a spreadsheet.
                    None => {
                        scratch.clear();
                        let _ = write!(scratch, "{}", c.value(row));
                        matcher.matches(scratch)
                    }
                }
            }
            CompiledPredicate::IsMissing { col } => table.column(*col).is_null(row),
            CompiledPredicate::And(a, b) => a.eval(table, row) && b.eval(table, row),
            CompiledPredicate::Or(a, b) => a.eval(table, row) || b.eval(table, row),
            CompiledPredicate::Not(p) => !p.eval(table, row),
        }
    }
}

/// Exact or substring match with optional ASCII case folding. `query` is
/// pre-folded at compile; the haystack is folded byte-by-byte *during* the
/// comparison, so case-insensitive matching allocates nothing.
fn text_match(hay: &str, query: &str, exact: bool, case_insensitive: bool) -> bool {
    if !case_insensitive {
        return if exact {
            hay == query
        } else {
            hay.contains(query)
        };
    }
    let (h, q) = (hay.as_bytes(), query.as_bytes());
    if exact {
        h.len() == q.len() && folded_eq(h, q)
    } else {
        // UTF-8 substring containment is byte-substring containment, and
        // ASCII folding is per-byte, so a folded byte-window scan matches
        // exactly what `hay.to_ascii_lowercase().contains(query)` would.
        q.is_empty()
            || (h.len() >= q.len()
                && (0..=h.len() - q.len()).any(|i| folded_eq(&h[i..i + q.len()], q)))
    }
}

/// `a` equals `b` after folding `a` to ASCII lowercase (`b` pre-folded).
#[inline]
fn folded_eq(a: &[u8], b: &[u8]) -> bool {
    a.iter().zip(b).all(|(&x, &y)| x.to_ascii_lowercase() == y)
}

/// Smallest `i64` whose `as f64` conversion is `>= lo`, or `None` when no
/// i64 qualifies (NaN, or `lo` above the i64 range). `i64 → f64` is
/// monotone, so for every i64 `v`: `(v as f64) >= lo ⇔ v >= bound` — this
/// is what makes the integer-domain bounds exactly equivalent to the
/// per-row f64 comparison.
fn int_lower_bound(lo: f64) -> Option<i64> {
    if lo.is_nan() {
        return None;
    }
    if lo <= i64::MIN as f64 {
        return Some(i64::MIN);
    }
    if lo > i64::MAX as f64 {
        return None;
    }
    let g = lo.ceil();
    let mut v = if g >= i64::MAX as f64 {
        i64::MAX
    } else {
        g as i64
    };
    // Fix up rounding at magnitudes beyond 2^53: enforce minimality of
    // (v as f64) >= lo. Both loops take at most one ulp's worth of steps.
    while (v as f64) < lo {
        v = v.checked_add(1)?;
    }
    while v > i64::MIN && ((v - 1) as f64) >= lo {
        v -= 1;
    }
    Some(v)
}

/// Largest `i64` whose `as f64` conversion is `< hi`, or `None` when every
/// conversion is at or above `hi` (or `hi` is NaN) — i.e. nothing passes.
fn int_upper_bound_excl(hi: f64) -> Option<i64> {
    if hi.is_nan() {
        return None;
    }
    match int_lower_bound(hi) {
        None => Some(i64::MAX),
        Some(i64::MIN) => None,
        Some(x) => Some(x - 1),
    }
}

/// A compiled text matcher — exact/substring (query case-folded once at
/// compile) or lite-regex — shared by the rowwise reference form, the
/// dictionary-bitmap build, and the display-text block leaf, so all three
/// apply the identical matching rules.
#[derive(Debug)]
pub enum Matcher {
    /// Exact or substring text match.
    Text {
        /// Case-folded query.
        query: String,
        /// Whole-cell equality instead of substring.
        exact: bool,
        /// Fold the haystack's ASCII case too (without allocating).
        case_insensitive: bool,
    },
    /// Pre-compiled lite-regex pattern.
    Regex(Regex),
}

impl Matcher {
    fn compile(query: &str, kind: &StrMatchKind, case_insensitive: bool) -> Result<Matcher> {
        Ok(match kind {
            StrMatchKind::Regex => Matcher::Regex(Regex::compile(query, case_insensitive)?),
            _ => Matcher::Text {
                query: if case_insensitive {
                    query.to_ascii_lowercase()
                } else {
                    query.to_string()
                },
                exact: *kind == StrMatchKind::Exact,
                case_insensitive,
            },
        })
    }

    fn matches(&self, s: &str) -> bool {
        match self {
            Matcher::Text {
                query,
                exact,
                case_insensitive,
            } => text_match(s, query, *exact, *case_insensitive),
            Matcher::Regex(r) => r.is_match(s),
        }
    }
}

/// A predicate compiled to the block-wise form, bound to one table's
/// columns (see the module docs for the two compiled forms). Frames must
/// be requested in ascending base order within one scan; leaves keep
/// ascending decode cursors, which tolerate skipped frames.
#[derive(Debug)]
pub struct BlockPredicate<'a> {
    node: BNode<'a>,
}

impl BlockPredicate<'_> {
    /// The matching rows of the 64-row-aligned frame `base .. base + len`:
    /// given the word of rows the caller has selected (`sel`), returns the
    /// subset whose rows satisfy the predicate. Bit-identical to testing
    /// [`CompiledPredicate::eval`] on every set bit of `sel`.
    pub fn eval_frame(&mut self, base: usize, len: usize, sel: u64) -> u64 {
        eval_node(&mut self.node, base, len, sel)
    }
}

#[derive(Debug)]
enum BNode<'a> {
    /// Constant result (degenerate compiles: empty ranges, NaN targets,
    /// strings absent from the dictionary, type mismatches).
    Always(bool),
    /// Selected and non-null (an all-matching dictionary bitmap).
    Present {
        nulls: Option<&'a Bitmap>,
    },
    /// Selected and null.
    IsMissing {
        nulls: Option<&'a Bitmap>,
    },
    /// `lo <= v < hi` lane compare on a float column.
    RangeF64 {
        data: &'a [f64],
        nulls: Option<&'a Bitmap>,
        zones: &'a ZoneMap<f64>,
        lo: f64,
        hi: f64,
    },
    /// `v == value` lane compare on a float column.
    EqualsF64 {
        data: &'a [f64],
        nulls: Option<&'a Bitmap>,
        zones: &'a ZoneMap<f64>,
        value: f64,
    },
    /// Inclusive integer-domain bounds on an integer/date column (range
    /// *and* numeric equality both lower to this).
    RangeI64 {
        storage: &'a I64Storage,
        nulls: Option<&'a Bitmap>,
        zones: &'a ZoneMap<i64>,
        lo: i64,
        hi: i64,
        cursor: usize,
        buf: Box<[i64; BLOCK_ROWS]>,
    },
    /// Code equality on a dictionary column (string `Equals`).
    EqualsCode {
        codes: &'a CodeStorage,
        nulls: Option<&'a Bitmap>,
        zones: &'a ZoneMap<u32>,
        code: u32,
        cursor: usize,
        buf: Box<[u32; BLOCK_ROWS]>,
    },
    /// Dictionary match bitmap probed by the code lane (text/regex on
    /// string columns).
    MatchCodes {
        codes: &'a CodeStorage,
        nulls: Option<&'a Bitmap>,
        zones: &'a ZoneMap<u32>,
        bits: Vec<u64>,
        cursor: usize,
        buf: Box<[u32; BLOCK_ROWS]>,
    },
    /// Display-text match on non-string columns (formats live lanes into a
    /// reused scratch buffer).
    MatchDisplay {
        col: &'a Column,
        nulls: Option<&'a Bitmap>,
        matcher: Matcher,
        scratch: String,
    },
    And(Box<BNode<'a>>, Box<BNode<'a>>),
    Or(Box<BNode<'a>>, Box<BNode<'a>>),
    Not(Box<BNode<'a>>),
}

/// `sel` restricted to non-null rows of the frame's 64-row block.
#[inline]
fn live_word(nulls: Option<&Bitmap>, base: usize, sel: u64) -> u64 {
    sel & !nulls.map_or(0, |nb| nb.word(base / 64))
}

fn eval_node(node: &mut BNode<'_>, base: usize, len: usize, sel: u64) -> u64 {
    if sel == 0 {
        return 0;
    }
    match node {
        BNode::Always(pass) => {
            if *pass {
                sel
            } else {
                0
            }
        }
        BNode::Present { nulls } => live_word(*nulls, base, sel),
        BNode::IsMissing { nulls } => sel & nulls.map_or(0, |nb| nb.word(base / 64)),
        BNode::RangeF64 {
            data,
            nulls,
            zones,
            lo,
            hi,
        } => {
            let live = live_word(*nulls, base, sel);
            if live == 0 {
                return 0;
            }
            let (zmin, zmax) = zones.block(base / 64);
            if zmax < *lo || zmin >= *hi {
                return 0; // zone map: no value in this block can pass
            }
            if zmin >= *lo && zmax < *hi {
                return live; // zone map: every value passes
            }
            simd::range_word_half(&data[base..base + len], *lo, *hi) & live
        }
        BNode::EqualsF64 {
            data,
            nulls,
            zones,
            value,
        } => {
            let live = live_word(*nulls, base, sel);
            if live == 0 {
                return 0;
            }
            let (zmin, zmax) = zones.block(base / 64);
            if *value < zmin || *value > zmax {
                return 0;
            }
            if zmin == zmax && zmin == *value {
                return live; // constant block equal to the target
            }
            simd::eq_word(&data[base..base + len], *value) & live
        }
        BNode::RangeI64 {
            storage,
            nulls,
            zones,
            lo,
            hi,
            cursor,
            buf,
        } => {
            let live = live_word(*nulls, base, sel);
            if live == 0 {
                return 0;
            }
            let (zmin, zmax) = zones.block(base / 64);
            if zmax < *lo || zmin > *hi {
                return 0;
            }
            if zmin >= *lo && zmax <= *hi {
                return live;
            }
            storage.range_frame_word(cursor, base, len, *lo, *hi, buf) & live
        }
        BNode::EqualsCode {
            codes,
            nulls,
            zones,
            code,
            cursor,
            buf,
        } => {
            let live = live_word(*nulls, base, sel);
            if live == 0 {
                return 0;
            }
            let (zmin, zmax) = zones.block(base / 64);
            if *code < zmin || *code > zmax {
                return 0; // zone map: the target code never occurs here
            }
            if zmin == zmax {
                return live; // constant block equal to the target
            }
            codes.range_frame_word(cursor, base, len, *code, *code, buf) & live
        }
        BNode::MatchCodes {
            codes,
            nulls,
            zones,
            bits,
            cursor,
            buf,
        } => {
            let live = live_word(*nulls, base, sel);
            if live == 0 {
                return 0;
            }
            // Zone check over the block's code interval: sorted or
            // low-cardinality categorical data has narrow per-block code
            // ranges, so a cheap bitmap sweep decides whole blocks. Wide
            // intervals skip the sweep rather than pay O(interval) per
            // block.
            let (zmin, zmax) = zones.block(base / 64);
            if zmax - zmin < 256 {
                let mut any = false;
                let mut all = true;
                for c in zmin..=zmax {
                    let hit = bits[c as usize / 64] >> (c % 64) & 1 == 1;
                    any |= hit;
                    all &= hit;
                }
                if !any {
                    return 0; // no code of this block matches
                }
                if all {
                    return live; // every code of this block matches
                }
            }
            let lanes = codes.decode_frame(cursor, base, len, buf);
            simd::probe_word(lanes, bits) & live
        }
        BNode::MatchDisplay {
            col,
            nulls,
            matcher,
            scratch,
        } => {
            let mut live = live_word(*nulls, base, sel);
            let mut w = 0u64;
            while live != 0 {
                let k = live.trailing_zeros() as usize;
                live &= live - 1;
                scratch.clear();
                let _ = write!(scratch, "{}", col.value(base + k));
                if matcher.matches(scratch) {
                    w |= 1 << k;
                }
            }
            w
        }
        BNode::And(a, b) => {
            let l = eval_node(a, base, len, sel);
            if l == 0 {
                0
            } else {
                eval_node(b, base, len, l)
            }
        }
        BNode::Or(a, b) => {
            let l = eval_node(a, base, len, sel);
            l | eval_node(b, base, len, sel & !l)
        }
        BNode::Not(a) => sel & !eval_node(a, base, len, sel),
    }
}

/// Evaluate `predicate` over the rows of `parent`, returning the narrowed
/// membership — the block filter pipeline behind `Worker::filter`.
///
/// The parent membership streams through [`BlockPredicate::eval_frame`] as
/// 64-row selection words (sparse parents are grouped into per-block words
/// first), each result word is OR-ed into a bitmap, and the membership is
/// built from those words directly — no per-row id list is ever
/// materialized by the evaluation loop. The final representation
/// (full/dense/sparse) is chosen by the usual §5.6 selectivity rule.
pub fn filter_members(
    table: &Table,
    predicate: &Predicate,
    parent: &MembershipSet,
) -> Result<MembershipSet> {
    let n = table.num_rows();
    debug_assert_eq!(parent.universe(), n, "membership universe mismatch");
    let mut bp = predicate.compile_blockwise(table)?;
    let mut words = vec![0u64; n.div_ceil(64)];
    // Sparse parents arrive row by row; group consecutive rows of one
    // block into a single selection word before evaluating.
    let mut pending: Option<(usize, u64)> = None;
    scan_frames(&Selection::Members(parent), |ev| match ev {
        FrameEvent::Frame { base, len, word } => {
            if let Some((b, w)) = pending.take() {
                flush_word(&mut bp, &mut words, n, b, w);
            }
            words[base / 64] |= bp.eval_frame(base, len, word);
        }
        FrameEvent::Row(r) => {
            let b = r / 64 * 64;
            match &mut pending {
                Some((pb, pw)) if *pb == b => *pw |= 1 << (r - b),
                _ => {
                    if let Some((pb, pw)) = pending.take() {
                        flush_word(&mut bp, &mut words, n, pb, pw);
                    }
                    pending = Some((b, 1u64 << (r - b)));
                }
            }
        }
    });
    if let Some((b, w)) = pending {
        flush_word(&mut bp, &mut words, n, b, w);
    }
    Ok(MembershipSet::from_mask(&Bitmap::from_words(words, n)))
}

fn flush_word(bp: &mut BlockPredicate<'_>, words: &mut [u64], n: usize, base: usize, word: u64) {
    let len = (64 - word.leading_zeros() as usize).min(n - base);
    words[base / 64] |= bp.eval_frame(base, len, word);
}

/// A compiled predicate packaged for **fused** scans: the filter stage of a
/// one-pass `(predicate, sketch)` query.
///
/// Where [`filter_members`] materializes a narrowed [`MembershipSet`] that a
/// kernel then re-walks (two memory passes), a `FrameFilter` is handed to
/// [`Selection::Filtered`](crate::scan::Selection) and evaluated *inside*
/// the kernel's chunk iterator: each parent selection word is turned into
/// its match word on the fly, zero words are dropped before any column
/// decode happens, and the surviving words flow straight into the block
/// kernel. Zone maps therefore prune for both stages at once — a block the
/// predicate skips is never decoded for the kernel either.
///
/// The filter counts matching rows as a side effect ([`FrameFilter::matched`]
/// replaces the pre-scan `Selection::count()` kernels use on materialized
/// memberships) and is strictly **single-pass**: the underlying
/// [`BlockPredicate`] decode cursors only move forward, so a second
/// `chunks()` or a `count()` on the filtered selection panics instead of
/// silently returning garbage.
pub struct FrameFilter<'a> {
    pred: BlockPredicate<'a>,
    universe: usize,
    matched: u64,
    started: bool,
}

impl std::fmt::Debug for FrameFilter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameFilter")
            .field("universe", &self.universe)
            .field("matched", &self.matched)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<'a> FrameFilter<'a> {
    /// Compile `predicate` against `table` for fused evaluation.
    pub fn compile(predicate: &Predicate, table: &'a Table) -> Result<Self> {
        Ok(FrameFilter {
            pred: predicate.compile_blockwise(table)?,
            universe: table.num_rows(),
            matched: 0,
            started: false,
        })
    }

    /// Rows that passed the predicate so far; after a scan drains the
    /// filtered selection this is the filtered row count.
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Marks the start of the (single permitted) pass.
    pub(crate) fn begin(&mut self) {
        assert!(
            !self.started,
            "FrameFilter is single-pass: a filtered selection can only be scanned once \
             (compile a fresh filter, or materialize with filter_members for reuse)"
        );
        self.started = true;
    }

    /// Evaluate the parent selection `word` of the 64-row block at `base`
    /// (64-aligned, `word != 0`) and return the word of matching rows.
    pub(crate) fn eval_word(&mut self, base: usize, word: u64) -> u64 {
        let len = (64 - word.leading_zeros() as usize).min(self.universe - base);
        let m = self.pred.eval_frame(base, len, word);
        self.matched += u64::from(m.count_ones());
        m
    }
}

/// Per-row reference of [`filter_members`]: iterate the parent membership
/// and test [`CompiledPredicate::eval`] on every row. Kept for the
/// block-vs-rowwise equivalence property tests and as the benchmark
/// baseline (this is exactly the filter loop the worker ran before the
/// block pipeline).
pub fn filter_members_rowwise(
    table: &Table,
    predicate: &Predicate,
    parent: &MembershipSet,
) -> Result<MembershipSet> {
    let mut compiled = predicate.compile(table)?;
    let rows: Vec<u32> = parent
        .iter()
        .filter(|&r| compiled.eval(table, r))
        .map(|r| r as u32)
        .collect();
    Ok(MembershipSet::from_rows(rows, table.num_rows()))
}

// ---------------------------------------------------------------------
// Canonicalization + identity hashing (paper §5.4: the computation cache
// needs query *identity*, and a predicate's identity must survive the
// syntactic noise of how the UI assembled it).
// ---------------------------------------------------------------------

/// The canonical structural form a predicate normalizes into for identity
/// hashing. **Never executed** — execution always runs the original tree —
/// this form only decides when two predicates are the *same query*:
///
/// * negation-normal form: `Not` is pushed through `And`/`Or` by De Morgan
///   and double negations cancel, so `Not(Not(p))` ≡ `p` and
///   `Not(a.or(b))` ≡ `a.not().and(b.not())`;
/// * `And`/`Or` chains flatten into sorted, deduplicated operand lists, so
///   `a.and(b)` ≡ `b.and(a)` and `a.and(a)` ≡ `a`;
/// * numeric bounds on integer-kinded columns normalize through the same
///   [`int_lower_bound`]/[`int_upper_bound_excl`] translation the block
///   compiler uses, so `Range(10.2, 19.7)` ≡ `Range(11.0, 20.0)` on an
///   `Int` column, and an integer `Equals` lowers to the same inclusive
///   interval leaf as the equivalent one-value `Range`;
/// * statically-empty leaves (NaN bounds, `lo >= hi`, empty snapped
///   intervals) collapse to `False`, and constants propagate through the
///   connectives (`And` with `False` is `False`, `Or` with `True` is
///   `True`, ...).
#[derive(Debug, Clone, PartialEq)]
enum Canon {
    True,
    False,
    /// `lo <= x < hi` on a float-kinded (or unresolved) column.
    RangeF(Arc<str>, u64, u64),
    /// Inclusive integer-domain interval on an `Int`/`Date` column.
    RangeI(Arc<str>, i64, i64),
    /// Numeric equality through `as_f64` (bit pattern of the target).
    EqualsF(Arc<str>, u64),
    /// String equality on a column.
    EqualsStr(Arc<str>, Arc<str>),
    /// Text/regex match; the query is case-folded when insensitive, so the
    /// two spellings of a case-insensitive search hash equal.
    Match(Arc<str>, String, u8),
    /// The row is missing in the column (`IsMissing` and
    /// `Equals(Value::Missing)` both land here — they match identical rows).
    Missing(Arc<str>),
    And(Vec<Canon>),
    Or(Vec<Canon>),
    /// Negated leaf (NNF keeps `Not` only directly above leaves).
    Not(Box<Canon>),
}

impl Canon {
    /// Deterministic structural encoding: tag byte, then length-prefixed
    /// operands. Operand lists are already sorted by their encodings.
    fn encode(&self, out: &mut Vec<u8>) {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        match self {
            Canon::True => out.push(0),
            Canon::False => out.push(1),
            Canon::RangeF(c, lo, hi) => {
                out.push(2);
                put_str(out, c);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Canon::RangeI(c, lo, hi) => {
                out.push(3);
                put_str(out, c);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Canon::EqualsF(c, bits) => {
                out.push(4);
                put_str(out, c);
                out.extend_from_slice(&bits.to_le_bytes());
            }
            Canon::EqualsStr(c, s) => {
                out.push(5);
                put_str(out, c);
                put_str(out, s);
            }
            Canon::Match(c, q, mode) => {
                out.push(6);
                put_str(out, c);
                put_str(out, q);
                out.push(*mode);
            }
            Canon::Missing(c) => {
                out.push(7);
                put_str(out, c);
            }
            Canon::And(ops) | Canon::Or(ops) => {
                out.push(if matches!(self, Canon::And(_)) { 8 } else { 9 });
                out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
                for op in ops {
                    op.encode(out);
                }
            }
            Canon::Not(p) => {
                out.push(10);
                p.encode(out);
            }
        }
    }
}

/// Normalize an f64 for canonical encoding: `-0.0` compares equal to
/// `0.0` in every predicate, so both encode as `0.0`. NaN never reaches
/// this point (NaN leaves collapse to `False` first).
fn canon_f64_bits(v: f64) -> u64 {
    if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

/// True when the named column exists in `table` and is integer-kinded
/// (`Int`/`Date`), i.e. the block compiler would translate range bounds
/// into the i64 domain for it.
fn int_kinded(table: Option<&Table>, column: &str) -> bool {
    table
        .and_then(|t| t.schema().index_of(column).ok().map(|i| t.column(i)))
        .is_some_and(|c| matches!(c, Column::Int(_) | Column::Date(_)))
}

fn canon_node(p: &Predicate, neg: bool, table: Option<&Table>) -> Canon {
    match p {
        Predicate::Not(inner) => canon_node(inner, !neg, table),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            // De Morgan: a negated And is an Or of negations (and vice
            // versa), so NNF needs only the negation flag.
            let is_and = matches!(p, Predicate::And(..)) != neg;
            let mut ops = Vec::new();
            for side in [a, b] {
                match canon_node(side, neg, table) {
                    // Flatten same-connective children into one list.
                    Canon::And(inner) if is_and => ops.extend(inner),
                    Canon::Or(inner) if !is_and => ops.extend(inner),
                    // Identity elements vanish; absorbing elements decide.
                    Canon::True if is_and => {}
                    Canon::False if !is_and => {}
                    Canon::True => return Canon::True,
                    Canon::False => return Canon::False,
                    other => ops.push(other),
                }
            }
            // Sort operands by their structural encodings and drop
            // duplicates (idempotence: `a AND a` ≡ `a`).
            let mut keyed: Vec<(Vec<u8>, Canon)> = ops
                .into_iter()
                .map(|c| {
                    let mut k = Vec::new();
                    c.encode(&mut k);
                    (k, c)
                })
                .collect();
            keyed.sort_by(|x, y| x.0.cmp(&y.0));
            keyed.dedup_by(|x, y| x.0 == y.0);
            let ops: Vec<Canon> = keyed.into_iter().map(|(_, c)| c).collect();
            match (ops.len(), is_and) {
                (0, true) => Canon::True,
                (0, false) => Canon::False,
                (1, _) => ops.into_iter().next().unwrap(),
                (_, true) => Canon::And(ops),
                (_, false) => Canon::Or(ops),
            }
        }
        leaf => {
            let c = canon_leaf(leaf, table);
            if neg {
                match c {
                    Canon::True => Canon::False,
                    Canon::False => Canon::True,
                    other => Canon::Not(Box::new(other)),
                }
            } else {
                c
            }
        }
    }
}

fn canon_leaf(p: &Predicate, table: Option<&Table>) -> Canon {
    match p {
        Predicate::True => Canon::True,
        Predicate::Range { column, lo, hi } => {
            if lo.is_nan() || hi.is_nan() || lo >= hi {
                return Canon::False;
            }
            if int_kinded(table, column) {
                // The same translation the block compiler applies: the
                // smallest/largest i64 whose f64 image satisfies the bound.
                match (int_lower_bound(*lo), int_upper_bound_excl(*hi)) {
                    (Some(l), Some(u)) if l <= u => Canon::RangeI(column.clone(), l, u),
                    _ => Canon::False,
                }
            } else {
                Canon::RangeF(column.clone(), canon_f64_bits(*lo), canon_f64_bits(*hi))
            }
        }
        Predicate::Equals { column, value } => match value {
            Value::Missing => Canon::Missing(column.clone()),
            Value::Str(s) => Canon::EqualsStr(column.clone(), s.clone()),
            v => match (v.as_i64(), int_kinded(table, column)) {
                // Same lowering as the compiler: exact i64 equality on an
                // integer column is the one-value inclusive interval.
                (Some(i), true) => Canon::RangeI(column.clone(), i, i),
                _ => {
                    let f = v.as_f64().expect("numeric value");
                    if f.is_nan() {
                        Canon::False
                    } else {
                        Canon::EqualsF(column.clone(), canon_f64_bits(f))
                    }
                }
            },
        },
        Predicate::StrMatch {
            column,
            query,
            kind,
            case_insensitive,
        } => {
            let q = if *case_insensitive && *kind != StrMatchKind::Regex {
                query.to_ascii_lowercase()
            } else {
                query.to_string()
            };
            let mode = match kind {
                StrMatchKind::Exact => 0u8,
                StrMatchKind::Substring => 1,
                StrMatchKind::Regex => 2,
            } | (u8::from(*case_insensitive) << 4);
            Canon::Match(column.clone(), q, mode)
        }
        Predicate::IsMissing { column } => Canon::Missing(column.clone()),
        Predicate::And(..) | Predicate::Or(..) | Predicate::Not(..) => {
            unreachable!("handled by canon_node")
        }
    }
}

/// FNV-1a over a byte slice, continuing from `state` — the same hash the
/// engine uses for wire checksums; collisions only cost a cache miss here
/// because the full key is compared on lookup.
pub fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a offset basis (the conventional starting state for [`fnv1a`]).
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

impl Predicate {
    /// The canonical structural encoding of this predicate, optionally
    /// schema-aware: when `table` is given, numeric bounds on its
    /// integer-kinded columns normalize through the block compiler's
    /// integer-domain translation (see `Canon`). Two predicates with
    /// equal canonical bytes select identical rows on every table
    /// consistent with the schema used; the encoding is the basis of the
    /// engine's predicate-identity cache keys.
    pub fn canonical_bytes(&self, table: Option<&Table>) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        canon_node(self, false, table).encode(&mut out);
        out
    }

    /// 64-bit identity hash of [`Predicate::canonical_bytes`].
    pub fn identity_hash(&self, table: Option<&Table>) -> u64 {
        fnv1a(FNV_OFFSET, &self.canonical_bytes(table))
    }
}

// ---------------------------------------------------------------------
// Zone-map selectivity estimation (the planner's cost input).
// ---------------------------------------------------------------------

/// Block-classification counts for a predicate over one table, the cost
/// signal behind the engine's fuse-vs-materialize choice: `all_fail`
/// blocks are skipped without decoding by both the fused pass and the
/// filter pipeline, `all_pass` blocks pass every present row without a
/// value test, and `mixed` blocks pay a decode. A deterministic probe of
/// evenly-spaced mixed blocks refines the row-level selectivity estimate.
/// Estimates from different partitions/workers sum with
/// [`SelectivityEstimate::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectivityEstimate {
    /// Rows examined (the table sizes summed).
    pub rows: u64,
    /// 64-row blocks examined.
    pub blocks: u64,
    /// Blocks the zone maps prove fully passing (modulo nulls).
    pub all_pass: u64,
    /// Blocks the zone maps prove fully failing.
    pub all_fail: u64,
    /// Blocks needing a value test.
    pub mixed: u64,
    /// Rows evaluated by the mixed-block probe.
    pub probed_rows: u64,
    /// Probed rows that passed the predicate.
    pub probed_hits: u64,
}

impl SelectivityEstimate {
    /// Combine estimates of disjoint data (summing every counter).
    pub fn merge(&self, other: &Self) -> Self {
        SelectivityEstimate {
            rows: self.rows + other.rows,
            blocks: self.blocks + other.blocks,
            all_pass: self.all_pass + other.all_pass,
            all_fail: self.all_fail + other.all_fail,
            mixed: self.mixed + other.mixed,
            probed_rows: self.probed_rows + other.probed_rows,
            probed_hits: self.probed_hits + other.probed_hits,
        }
    }

    /// Fraction of blocks the zone maps prove fully failing — work *both*
    /// execution strategies skip without decoding.
    pub fn skip_fraction(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.all_fail as f64 / self.blocks as f64
        }
    }

    /// Estimated fraction of rows selected: all-pass blocks contribute
    /// fully, mixed blocks at the probed hit rate (0.5 when unprobed).
    pub fn selectivity(&self) -> f64 {
        if self.blocks == 0 {
            return 1.0;
        }
        let mixed_rate = if self.probed_rows > 0 {
            self.probed_hits as f64 / self.probed_rows as f64
        } else {
            0.5
        };
        let frac = (self.all_pass as f64 + mixed_rate * self.mixed as f64) / self.blocks as f64;
        frac.clamp(0.0, 1.0)
    }
}

/// How a block classifies against the zone maps.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tri {
    AllPass,
    AllFail,
    Mixed,
}

/// Classify one 64-row block using only zone maps and null words — the
/// decision mirrors the short-circuit tests in `eval_node`, conservatively
/// answering `Mixed` wherever that function would decode. Null rows are
/// ignored (they affect which rows pass, not whether a decode happens),
/// so `AllPass` means "every *present* row passes".
fn classify_node(node: &BNode<'_>, block: usize) -> Tri {
    match node {
        BNode::Always(true) => Tri::AllPass,
        BNode::Always(false) => Tri::AllFail,
        BNode::Present { .. } => Tri::AllPass,
        BNode::IsMissing { nulls } => match nulls.map_or(0, |nb| nb.word(block)) {
            0 => Tri::AllFail,
            _ => Tri::Mixed,
        },
        BNode::RangeF64 { zones, lo, hi, .. } => {
            let (zmin, zmax) = zones.block(block);
            if zmax < *lo || zmin >= *hi {
                Tri::AllFail
            } else if zmin >= *lo && zmax < *hi {
                Tri::AllPass
            } else {
                Tri::Mixed
            }
        }
        BNode::EqualsF64 { zones, value, .. } => {
            let (zmin, zmax) = zones.block(block);
            if *value < zmin || *value > zmax {
                Tri::AllFail
            } else if zmin == zmax && zmin == *value {
                Tri::AllPass
            } else {
                Tri::Mixed
            }
        }
        BNode::RangeI64 { zones, lo, hi, .. } => {
            let (zmin, zmax) = zones.block(block);
            if zmax < *lo || zmin > *hi {
                Tri::AllFail
            } else if zmin >= *lo && zmax <= *hi {
                Tri::AllPass
            } else {
                Tri::Mixed
            }
        }
        BNode::EqualsCode { zones, code, .. } => {
            let (zmin, zmax) = zones.block(block);
            if *code < zmin || *code > zmax {
                Tri::AllFail
            } else if zmin == zmax {
                Tri::AllPass
            } else {
                Tri::Mixed
            }
        }
        BNode::MatchCodes { zones, bits, .. } => {
            let (zmin, zmax) = zones.block(block);
            if zmax - zmin >= 256 {
                return Tri::Mixed;
            }
            let mut any = false;
            let mut all = true;
            for c in zmin..=zmax {
                let hit = bits[c as usize / 64] >> (c % 64) & 1 == 1;
                any |= hit;
                all &= hit;
            }
            if !any {
                Tri::AllFail
            } else if all {
                Tri::AllPass
            } else {
                Tri::Mixed
            }
        }
        BNode::MatchDisplay { .. } => Tri::Mixed,
        BNode::And(a, b) => match (classify_node(a, block), classify_node(b, block)) {
            (Tri::AllFail, _) | (_, Tri::AllFail) => Tri::AllFail,
            (Tri::AllPass, Tri::AllPass) => Tri::AllPass,
            _ => Tri::Mixed,
        },
        BNode::Or(a, b) => match (classify_node(a, block), classify_node(b, block)) {
            (Tri::AllPass, _) | (_, Tri::AllPass) => Tri::AllPass,
            (Tri::AllFail, Tri::AllFail) => Tri::AllFail,
            _ => Tri::Mixed,
        },
        BNode::Not(a) => match classify_node(a, block) {
            Tri::AllPass => Tri::AllFail,
            Tri::AllFail => Tri::AllPass,
            Tri::Mixed => Tri::Mixed,
        },
    }
}

/// Estimate the selectivity of `predicate` over `table` from zone maps:
/// classify every 64-row block as all-pass / all-fail / mixed without
/// decoding anything, then evaluate the predicate for real on up to
/// `probe_blocks` evenly-spaced mixed blocks to estimate the pass rate
/// inside mixed blocks. Deterministic — the probe set is a pure function
/// of the block classification — and cheap: classification touches only
/// zone-map entries and null-mask words.
pub fn estimate_selectivity(
    table: &Table,
    predicate: &Predicate,
    probe_blocks: usize,
) -> Result<SelectivityEstimate> {
    let n = table.num_rows();
    let blocks = n.div_ceil(64);
    let mut bp = predicate.compile_blockwise(table)?;
    let mut est = SelectivityEstimate {
        rows: n as u64,
        blocks: blocks as u64,
        ..Default::default()
    };
    let mut mixed_blocks: Vec<usize> = Vec::new();
    for b in 0..blocks {
        match classify_node(&bp.node, b) {
            Tri::AllPass => est.all_pass += 1,
            Tri::AllFail => est.all_fail += 1,
            Tri::Mixed => {
                est.mixed += 1;
                mixed_blocks.push(b);
            }
        }
    }
    if !mixed_blocks.is_empty() && probe_blocks > 0 {
        // Evenly-spaced ascending probe blocks: ascending order keeps the
        // forward-only decode cursors valid.
        let stride = mixed_blocks.len().div_ceil(probe_blocks).max(1);
        for &b in mixed_blocks.iter().step_by(stride) {
            let base = b * 64;
            let len = (n - base).min(64);
            let sel = crate::bitmap::span_mask(0, len);
            let hits = bp.eval_frame(base, len, sel);
            est.probed_rows += len as u64;
            est.probed_hits += u64::from(hits.count_ones());
        }
    }
    Ok(est)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, DictColumn, F64Column, I64Column};
    use crate::nullmask::NullMask;
    use crate::schema::ColumnKind;

    fn table() -> Table {
        Table::builder()
            .column(
                "Server",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([
                    Some("Gandalf"),
                    Some("gandalf-2"),
                    Some("Frodo"),
                    None,
                ])),
            )
            .column(
                "Delay",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(5.0),
                    Some(15.0),
                    Some(-3.0),
                    None,
                ])),
            )
            .column(
                "Count",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(5), Some(15), None, Some(-3)])),
            )
            .build()
            .unwrap()
    }

    fn rows_matching(t: &Table, p: &Predicate) -> Vec<usize> {
        let mut c = p.compile(t).unwrap();
        let rowwise: Vec<usize> = (0..t.num_rows()).filter(|&r| c.eval(t, r)).collect();
        // Every rowwise answer is also checked against the block pipeline.
        let m = filter_members(t, p, &MembershipSet::full(t.num_rows())).unwrap();
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            rowwise,
            "block and rowwise disagree for {p:?}"
        );
        rowwise
    }

    #[test]
    fn range_excludes_missing_and_respects_bounds() {
        let t = table();
        let p = Predicate::range("Delay", 0.0, 15.0);
        assert_eq!(rows_matching(&t, &p), vec![0]);
        let p = Predicate::range("Delay", -10.0, 100.0);
        assert_eq!(rows_matching(&t, &p), vec![0, 1, 2]);
        // Integer column through the same f64 bounds.
        let p = Predicate::range("Count", 0.0, 15.0);
        assert_eq!(rows_matching(&t, &p), vec![0]);
        // NaN bounds match nothing.
        let p = Predicate::range("Delay", f64::NAN, 100.0);
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
        let p = Predicate::range("Count", 0.0, f64::NAN);
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
    }

    #[test]
    fn equals_matches_values_and_missing() {
        let t = table();
        let p = Predicate::equals("Server", "Frodo");
        assert_eq!(rows_matching(&t, &p), vec![2]);
        let p = Predicate::equals("Server", Value::Missing);
        assert_eq!(rows_matching(&t, &p), vec![3]);
    }

    #[test]
    fn equals_double_matches_integer_column() {
        // Regression: strict Value equality used to make Equals(Double(5.0))
        // never match an I64 cell displaying 5; numeric comparison now
        // normalizes through as_f64.
        let t = table();
        let p = Predicate::equals("Count", 5.0);
        assert_eq!(rows_matching(&t, &p), vec![0]);
        // And the converse: an Int constant against a Double column.
        let p = Predicate::equals("Delay", 15i64);
        assert_eq!(rows_matching(&t, &p), vec![1]);
        // Date constants compare numerically too.
        let p = Predicate::Equals {
            column: Arc::from("Count"),
            value: Value::Date(15),
        };
        assert_eq!(rows_matching(&t, &p), vec![1]);
    }

    #[test]
    fn equals_int_is_exact_beyond_2_pow_53() {
        // Regression (review finding): an integer constant against an
        // integer column must compare in the i64 domain — adjacent ids
        // beyond 2^53 round to the same f64 and must not merge.
        let big = 1i64 << 53;
        let t = Table::builder()
            .column(
                "Id",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(big), Some(big + 1), None])),
            )
            .build()
            .unwrap();
        let p = Predicate::equals("Id", Value::Int(big + 1));
        assert_eq!(rows_matching(&t, &p), vec![1]);
        let p = Predicate::equals("Id", Value::Int(big));
        assert_eq!(rows_matching(&t, &p), vec![0]);
        // A Double constant opts into f64 semantics: both cells round to
        // the same double, so both match (documented).
        let p = Predicate::equals("Id", big as f64);
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
    }

    #[test]
    fn equals_nan_matches_nothing() {
        // Regression: Double(NaN) used to compare Equal to present doubles
        // through the Ord-based PartialEq. The rule is now: NaN equals
        // nothing (Value::from(f64::NAN) is Missing, which matches the
        // missing rows instead — a different, documented constructor).
        let t = table();
        let p = Predicate::Equals {
            column: Arc::from("Delay"),
            value: Value::Double(f64::NAN),
        };
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
        let p = Predicate::Equals {
            column: Arc::from("Count"),
            value: Value::Double(f64::NAN),
        };
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
        // The From<f64> constructor normalizes NaN to Missing.
        let p = Predicate::equals("Delay", f64::NAN);
        assert_eq!(rows_matching(&t, &p), vec![3]);
    }

    #[test]
    fn equals_type_mismatches_never_match() {
        let t = table();
        // String constant against a numeric column.
        let p = Predicate::equals("Count", "5");
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
        // Numeric constant against a string column.
        let p = Predicate::equals("Server", 5.0);
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
        // String absent from the dictionary.
        let p = Predicate::equals("Server", "Sauron");
        assert_eq!(rows_matching(&t, &p), Vec::<usize>::new());
    }

    #[test]
    fn substring_and_exact_search() {
        let t = table();
        let p = Predicate::str_match("Server", "andal", StrMatchKind::Substring, false);
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
        let p = Predicate::str_match("Server", "Gandalf", StrMatchKind::Exact, false);
        assert_eq!(rows_matching(&t, &p), vec![0]);
    }

    #[test]
    fn case_insensitive_search() {
        let t = table();
        let p = Predicate::str_match("Server", "GANDALF", StrMatchKind::Substring, true);
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
        let p = Predicate::str_match("Server", "GANDALF", StrMatchKind::Exact, true);
        assert_eq!(rows_matching(&t, &p), vec![0]);
        // Empty queries match every present cell.
        let p = Predicate::str_match("Server", "", StrMatchKind::Substring, true);
        assert_eq!(rows_matching(&t, &p), vec![0, 1, 2]);
    }

    #[test]
    fn regex_search() {
        let t = table();
        let p = Predicate::str_match("Server", "^[Gg]andalf", StrMatchKind::Regex, false);
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
    }

    #[test]
    fn text_search_on_numeric_column_uses_display() {
        let t = table();
        let p = Predicate::str_match("Delay", "15", StrMatchKind::Substring, false);
        assert_eq!(rows_matching(&t, &p), vec![1]);
        // Integer columns too (scratch-buffer formatting path).
        let p = Predicate::str_match("Count", "-3", StrMatchKind::Substring, false);
        assert_eq!(rows_matching(&t, &p), vec![3]);
        let p = Predicate::str_match("Count", "5", StrMatchKind::Exact, false);
        assert_eq!(rows_matching(&t, &p), vec![0]);
    }

    #[test]
    fn not_over_missing_includes_missing_rows() {
        // Documented complement rule: Not(p) matches exactly the rows p
        // rejects, *including* rows missing in p's column.
        let t = table();
        let p = Predicate::range("Delay", 0.0, 100.0).not();
        assert_eq!(rows_matching(&t, &p), vec![2, 3], "row 3 is missing");
        // Conjoining not-missing excludes them, per the documented recipe.
        let p = Predicate::range("Delay", 0.0, 100.0).not().and(
            Predicate::IsMissing {
                column: Arc::from("Delay"),
            }
            .not(),
        );
        assert_eq!(rows_matching(&t, &p), vec![2]);
        // Same rule through Equals and StrMatch.
        let p = Predicate::equals("Server", "Frodo").not();
        assert_eq!(rows_matching(&t, &p), vec![0, 1, 3]);
        let p = Predicate::str_match("Server", "andal", StrMatchKind::Substring, false).not();
        assert_eq!(rows_matching(&t, &p), vec![2, 3]);
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::range("Delay", 0.0, 100.0).and(Predicate::str_match(
            "Server",
            "gandalf",
            StrMatchKind::Substring,
            true,
        ));
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
        let p = Predicate::equals("Server", "Frodo").or(Predicate::equals("Server", "Gandalf"));
        assert_eq!(rows_matching(&t, &p), vec![0, 2]);
        let p = Predicate::IsMissing {
            column: Arc::from("Delay"),
        }
        .not();
        assert_eq!(rows_matching(&t, &p), vec![0, 1, 2]);
    }

    #[test]
    fn unknown_column_fails_compile() {
        let t = table();
        assert!(Predicate::range("Nope", 0.0, 1.0).compile(&t).is_err());
        assert!(Predicate::range("Nope", 0.0, 1.0)
            .compile_blockwise(&t)
            .is_err());
        assert!(filter_members(
            &t,
            &Predicate::range("Nope", 0.0, 1.0),
            &MembershipSet::full(4)
        )
        .is_err());
    }

    #[test]
    fn true_predicate_matches_everything() {
        let t = table();
        assert_eq!(rows_matching(&t, &Predicate::True).len(), 4);
    }

    #[test]
    fn int_bounds_are_exact_at_the_extremes() {
        // int_lower_bound/int_upper_bound_excl must agree with the f64
        // comparison for every i64, including magnitudes beyond 2^53 where
        // the conversion rounds.
        for lo in [
            f64::NEG_INFINITY,
            i64::MIN as f64,
            -9.007199254740993e15,
            -0.5,
            0.0,
            0.5,
            9.007199254740993e15,
            9.223372036854776e18, // 2^63
            f64::INFINITY,
        ] {
            let b = int_lower_bound(lo);
            for probe in [
                i64::MIN,
                i64::MIN + 1,
                -(1 << 55),
                -1,
                0,
                1,
                1 << 55,
                (1 << 55) + 1,
                i64::MAX - 1,
                i64::MAX,
            ] {
                let direct = (probe as f64) >= lo;
                let via_bound = b.is_some_and(|x| probe >= x);
                assert_eq!(direct, via_bound, "lo={lo} probe={probe} bound={b:?}");
            }
        }
        assert_eq!(int_lower_bound(f64::NAN), None);
        assert_eq!(int_upper_bound_excl(f64::NAN), None);
        assert_eq!(int_upper_bound_excl(f64::INFINITY), Some(i64::MAX));
        assert_eq!(int_upper_bound_excl(i64::MIN as f64), None);
    }

    #[test]
    fn filter_members_respects_parent_membership() {
        let t = table();
        let parent = MembershipSet::from_rows(vec![1, 2, 3], 4);
        let p = Predicate::range("Delay", -10.0, 100.0);
        let m = filter_members(&t, &p, &parent).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 2]);
        let r = filter_members_rowwise(&t, &p, &parent).unwrap();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn zone_maps_skip_blocks_on_sorted_data() {
        // A sorted 1k-row integer column: a selective range touches only
        // the boundary blocks, and the result matches the rowwise path.
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options((0..1000).map(Some))),
            )
            .build()
            .unwrap();
        for (lo, hi) in [(250.0, 260.0), (0.0, 1.0), (999.0, 2000.0), (-5.0, 0.0)] {
            let p = Predicate::range("X", lo, hi);
            let parent = MembershipSet::full(1000);
            let a = filter_members(&t, &p, &parent).unwrap();
            let b = filter_members_rowwise(&t, &p, &parent).unwrap();
            assert_eq!(
                a.iter().collect::<Vec<_>>(),
                b.iter().collect::<Vec<_>>(),
                "{lo}..{hi}"
            );
        }
    }

    #[test]
    fn dict_zone_maps_skip_blocks_on_sorted_categories() {
        // 640 rows of sorted categories: every per-block code interval is
        // narrow, so Equals and text matches block-skip; results must stay
        // identical to the rowwise reference (and missing rows excluded).
        let cats = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let vals: Vec<Option<&str>> = (0..640)
            .map(|i| {
                if i % 97 == 0 {
                    None
                } else {
                    Some(cats[i / 128])
                }
            })
            .collect();
        let t = Table::builder()
            .column(
                "Cat",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(vals)),
            )
            .build()
            .unwrap();
        for p in [
            Predicate::equals("Cat", "gamma"),
            Predicate::equals("Cat", "alpha"),
            Predicate::str_match("Cat", "a", StrMatchKind::Substring, false),
            Predicate::str_match("Cat", "delta", StrMatchKind::Exact, false),
            Predicate::equals("Cat", "gamma").not(),
        ] {
            rows_matching(&t, &p); // asserts block ≡ rowwise internally
        }
    }

    fn fused_rows(t: &Table, p: &Predicate, parent: &MembershipSet) -> Vec<usize> {
        use crate::scan::ScanChunk;
        use core::cell::RefCell;
        let base = Selection::Members(parent);
        let filter = RefCell::new(FrameFilter::compile(p, t).unwrap());
        let sel = Selection::Filtered {
            base: &base,
            filter: &filter,
        };
        let mut rows = Vec::new();
        for chunk in sel.chunks() {
            match chunk {
                ScanChunk::Mask { base, word } => {
                    assert_ne!(word, 0, "filtered selections drop zero words");
                    let mut w = word;
                    while w != 0 {
                        let k = w.trailing_zeros() as usize;
                        w &= w - 1;
                        rows.push(base + k);
                    }
                }
                other => panic!("filtered selections yield only mask chunks, got {other:?}"),
            }
        }
        assert_eq!(
            filter.borrow().matched() as usize,
            rows.len(),
            "matched() must equal the yielded row count"
        );
        rows
    }

    #[test]
    fn fused_selection_matches_filter_members() {
        // One fused pass must yield exactly the rows the two-pass pipeline
        // (filter_members then re-scan) yields, for every parent
        // representation (full / dense / sparse).
        let n = 517;
        let vals: Vec<Option<i64>> = (0..n as i64).map(|i| Some(i * 7919 % 100)).collect();
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(vals)),
            )
            .build()
            .unwrap();
        let full = MembershipSet::full(n);
        let dense = {
            let mut b = Bitmap::new(n);
            for r in (0..n).filter(|r| r % 3 != 1) {
                b.set(r);
            }
            MembershipSet::Dense(b)
        };
        let sparse = MembershipSet::from_rows((0..n as u32).step_by(17).collect(), n);
        for p in [
            Predicate::range("X", 10.0, 35.0),
            Predicate::equals("X", 42i64),
            Predicate::range("X", 10.0, 35.0).not(),
        ] {
            for parent in [&full, &dense, &sparse] {
                let two_pass = filter_members(&t, &p, parent).unwrap();
                assert_eq!(
                    fused_rows(&t, &p, parent),
                    two_pass.iter().collect::<Vec<_>>(),
                    "fused vs two-pass for {p:?}"
                );
            }
        }
    }

    #[test]
    fn not_over_udf_derived_missing_agrees_on_every_path() {
        // A block-compiled ratio column derives Missing three ways: null
        // inputs, zero denominators, and inf/inf lanes whose raw data slot
        // keeps the computed NaN (F64Column only marks it null). `Not` is
        // the exact complement rule, so all of those rows must be selected
        // by `Not(Range)` — and the rowwise, blockwise, and fused filter
        // paths must agree lane for lane despite the NaN placeholders.
        use crate::udf::UdfRegistry;
        let n = 200usize;
        let num = (0..n).map(|i| match i {
            17 | 81 => Some(f64::INFINITY),
            i if i % 13 == 4 => None,
            i => Some(i as f64),
        });
        let den = (0..n).map(|i| match i {
            17 | 81 => Some(f64::INFINITY), // inf/inf -> NaN lane, null row
            i if i % 7 == 2 => Some(0.0),   // division by zero -> Missing
            i if i % 11 == 6 => None,       // missing denominator
            i => Some((i % 9) as f64 - 4.0),
        });
        let t = Table::builder()
            .column(
                "A",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(num)),
            )
            .column(
                "B",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(den)),
            )
            .build()
            .unwrap();
        let mut reg = UdfRegistry::new();
        reg.register_ratio("R", "A", "B");
        let col = reg.materialize("R", &t).unwrap();
        let missing: Vec<usize> = (0..n).filter(|&r| col.value(r) == Value::Missing).collect();
        assert!(missing.contains(&17), "inf/inf must derive Missing");
        let t = t.with_column("R", col).unwrap();

        let parent = MembershipSet::full(n);
        let inside = Predicate::range("R", -2.0, 3.0);
        let complement = inside.clone().not();
        let missing_only = Predicate::IsMissing {
            column: Arc::from("R"),
        };
        for p in [&inside, &complement, &missing_only] {
            let block = filter_members(&t, p, &parent).unwrap();
            let row = filter_members_rowwise(&t, p, &parent).unwrap();
            assert_eq!(
                block.iter().collect::<Vec<_>>(),
                row.iter().collect::<Vec<_>>(),
                "block vs rowwise for {p:?}"
            );
            assert_eq!(
                fused_rows(&t, p, &parent),
                row.iter().collect::<Vec<_>>(),
                "fused vs rowwise for {p:?}"
            );
        }
        let matched_in = filter_members(&t, &inside, &parent).unwrap();
        let matched_not = filter_members(&t, &complement, &parent).unwrap();
        for &r in &missing {
            assert!(
                !matched_in.contains(r),
                "missing row {r} must never satisfy Range"
            );
            assert!(
                matched_not.contains(r),
                "Not(Range) is the exact complement: must select missing row {r}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "single-pass")]
    fn fused_selection_rejects_second_pass() {
        let t = table();
        let parent = MembershipSet::full(4);
        let base = Selection::Members(&parent);
        let filter = core::cell::RefCell::new(
            FrameFilter::compile(&Predicate::range("Delay", 0.0, 100.0), &t).unwrap(),
        );
        let sel = Selection::Filtered {
            base: &base,
            filter: &filter,
        };
        for _ in sel.chunks() {}
        let _ = sel.chunks(); // must panic: decode cursors cannot rewind
    }

    #[test]
    #[should_panic(expected = "single-pass")]
    fn fused_selection_rejects_count() {
        let t = table();
        let parent = MembershipSet::full(4);
        let base = Selection::Members(&parent);
        let filter = core::cell::RefCell::new(
            FrameFilter::compile(&Predicate::range("Delay", 0.0, 100.0), &t).unwrap(),
        );
        let sel = Selection::Filtered {
            base: &base,
            filter: &filter,
        };
        let _ = sel.count();
    }

    // --- canonicalization + identity hashing ---

    fn hash_of(p: &Predicate, t: Option<&Table>) -> u64 {
        p.identity_hash(t)
    }

    #[test]
    fn canonical_hash_ignores_operand_order_and_double_negation() {
        let t = table();
        let a = Predicate::range("Delay", 0.0, 10.0);
        let b = Predicate::equals("Server", "Frodo");
        let c = Predicate::str_match("Server", "gan", StrMatchKind::Substring, true);
        let left = a.clone().and(b.clone()).and(c.clone());
        let right = c.clone().and(a.clone()).and(b.clone());
        assert_eq!(hash_of(&left, Some(&t)), hash_of(&right, Some(&t)));
        let double_neg = a.clone().not().not();
        assert_eq!(hash_of(&double_neg, Some(&t)), hash_of(&a, Some(&t)));
        // De Morgan: !(a | b) ≡ !a & !b.
        let dm1 = a.clone().or(b.clone()).not();
        let dm2 = a.clone().not().and(b.clone().not());
        assert_eq!(hash_of(&dm1, Some(&t)), hash_of(&dm2, Some(&t)));
        // Idempotence: a & a ≡ a.
        assert_eq!(
            hash_of(&a.clone().and(a.clone()), Some(&t)),
            hash_of(&a, Some(&t))
        );
    }

    #[test]
    fn canonical_hash_distinguishes_semantically_distinct_predicates() {
        let t = table();
        let shapes = [
            Predicate::range("Delay", 0.0, 10.0),
            Predicate::range("Delay", 0.0, 11.0),
            Predicate::range("Count", 0.0, 10.0),
            Predicate::equals("Server", "Frodo"),
            Predicate::equals("Server", "Gandalf"),
            Predicate::IsMissing {
                column: Arc::from("Delay"),
            },
            Predicate::range("Delay", 0.0, 10.0).not(),
            Predicate::range("Delay", 0.0, 10.0).and(Predicate::equals("Server", "Frodo")),
            Predicate::range("Delay", 0.0, 10.0).or(Predicate::equals("Server", "Frodo")),
            Predicate::True,
        ];
        let hashes: Vec<u64> = shapes.iter().map(|p| hash_of(p, Some(&t))).collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(
                    hashes[i], hashes[j],
                    "distinct predicates collide: {:?} vs {:?}",
                    shapes[i], shapes[j]
                );
            }
        }
    }

    #[test]
    fn canonical_hash_snaps_int_bounds_like_the_compiler() {
        let t = table();
        // On the Int column, fractional bounds snap to the integer domain:
        // 10 <= x < 20 whichever way it's spelled.
        let frac = Predicate::range("Count", 9.2, 19.7);
        let snapped = Predicate::range("Count", 10.0, 20.0);
        assert_eq!(hash_of(&frac, Some(&t)), hash_of(&snapped, Some(&t)));
        // ... but NOT on the Double column, where 9.2 and 10.0 differ.
        let frac_d = Predicate::range("Delay", 9.2, 19.7);
        let snapped_d = Predicate::range("Delay", 10.0, 20.0);
        assert_ne!(hash_of(&frac_d, Some(&t)), hash_of(&snapped_d, Some(&t)));
        // Integer equality is the one-value range.
        let eq = Predicate::equals("Count", 5i64);
        let range = Predicate::range("Count", 5.0, 6.0);
        assert_eq!(hash_of(&eq, Some(&t)), hash_of(&range, Some(&t)));
        // Equals(Missing) and IsMissing match exactly the same rows.
        assert_eq!(
            hash_of(&Predicate::equals("Count", Value::Missing), Some(&t)),
            hash_of(
                &Predicate::IsMissing {
                    column: Arc::from("Count"),
                },
                Some(&t)
            )
        );
        // Degenerate leaves collapse: NaN bound ≡ empty range ≡ !True.
        let nan = Predicate::range("Delay", f64::NAN, 1.0);
        let empty = Predicate::range("Delay", 5.0, 5.0);
        let untrue = Predicate::True.not();
        assert_eq!(hash_of(&nan, Some(&t)), hash_of(&empty, Some(&t)));
        assert_eq!(hash_of(&nan, Some(&t)), hash_of(&untrue, Some(&t)));
        // -0.0 and 0.0 bound the same half-open interval.
        assert_eq!(
            hash_of(&Predicate::range("Delay", -0.0, 1.0), Some(&t)),
            hash_of(&Predicate::range("Delay", 0.0, 1.0), Some(&t))
        );
    }

    #[test]
    fn canonical_equal_predicates_select_identical_rows() {
        // Hash-equal pairs from the tests above must agree row-for-row.
        let t = table();
        let pairs = [
            (
                Predicate::range("Count", 9.2, 19.7),
                Predicate::range("Count", 10.0, 20.0),
            ),
            (
                Predicate::equals("Count", 5i64),
                Predicate::range("Count", 5.0, 6.0),
            ),
            (
                Predicate::equals("Count", Value::Missing),
                Predicate::IsMissing {
                    column: Arc::from("Count"),
                },
            ),
            (
                Predicate::range("Delay", 0.0, 10.0)
                    .or(Predicate::equals("Server", "Frodo"))
                    .not(),
                Predicate::range("Delay", 0.0, 10.0)
                    .not()
                    .and(Predicate::equals("Server", "Frodo").not()),
            ),
        ];
        for (p, q) in &pairs {
            assert_eq!(hash_of(p, Some(&t)), hash_of(q, Some(&t)));
            assert_eq!(
                rows_matching(&t, p),
                rows_matching(&t, q),
                "hash-equal predicates disagree: {p:?} vs {q:?}"
            );
        }
    }

    // --- zone-map selectivity estimation ---

    fn sorted_int_table(n: usize) -> Table {
        Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::new((0..n as i64).collect(), NullMask::none())),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn estimator_classifies_sorted_range_blocks() {
        let t = sorted_int_table(64 * 10);
        // Covers blocks 2..6 fully, straddles nothing (block-aligned).
        let p = Predicate::range("X", 128.0, 384.0);
        let est = estimate_selectivity(&t, &p, 4).unwrap();
        assert_eq!(est.blocks, 10);
        assert_eq!(est.all_pass, 4);
        assert_eq!(est.all_fail, 6);
        assert_eq!(est.mixed, 0);
        assert!((est.selectivity() - 0.4).abs() < 1e-9);
        assert!((est.skip_fraction() - 0.6).abs() < 1e-9);
        // Unaligned bounds leave exactly the straddling blocks mixed, and
        // the probe resolves the true rates inside them.
        let p = Predicate::range("X", 100.0, 400.0);
        let est = estimate_selectivity(&t, &p, 4).unwrap();
        assert_eq!(est.mixed, 2);
        assert_eq!(est.probed_rows, 128);
        assert_eq!(est.probed_hits, (128 - 100) + (400 - 384));
        let exact = 300.0 / 640.0;
        assert!((est.selectivity() - exact).abs() < 0.05);
    }

    #[test]
    fn estimator_merge_sums_partitions() {
        let t1 = sorted_int_table(64 * 4);
        let t2 = sorted_int_table(64 * 4);
        let p = Predicate::range("X", 0.0, 128.0);
        let e1 = estimate_selectivity(&t1, &p, 2).unwrap();
        let e2 = estimate_selectivity(&t2, &p, 2).unwrap();
        let m = e1.merge(&e2);
        assert_eq!(m.blocks, 8);
        assert_eq!(m.all_pass, 4);
        assert_eq!(m.rows, 512);
        assert!((m.selectivity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn estimator_handles_degenerate_and_tail_blocks() {
        // 70 rows: the tail block has 6 rows; True passes everything.
        let t = sorted_int_table(70);
        let est = estimate_selectivity(&t, &Predicate::True, 2).unwrap();
        assert_eq!(est.blocks, 2);
        assert_eq!(est.all_pass, 2);
        assert!((est.selectivity() - 1.0).abs() < 1e-9);
        // A statically-false predicate fails every block without probing.
        let est = estimate_selectivity(&t, &Predicate::range("X", 5.0, 5.0), 2).unwrap();
        assert_eq!(est.all_fail, 2);
        assert_eq!(est.probed_rows, 0);
        assert!((est.selectivity()).abs() < 1e-9);
        // Empty table.
        let t = sorted_int_table(0);
        let est = estimate_selectivity(&t, &Predicate::True, 2).unwrap();
        assert_eq!(est.blocks, 0);
    }
}
