//! Row-selection predicates.
//!
//! Hillview derives new tables by filtering (paper §5.6 "Selection") — e.g.
//! zooming into a chart region selects rows inside the zoom window, and the
//! find-text vizketch filters rows by a search criterion (§3.3). Predicates
//! evaluate against one row of a [`Table`] and are compiled once per scan.

use crate::error::Result;
use crate::regexlite::Regex;
use crate::table::Table;
use crate::value::Value;
use std::sync::Arc;

/// How a text search matches a cell (paper §3.3: "exact match, substring,
/// regular expressions, case sensitivity").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrMatchKind {
    /// Whole-cell equality.
    Exact,
    /// Cell contains the query as a substring.
    Substring,
    /// Cell matches a lite-regex pattern.
    Regex,
}

/// A row predicate over named columns.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true.
    True,
    /// Numeric range test `lo <= x < hi` on a numeric column; missing rows
    /// fail. This is the predicate a chart zoom generates.
    Range {
        /// Column name.
        column: Arc<str>,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Equality with a constant value (missing == missing is true).
    Equals {
        /// Column name.
        column: Arc<str>,
        /// Value compared against.
        value: Value,
    },
    /// Text search on a string-like column.
    StrMatch {
        /// Column name.
        column: Arc<str>,
        /// The query text or pattern.
        query: Arc<str>,
        /// Match mode.
        kind: StrMatchKind,
        /// Fold ASCII case before comparing.
        case_insensitive: bool,
    },
    /// The row is missing in this column.
    IsMissing {
        /// Column name.
        column: Arc<str>,
    },
    /// Logical AND.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical OR.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical NOT.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Range predicate helper.
    pub fn range(column: &str, lo: f64, hi: f64) -> Self {
        Predicate::Range {
            column: Arc::from(column),
            lo,
            hi,
        }
    }

    /// Equality predicate helper.
    pub fn equals(column: &str, value: impl Into<Value>) -> Self {
        Predicate::Equals {
            column: Arc::from(column),
            value: value.into(),
        }
    }

    /// Text-search predicate helper.
    pub fn str_match(
        column: &str,
        query: &str,
        kind: StrMatchKind,
        case_insensitive: bool,
    ) -> Self {
        Predicate::StrMatch {
            column: Arc::from(column),
            query: Arc::from(query),
            kind,
            case_insensitive,
        }
    }

    /// AND combinator.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// OR combinator.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// NOT combinator.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Compile against a table, resolving column names to indexes and
    /// pre-compiling regexes, so per-row evaluation is cheap.
    pub fn compile(&self, table: &Table) -> Result<CompiledPredicate> {
        Ok(match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::Range { column, lo, hi } => CompiledPredicate::Range {
                col: table.schema().index_of(column)?,
                lo: *lo,
                hi: *hi,
            },
            Predicate::Equals { column, value } => CompiledPredicate::Equals {
                col: table.schema().index_of(column)?,
                value: value.clone(),
            },
            Predicate::StrMatch {
                column,
                query,
                kind,
                case_insensitive,
            } => {
                let col = table.schema().index_of(column)?;
                match kind {
                    StrMatchKind::Regex => CompiledPredicate::Regex {
                        col,
                        regex: Regex::compile(query, *case_insensitive)?,
                    },
                    _ => CompiledPredicate::Text {
                        col,
                        query: if *case_insensitive {
                            query.to_ascii_lowercase()
                        } else {
                            query.to_string()
                        },
                        exact: *kind == StrMatchKind::Exact,
                        case_insensitive: *case_insensitive,
                    },
                }
            }
            Predicate::IsMissing { column } => CompiledPredicate::IsMissing {
                col: table.schema().index_of(column)?,
            },
            Predicate::And(a, b) => {
                CompiledPredicate::And(Box::new(a.compile(table)?), Box::new(b.compile(table)?))
            }
            Predicate::Or(a, b) => {
                CompiledPredicate::Or(Box::new(a.compile(table)?), Box::new(b.compile(table)?))
            }
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(table)?)),
        })
    }
}

/// A predicate bound to a specific table's column indexes.
#[derive(Debug)]
pub enum CompiledPredicate {
    /// Always true.
    True,
    /// See [`Predicate::Range`].
    Range {
        /// Resolved column index.
        col: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// See [`Predicate::Equals`].
    Equals {
        /// Resolved column index.
        col: usize,
        /// Value compared against.
        value: Value,
    },
    /// Exact or substring text match.
    Text {
        /// Resolved column index.
        col: usize,
        /// Case-folded query.
        query: String,
        /// Whole-cell equality instead of substring.
        exact: bool,
        /// Fold haystack case too.
        case_insensitive: bool,
    },
    /// Regex text match.
    Regex {
        /// Resolved column index.
        col: usize,
        /// Pre-compiled pattern.
        regex: Regex,
    },
    /// See [`Predicate::IsMissing`].
    IsMissing {
        /// Resolved column index.
        col: usize,
    },
    /// Logical AND.
    And(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Logical OR.
    Or(Box<CompiledPredicate>, Box<CompiledPredicate>),
    /// Logical NOT.
    Not(Box<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Evaluate against row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::Range { col, lo, hi } => match table.column(*col).as_f64(row) {
                Some(v) => v >= *lo && v < *hi,
                None => false,
            },
            CompiledPredicate::Equals { col, value } => table.column(*col).value(row) == *value,
            CompiledPredicate::Text {
                col,
                query,
                exact,
                case_insensitive,
            } => {
                let c = table.column(*col);
                if c.is_null(row) {
                    return false;
                }
                match c.as_dict_col() {
                    Some(d) => {
                        let s = d.get(row).expect("checked non-null");
                        text_match(s, query, *exact, *case_insensitive)
                    }
                    // Non-string columns are matched against their display
                    // text, like searching a spreadsheet.
                    None => {
                        let s = c.value(row).to_string();
                        text_match(&s, query, *exact, *case_insensitive)
                    }
                }
            }
            CompiledPredicate::Regex { col, regex } => {
                let c = table.column(*col);
                if c.is_null(row) {
                    return false;
                }
                match c.as_dict_col() {
                    Some(d) => regex.is_match(d.get(row).expect("checked non-null")),
                    None => regex.is_match(&c.value(row).to_string()),
                }
            }
            CompiledPredicate::IsMissing { col } => table.column(*col).is_null(row),
            CompiledPredicate::And(a, b) => a.eval(table, row) && b.eval(table, row),
            CompiledPredicate::Or(a, b) => a.eval(table, row) || b.eval(table, row),
            CompiledPredicate::Not(p) => !p.eval(table, row),
        }
    }
}

fn text_match(hay: &str, query: &str, exact: bool, case_insensitive: bool) -> bool {
    if case_insensitive {
        let hay = hay.to_ascii_lowercase();
        if exact {
            hay == query
        } else {
            hay.contains(query)
        }
    } else if exact {
        hay == query
    } else {
        hay.contains(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, DictColumn, F64Column};
    use crate::schema::ColumnKind;

    fn table() -> Table {
        Table::builder()
            .column(
                "Server",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([
                    Some("Gandalf"),
                    Some("gandalf-2"),
                    Some("Frodo"),
                    None,
                ])),
            )
            .column(
                "Delay",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(5.0),
                    Some(15.0),
                    Some(-3.0),
                    None,
                ])),
            )
            .build()
            .unwrap()
    }

    fn rows_matching(t: &Table, p: &Predicate) -> Vec<usize> {
        let c = p.compile(t).unwrap();
        (0..t.num_rows()).filter(|&r| c.eval(t, r)).collect()
    }

    #[test]
    fn range_excludes_missing_and_respects_bounds() {
        let t = table();
        let p = Predicate::range("Delay", 0.0, 15.0);
        assert_eq!(rows_matching(&t, &p), vec![0]);
        let p = Predicate::range("Delay", -10.0, 100.0);
        assert_eq!(rows_matching(&t, &p), vec![0, 1, 2]);
    }

    #[test]
    fn equals_matches_values_and_missing() {
        let t = table();
        let p = Predicate::equals("Server", "Frodo");
        assert_eq!(rows_matching(&t, &p), vec![2]);
        let p = Predicate::equals("Server", Value::Missing);
        assert_eq!(rows_matching(&t, &p), vec![3]);
    }

    #[test]
    fn substring_and_exact_search() {
        let t = table();
        let p = Predicate::str_match("Server", "andal", StrMatchKind::Substring, false);
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
        let p = Predicate::str_match("Server", "Gandalf", StrMatchKind::Exact, false);
        assert_eq!(rows_matching(&t, &p), vec![0]);
    }

    #[test]
    fn case_insensitive_search() {
        let t = table();
        let p = Predicate::str_match("Server", "GANDALF", StrMatchKind::Substring, true);
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
        let p = Predicate::str_match("Server", "GANDALF", StrMatchKind::Exact, true);
        assert_eq!(rows_matching(&t, &p), vec![0]);
    }

    #[test]
    fn regex_search() {
        let t = table();
        let p = Predicate::str_match(
            "Server",
            "^[Gg]andalf(-[0-9])?$",
            StrMatchKind::Regex,
            false,
        );
        // Note: our lite engine lacks groups; use an equivalent pattern.
        let p2 = Predicate::str_match("Server", "^[Gg]andalf", StrMatchKind::Regex, false);
        let _ = p;
        assert_eq!(rows_matching(&t, &p2), vec![0, 1]);
    }

    #[test]
    fn text_search_on_numeric_column_uses_display() {
        let t = table();
        let p = Predicate::str_match("Delay", "15", StrMatchKind::Substring, false);
        assert_eq!(rows_matching(&t, &p), vec![1]);
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::range("Delay", 0.0, 100.0).and(Predicate::str_match(
            "Server",
            "gandalf",
            StrMatchKind::Substring,
            true,
        ));
        assert_eq!(rows_matching(&t, &p), vec![0, 1]);
        let p = Predicate::equals("Server", "Frodo").or(Predicate::equals("Server", "Gandalf"));
        assert_eq!(rows_matching(&t, &p), vec![0, 2]);
        let p = Predicate::IsMissing {
            column: Arc::from("Delay"),
        }
        .not();
        assert_eq!(rows_matching(&t, &p), vec![0, 1, 2]);
    }

    #[test]
    fn unknown_column_fails_compile() {
        let t = table();
        assert!(Predicate::range("Nope", 0.0, 1.0).compile(&t).is_err());
    }

    #[test]
    fn true_predicate_matches_everything() {
        let t = table();
        assert_eq!(rows_matching(&t, &Predicate::True).len(), 4);
    }
}
