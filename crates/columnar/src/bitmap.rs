//! A packed bitmap over row indexes.
//!
//! Used both as the null mask of a column and as the dense representation of
//! a [`MembershipSet`](crate::membership::MembershipSet) (paper §5.6: "Dense
//! tables that contain most rows store a bitmap").

/// The bits `[lo, hi)` of a 64-bit word, set (`hi <= 64`). Shared with the
/// scan layer's word-granular null and bounds masking.
#[inline]
pub(crate) fn span_mask(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi <= 64);
    if hi - lo == 64 {
        u64::MAX
    } else {
        ((1u64 << (hi - lo)) - 1) << lo
    }
}

/// A fixed-length bitmap backed by 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Create a bitmap of `len` bits, all set.
    pub fn all_set(len: usize) -> Self {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    /// Build a bitmap of `len` bits directly from backing words (bit `i` at
    /// `words[i / 64] >> (i % 64)`), the word-granular surface the block
    /// filter pipeline emits into. `words` is resized to the exact word
    /// count and tail bits beyond `len` are cleared.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(64), 0);
        let mut b = Bitmap { words, len };
        b.clear_tail();
        b
    }

    /// Zero any bits beyond `len` in the last word so popcounts stay exact.
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits (rows) the bitmap covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Get bit `i`. Panics if out of range (callers own bounds).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Assign bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        if v {
            self.set(i)
        } else {
            self.clear(i)
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits with index in `lo..hi` (clamped to `len`).
    /// Word-level popcounts with masked edge words — O(words in range).
    pub fn count_range(&self, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.len);
        if lo >= hi {
            return 0;
        }
        let (w_lo, w_hi) = (lo / 64, (hi - 1) / 64);
        if w_lo == w_hi {
            let mask = span_mask(lo % 64, hi - w_lo * 64);
            return (self.words[w_lo] & mask).count_ones() as usize;
        }
        let mut count = (self.words[w_lo] & span_mask(lo % 64, 64)).count_ones() as usize;
        for w in &self.words[w_lo + 1..w_hi] {
            count += w.count_ones() as usize;
        }
        count += (self.words[w_hi] & span_mask(0, hi - w_hi * 64)).count_ones() as usize;
        count
    }

    /// Bitwise AND with another bitmap of identical length.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise OR with another bitmap of identical length.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise NOT (within `len`).
    pub fn not(&self) -> Bitmap {
        let mut b = Bitmap {
            words: self.words.iter().map(|w| !w).collect(),
            len: self.len,
        };
        b.clear_tail();
        b
    }

    /// The backing 64-bit words, little-endian within the vector: bit `i`
    /// lives at `words()[i / 64] >> (i % 64)`. Bits at or beyond
    /// [`Bitmap::len`] are always zero (maintained by `clear_tail`), so
    /// word-level popcounts are exact. This is the raw surface the chunked
    /// scan layer ([`crate::scan`]) builds on.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word `i` of the backing storage, or 0 if `i` is past the end —
    /// callers processing 64-row blocks need no bounds branch.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Iterate over the indexes of set bits, ascending.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            bitmap: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over set-bit indexes of a [`Bitmap`], ascending.
pub struct OnesIter<'a> {
    bitmap: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bitmap.words.len() {
                return None;
            }
            self.current = self.bitmap.words[self.word_idx];
        }
    }
}

impl FromIterator<usize> for Bitmap {
    /// Build from set-bit indexes; length is `max_index + 1`.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let idx: Vec<usize> = iter.into_iter().collect();
        let len = idx.iter().max().map_or(0, |m| m + 1);
        let mut b = Bitmap::new(len);
        for i in idx {
            b.set(i);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let b = Bitmap::new(100);
        assert_eq!(b.len(), 100);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(0));
        assert!(!b.get(99));
    }

    #[test]
    fn all_set_has_exact_popcount() {
        for len in [0, 1, 63, 64, 65, 127, 128, 1000] {
            let b = Bitmap::all_set(len);
            assert_eq!(b.count_ones(), len, "len={len}");
        }
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = Bitmap::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_matches_set_bits() {
        let mut b = Bitmap::new(200);
        let idx = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, idx);
    }

    #[test]
    fn iter_ones_empty() {
        let b = Bitmap::new(77);
        assert_eq!(b.iter_ones().count(), 0);
        let b = Bitmap::new(0);
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn and_or_not() {
        let mut a = Bitmap::new(70);
        let mut b = Bitmap::new(70);
        a.set(1);
        a.set(65);
        b.set(65);
        b.set(2);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![65]);
        assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), vec![1, 2, 65]);
        let n = a.not();
        assert_eq!(n.count_ones(), 68);
        assert!(!n.get(1) && !n.get(65) && n.get(0));
    }

    #[test]
    fn not_respects_tail() {
        let b = Bitmap::new(65);
        let n = b.not();
        assert_eq!(n.count_ones(), 65);
    }

    #[test]
    fn count_range_matches_filtered_iter() {
        let mut b = Bitmap::new(300);
        for i in (0..300).step_by(7) {
            b.set(i);
        }
        for (lo, hi) in [
            (0, 300),
            (0, 0),
            (5, 5),
            (0, 1),
            (63, 65),
            (64, 128),
            (10, 290),
            (128, 140),
            (250, 400),
        ] {
            let naive = b.iter_ones().filter(|&i| i >= lo && i < hi).count();
            assert_eq!(b.count_range(lo, hi), naive, "range {lo}..{hi}");
        }
    }

    #[test]
    fn from_iter_builds_minimal_length() {
        let b: Bitmap = [3usize, 10, 7].into_iter().collect();
        assert_eq!(b.len(), 11);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![3, 7, 10]);
    }
}
