//! Materialized rows and sort keys.
//!
//! The tabular-view vizketches (next items, quantiles, find) exchange small
//! numbers of materialized rows between nodes. A [`RowKey`] is the projection
//! of a row onto the active sort columns; ordering row keys orders rows.

use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// A materialized row: one `Value` per visible column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Cell values, in schema order of the projected columns.
    pub values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// A row's projection onto the sort columns, with per-column direction
/// already applied, so that plain lexicographic comparison orders rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowKey {
    values: Vec<Value>,
    /// Per-column descending flags, parallel to `values`.
    descending: Vec<bool>,
}

impl RowKey {
    /// Build from sort-column values and matching descending flags.
    pub fn new(values: Vec<Value>, descending: Vec<bool>) -> Self {
        debug_assert_eq!(values.len(), descending.len());
        RowKey { values, descending }
    }

    /// The underlying values (direction flags not applied).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The per-column descending flags.
    pub fn descending(&self) -> &[bool] {
        &self.descending
    }
}

impl PartialOrd for RowKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RowKey {
    fn cmp(&self, other: &Self) -> Ordering {
        debug_assert_eq!(self.values.len(), other.values.len());
        for ((a, b), desc) in self.values.iter().zip(&other.values).zip(&self.descending) {
            let ord = a.cmp(b);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: Vec<Value>, desc: Vec<bool>) -> RowKey {
        RowKey::new(vals, desc)
    }

    #[test]
    fn ascending_comparison() {
        let a = key(vec![Value::Int(1)], vec![false]);
        let b = key(vec![Value::Int(2)], vec![false]);
        assert!(a < b);
    }

    #[test]
    fn descending_flag_reverses() {
        let a = key(vec![Value::Int(1)], vec![true]);
        let b = key(vec![Value::Int(2)], vec![true]);
        assert!(a > b);
    }

    #[test]
    fn lexicographic_multi_column() {
        let a = key(vec![Value::str("AA"), Value::Int(9)], vec![false, false]);
        let b = key(vec![Value::str("AA"), Value::Int(10)], vec![false, false]);
        let c = key(vec![Value::str("UA"), Value::Int(0)], vec![false, false]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn mixed_directions() {
        // Sort by carrier ascending, delay descending.
        let a = key(vec![Value::str("AA"), Value::Int(50)], vec![false, true]);
        let b = key(vec![Value::str("AA"), Value::Int(10)], vec![false, true]);
        assert!(a < b, "larger delay first within same carrier");
    }

    #[test]
    fn missing_sorts_first_even_descending() {
        let m = key(vec![Value::Missing], vec![true]);
        let v = key(vec![Value::Int(0)], vec![true]);
        // Descending reverses, so Missing (smallest) comes last.
        assert!(m > v);
    }

    #[test]
    fn row_display() {
        let r = Row::new(vec![Value::str("SFO"), Value::Int(42), Value::Missing]);
        assert_eq!(r.to_string(), "SFO | 42 | (missing)");
        assert_eq!(r.len(), 3);
    }
}
