//! Multi-column sort orders.
//!
//! A [`SortOrder`] names the columns (and directions) by which the tabular
//! view is currently sorted (paper §3.3: "Sort by a set of columns"). It
//! resolves against a table to extract comparable [`RowKey`]s.

use crate::error::Result;
use crate::rows::RowKey;
use crate::table::Table;
use std::sync::Arc;

/// One column of a sort order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortColumn {
    /// Column name.
    pub name: Arc<str>,
    /// True for descending order.
    pub descending: bool,
}

/// An ordered list of sort columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SortOrder {
    columns: Vec<SortColumn>,
}

impl SortOrder {
    /// Ascending sort on the given column names.
    pub fn ascending(names: &[&str]) -> Self {
        SortOrder {
            columns: names
                .iter()
                .map(|n| SortColumn {
                    name: Arc::from(*n),
                    descending: false,
                })
                .collect(),
        }
    }

    /// Build with explicit directions: `(name, descending)`.
    pub fn with_directions(cols: &[(&str, bool)]) -> Self {
        SortOrder {
            columns: cols
                .iter()
                .map(|(n, d)| SortColumn {
                    name: Arc::from(*n),
                    descending: *d,
                })
                .collect(),
        }
    }

    /// The sort columns.
    pub fn columns(&self) -> &[SortColumn] {
        &self.columns
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_ref())
    }

    /// True if no sort columns are set.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve column names to indexes within `table`, for fast key
    /// extraction during scans.
    pub fn resolve(&self, table: &Table) -> Result<ResolvedSortOrder> {
        let mut idx = Vec::with_capacity(self.columns.len());
        let mut desc = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            idx.push(table.schema().index_of(&c.name)?);
            desc.push(c.descending);
        }
        Ok(ResolvedSortOrder {
            indexes: idx,
            descending: desc,
        })
    }
}

/// A sort order bound to the column indexes of a specific table.
#[derive(Debug, Clone)]
pub struct ResolvedSortOrder {
    indexes: Vec<usize>,
    descending: Vec<bool>,
}

impl ResolvedSortOrder {
    /// Extract the sort key of `row` from `table`.
    pub fn key(&self, table: &Table, row: usize) -> RowKey {
        let values = self
            .indexes
            .iter()
            .map(|&c| table.column(c).value(row))
            .collect();
        RowKey::new(values, self.descending.clone())
    }

    /// The resolved column indexes.
    pub fn indexes(&self) -> &[usize] {
        &self.indexes
    }

    /// The per-column descending flags.
    pub fn descending(&self) -> &[bool] {
        &self.descending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, DictColumn, I64Column};
    use crate::schema::ColumnKind;
    use crate::table::Table;

    fn table() -> Table {
        Table::builder()
            .column(
                "Carrier",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings([
                    Some("UA"),
                    Some("AA"),
                    Some("UA"),
                ])),
            )
            .column(
                "Delay",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(10), Some(5), Some(-3)])),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn resolve_and_extract_keys() {
        let t = table();
        let order = SortOrder::ascending(&["Carrier", "Delay"]);
        let r = order.resolve(&t).unwrap();
        let k0 = r.key(&t, 0);
        let k1 = r.key(&t, 1);
        let k2 = r.key(&t, 2);
        assert!(k1 < k0, "AA before UA");
        assert!(k2 < k0, "UA,-3 before UA,10");
    }

    #[test]
    fn descending_direction_applied() {
        let t = table();
        let order = SortOrder::with_directions(&[("Delay", true)]);
        let r = order.resolve(&t).unwrap();
        assert!(r.key(&t, 0) < r.key(&t, 1), "10 before 5 when descending");
    }

    #[test]
    fn unknown_column_fails_resolution() {
        let t = table();
        assert!(SortOrder::ascending(&["Nope"]).resolve(&t).is_err());
    }

    #[test]
    fn empty_order_yields_equal_keys() {
        let t = table();
        let r = SortOrder::default().resolve(&t).unwrap();
        assert_eq!(r.key(&t, 0), r.key(&t, 1));
    }
}
