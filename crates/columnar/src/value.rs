//! Dynamically-typed cell values.
//!
//! The engine's hot paths operate directly on typed column arrays; [`Value`]
//! is used at the edges — tabular views, row keys for sort orders, UDF
//! results, and test assertions. The paper supports "integers, floating-point
//! numbers, dates, free-form text, and strings describing categorical data"
//! (§3.5) plus missing values; `Value` mirrors exactly that.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single spreadsheet cell value.
///
/// `Missing` sorts before every present value, mirroring Hillview's tabular
/// view, and equal values of different types never compare equal.
#[derive(Debug, Clone)]
pub enum Value {
    /// A missing (null) cell.
    Missing,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is normalized to `Missing` on column ingest.
    Double(f64),
    /// A date, encoded as milliseconds since the Unix epoch.
    Date(i64),
    /// Free-form or categorical text (reference-counted; cloning is cheap).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True if the value is `Missing`.
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Interpret the value as a real number where possible (paper §4.3:
    /// histograms accept "a value that can be readily converted to a real
    /// number, such as a date").
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Date(ms) => Some(*ms as f64),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int` or `Date`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order values of different types (Missing < Int < Double <
    /// Date < Str). Numeric types are compared numerically among themselves.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Missing => 0,
            Value::Int(_) | Value::Double(_) => 1,
            Value::Date(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Missing, Missing) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Missing => state.write_u8(0),
            Value::Int(v) => {
                state.write_u8(1);
                state.write_i64(*v);
            }
            Value::Double(v) => {
                state.write_u8(2);
                // Hash the bit pattern; NaN never reaches columns.
                state.write_u64(v.to_bits());
            }
            Value::Date(v) => {
                state.write_u8(3);
                state.write_i64(*v);
            }
            Value::Str(s) => {
                state.write_u8(4);
                state.write(s.as_bytes());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Missing => write!(f, "(missing)"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Date(ms) => write!(f, "@{ms}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        if v.is_nan() {
            Value::Missing
        } else {
            Value::Double(v)
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_sorts_first() {
        let mut vs = [
            Value::Int(3),
            Value::Missing,
            Value::str("abc"),
            Value::Double(-1.5),
            Value::Date(100),
        ];
        vs.sort();
        assert!(vs[0].is_missing());
        assert_eq!(vs[1], Value::Double(-1.5));
        assert_eq!(vs[2], Value::Int(3));
        assert_eq!(vs[3], Value::Date(100));
        assert_eq!(vs[4], Value::str("abc"));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2), Value::Double(2.0));
        assert!(Value::Int(2) < Value::Double(2.5));
        assert!(Value::Double(1.9) < Value::Int(2));
    }

    #[test]
    fn nan_becomes_missing() {
        assert!(Value::from(f64::NAN).is_missing());
        assert!(!Value::from(0.0).is_missing());
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Date(1000).as_f64(), Some(1000.0));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Missing.as_f64(), None);
    }

    #[test]
    fn display_round_trip_is_readable() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("SFO").to_string(), "SFO");
        assert_eq!(Value::Missing.to_string(), "(missing)");
    }

    #[test]
    fn hash_distinguishes_types() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_ne!(h(&Value::Int(1)), h(&Value::Date(1)));
        assert_ne!(h(&Value::Missing), h(&Value::Int(0)));
    }

    #[test]
    fn string_values_share_storage() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
