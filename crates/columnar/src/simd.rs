//! Portable vector fast paths over the decoded-block ABI (`simd` feature).
//!
//! The block scan pipeline hands kernels 64-row [`Block`](crate::block::Block)
//! frames: decoded value lanes plus selection/validity words. This module
//! provides the lane-parallel primitives the hot kernels run over those
//! frames:
//!
//! * [`bucket_indexes`] — histogram bucket index as multiply-by-scale
//!   lanes, with selection/validity masking folded in branch-free.
//! * [`expand_word`] — null/selection word expansion to per-lane `u32`
//!   masks, for kernels that mask lanes explicitly instead of folding the
//!   word in arithmetically the way [`bucket_indexes`] does.
//! * [`moments_frame`] / [`moments_one`] — 8-lane sum / sum-of-squares /
//!   higher-power accumulation (lane of a row = `row % 8`, one 512-bit
//!   vector of `f64`).
//! * the width-`w` whole-block bit-unpack lives with the storage types in
//!   [`crate::encoding`], dispatched through [`active`] the same way.
//!
//! ## Dispatch and bit-identity
//!
//! Every primitive has exactly one arithmetic definition — an
//! `#[inline(always)]` body — compiled once at the baseline target (the
//! **mandatory scalar fallback**) and once per vector tier
//! (`#[target_feature]` AVX2 and AVX-512 wrappers) when the `simd` feature
//! is on; the runtime dispatcher picks the best tier the CPU supports.
//! Every codegen executes the identical IEEE-754/integer operation
//! sequence, so summaries are **byte-identical** with the feature on or
//! off, whatever the CPU — the property the `simd`-equivalence proptests
//! pin.
//!
//! Floating-point accumulation is made lane-safe by *defining* kernel
//! semantics over fixed lanes: a value at row `r` accumulates into lane
//! `r % 8` ([`MOMENT_LANES`]), and lanes combine in a fixed binary tree
//! `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` at the end of the scan. Row → lane assignment is a pure function of the
//! data (not of traversal or batching), so per-row reference
//! implementations, block kernels, and every encoding agree bitwise.
//!
//! [`set_force_scalar`] lets benchmarks and tests pin the scalar fallback
//! at runtime in a `simd` build, which is how the simd-on/off bench pairs
//! and equivalence proptests run inside one process.

use std::sync::atomic::{AtomicBool, Ordering};

/// Number of independent floating-point accumulator lanes; the lane of a
/// row is `row % MOMENT_LANES`. Eight lanes fill one 512-bit vector of
/// `f64`.
pub const MOMENT_LANES: usize = 8;

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Force the scalar fallbacks even when the `simd` feature and CPU support
/// are present (benchmark pairs, equivalence tests). Results are
/// bit-identical either way; this only selects the codegen.
pub fn set_force_scalar(v: bool) {
    // lint: allow(relaxed, standalone codegen-selection flag; both codegens produce identical bytes, so staleness only affects which one runs)
    FORCE_SCALAR.store(v, Ordering::Relaxed);
}

/// True when [`set_force_scalar`] pinned the scalar fallbacks.
pub fn force_scalar() -> bool {
    // lint: allow(relaxed, standalone codegen-selection flag; both codegens produce identical bytes, so staleness only affects which one runs)
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Vector ISA tier selected at runtime. AVX-512 (with DQ/VL/BW) matters
/// beyond width: it has native 8-lane `i64 → f64` conversion
/// (`vcvtqq2pd`), which AVX2 must scalarize — and integer column lanes
/// are the common case here.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tier {
    Scalar,
    Avx2,
    Avx512,
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detected_tier() -> Tier {
    use std::sync::OnceLock;
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(|| {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512bw")
        {
            Tier::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2") {
            Tier::Avx2
        } else {
            Tier::Scalar
        }
    })
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
pub(crate) fn current_tier() -> Tier {
    if force_scalar() {
        Tier::Scalar
    } else {
        detected_tier()
    }
}

/// AVX512-VBMI (`vpermb`) on top of the AVX-512 tier: the byte-gather
/// bit-unpack in [`crate::encoding`] needs it.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) fn vbmi_available() -> bool {
    use std::sync::OnceLock;
    static VBMI: OnceLock<bool> = OnceLock::new();
    *VBMI.get_or_init(|| std::arch::is_x86_feature_detected!("avx512vbmi"))
}

/// True when the vector codegen paths will be used: `simd` feature on,
/// x86-64 with AVX2 or better detected, and not pinned scalar by
/// [`set_force_scalar`].
#[inline]
pub fn active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        current_tier() != Tier::Scalar
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// The two vector codegens of one `#[inline(always)]` body plus the
/// tier-dispatched entry: same source, same operation order, different
/// ISA — bit-identical results by construction.
macro_rules! tier_dispatch {
    ($body:ident => $avx2:ident, $avx512:ident;
     $(#[$meta:meta])* fn $entry:ident $(<$($g:ident : $b:path),*>)? ($($arg:ident : $ty:ty),*) $(-> $ret:ty)?) => {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[target_feature(enable = "avx2")]
        fn $avx2 $(<$($g: $b),*>)? ($($arg: $ty),*) $(-> $ret)? {
            $body($($arg),*)
        }

        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        #[target_feature(enable = "avx512f,avx512dq,avx512vl,avx512bw")]
        fn $avx512 $(<$($g: $b),*>)? ($($arg: $ty),*) $(-> $ret)? {
            $body($($arg),*)
        }

        $(#[$meta])*
        #[inline]
        pub fn $entry $(<$($g: $b),*>)? ($($arg: $ty),*) $(-> $ret)? {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            match current_tier() {
                // SAFETY: `Tier::Avx512` is only reported after
                // `is_x86_feature_detected!` confirmed avx512f/dq/vl/bw at
                // runtime — exactly the features the wrapper enables.
                Tier::Avx512 => return unsafe { $avx512($($arg),*) },
                // SAFETY: `Tier::Avx2` is only reported after runtime
                // detection confirmed avx2, the one feature the wrapper
                // enables.
                Tier::Avx2 => return unsafe { $avx2($($arg),*) },
                Tier::Scalar => {}
            }
            $body($($arg),*)
        }
    };
}

/// A value type whose lanes the vector kernels can process: anything with
/// an exact, per-lane conversion to `f64`.
pub trait LaneValue: Copy {
    /// The value as an `f64` — the same conversion the per-row reference
    /// paths apply (`v as f64` for integers, identity for floats).
    fn lane_f64(self) -> f64;
}

impl LaneValue for f64 {
    #[inline(always)]
    fn lane_f64(self) -> f64 {
        self
    }
}

impl LaneValue for i64 {
    #[inline(always)]
    fn lane_f64(self) -> f64 {
        self as f64
    }
}

// ---------------------------------------------------------------------------
// Word expansion
// ---------------------------------------------------------------------------

#[inline(always)]
fn expand_word_body(word: u64, out: &mut [u32; 64]) {
    for (k, o) in out.iter_mut().enumerate() {
        *o = 0u32.wrapping_sub(((word >> k) & 1) as u32);
    }
}

tier_dispatch! {
    expand_word_body => expand_word_avx2, expand_word_avx512;
    /// Expand a selection/null word to per-lane masks: `out[k]` is all-ones
    /// when bit `k` of `word` is set, zero otherwise.
    fn expand_word(word: u64, out: &mut [u32; 64])
}

// ---------------------------------------------------------------------------
// Predicate word compares
// ---------------------------------------------------------------------------

/// Lane types the predicate word-compare primitives accept. The compares
/// are plain `PartialOrd` lane ops, so any `NaN` lane compares false —
/// exactly the per-row reference semantics (missing/NaN rows never satisfy
/// a numeric comparison).
pub trait LaneOrd: Copy + PartialOrd {}

impl LaneOrd for i64 {}
impl LaneOrd for u32 {}
impl LaneOrd for f64 {}

#[inline(always)]
fn range_word_incl_body<T: LaneOrd>(vals: &[T], lo: T, hi: T) -> u64 {
    let mut w = 0u64;
    for (k, &v) in vals.iter().enumerate() {
        w |= (((v >= lo) & (v <= hi)) as u64) << k;
    }
    w
}

tier_dispatch! {
    range_word_incl_body => range_word_incl_avx2, range_word_incl_avx512;
    /// Selection word of an *inclusive* range test: bit `k` set iff
    /// `lo <= vals[k] <= hi`. This is the integer-domain compare the block
    /// predicate leaves run after translating `f64` range bounds into the
    /// column's value (or packed-delta) domain.
    fn range_word_incl<T: LaneOrd>(vals: &[T], lo: T, hi: T) -> u64
}

#[inline(always)]
fn range_word_half_body(vals: &[f64], lo: f64, hi: f64) -> u64 {
    let mut w = 0u64;
    for (k, &v) in vals.iter().enumerate() {
        w |= (((v >= lo) & (v < hi)) as u64) << k;
    }
    w
}

tier_dispatch! {
    range_word_half_body => range_word_half_avx2, range_word_half_avx512;
    /// Selection word of the half-open `lo <= v < hi` test on `f64` lanes —
    /// the exact comparison `Predicate::Range` defines. `NaN` lanes (null
    /// placeholders) compare false.
    fn range_word_half(vals: &[f64], lo: f64, hi: f64) -> u64
}

#[inline(always)]
fn eq_word_body(vals: &[f64], target: f64) -> u64 {
    let mut w = 0u64;
    for (k, &v) in vals.iter().enumerate() {
        w |= ((v == target) as u64) << k;
    }
    w
}

tier_dispatch! {
    eq_word_body => eq_word_avx2, eq_word_avx512;
    /// Selection word of `v == target` on `f64` lanes. A `NaN` target
    /// matches nothing (callers normally fold that case away at compile).
    fn eq_word(vals: &[f64], target: f64) -> u64
}

#[inline(always)]
fn probe_word_body(codes: &[u32], bits: &[u64]) -> u64 {
    let mut w = 0u64;
    for (k, &c) in codes.iter().enumerate() {
        let b = bits
            .get((c >> 6) as usize)
            .map_or(0, |word| (word >> (c & 63)) & 1);
        w |= b << k;
    }
    w
}

tier_dispatch! {
    probe_word_body => probe_word_avx2, probe_word_avx512;
    /// Selection word of a dictionary-code bitmap probe: bit `k` set iff
    /// bit `codes[k]` of `bits` is set. This is the per-row test of a text
    /// or regex predicate once the matcher has been evaluated once per
    /// dictionary entry; out-of-bitmap codes probe as unmatched.
    fn probe_word(codes: &[u32], bits: &[u64]) -> u64
}

// ---------------------------------------------------------------------------
// Histogram bucket indexes
// ---------------------------------------------------------------------------

/// Hoisted bucket arithmetic of `BucketSpec::index_of_f64`: bucket of `v`
/// is `((v - lo) * scale) as usize`, out of range when `v < lo || v >= hi`.
#[derive(Debug, Clone, Copy)]
pub struct BucketParams {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
    /// `cnt / (hi - lo)`, bit-identical to the per-call value the per-row
    /// reference computes.
    pub scale: f64,
    /// Bucket count.
    pub cnt: u32,
}

impl BucketParams {
    /// Bucket of one value: `idx` in range, `cnt` out of range. The single
    /// arithmetic definition every path (lane bodies, scalar per-bit loops,
    /// per-row references) shares. Written as a mask select so the lane
    /// bodies stay branch-free.
    #[inline(always)]
    pub fn cell_of(&self, v: f64) -> u32 {
        let idx = (((v - self.lo) * self.scale) as u32).min(self.cnt - 1);
        let oor = 0u32.wrapping_sub(((v < self.lo) | (v >= self.hi)) as u32);
        (self.cnt & oor) | (idx & !oor)
    }
}

#[inline(always)]
fn bucket_indexes_body<T: LaneValue>(
    vals: &[T],
    live: u64,
    p: &BucketParams,
    dead: u32,
    out: &mut [u32; 64],
) {
    for (k, &raw) in vals.iter().enumerate() {
        let cell = p.cell_of(raw.lane_f64());
        let m = 0u32.wrapping_sub(((live >> k) & 1) as u32);
        out[k] = (cell & m) | (dead & !m);
    }
}

tier_dispatch! {
    bucket_indexes_body => bucket_indexes_avx2, bucket_indexes_avx512;
    /// Compute the bucket cell of every lane of a frame: `out[k]` is the
    /// bucket index of `vals[k]` (or `p.cnt` when out of range) when bit `k`
    /// of `live` is set, `dead` otherwise. Lanes past `vals.len()` are left
    /// untouched — callers consume exactly `vals.len()` lanes.
    ///
    /// Counter increments commute, so scattering these cells (including the
    /// `dead` slot) produces bit-identical counts to a per-live-bit scalar
    /// loop — which is exactly the mandatory fallback kernels run when
    /// [`active`] is false.
    fn bucket_indexes<T: LaneValue>(
        vals: &[T],
        live: u64,
        p: &BucketParams,
        dead: u32,
        out: &mut [u32; 64]
    )
}

// ---------------------------------------------------------------------------
// Moments accumulation
// ---------------------------------------------------------------------------

/// 8-lane accumulator state for min/max and power sums up to order
/// `sums.len()`; `sums[j][l]` is Σ v^(j+1) over the values in lane `l`.
#[derive(Debug, Clone)]
pub struct MomentLanes {
    /// Per-lane power sums: `sums[j][l]` = Σ v^(j+1) of lane `l`.
    pub sums: Vec<[f64; MOMENT_LANES]>,
    /// Per-lane minimum (`+inf` when the lane is empty).
    pub min: [f64; MOMENT_LANES],
    /// Per-lane maximum (`-inf` when the lane is empty).
    pub max: [f64; MOMENT_LANES],
}

impl MomentLanes {
    /// Empty accumulators for moments up to order `k`.
    pub fn new(k: usize) -> Self {
        MomentLanes {
            sums: vec![[0.0; MOMENT_LANES]; k],
            min: [f64::INFINITY; MOMENT_LANES],
            max: [f64::NEG_INFINITY; MOMENT_LANES],
        }
    }

    /// Collapse the lanes in the fixed binary tree
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`: `(min, max, sums)` of the
    /// whole stream. The caller decides whether any value was seen (empty
    /// lanes contribute the `±inf`/zero identities exactly).
    pub fn collapse(&self) -> (f64, f64, Vec<f64>) {
        fn tree(l: &[f64; MOMENT_LANES], f: impl Fn(f64, f64) -> f64) -> f64 {
            f(
                f(f(l[0], l[1]), f(l[2], l[3])),
                f(f(l[4], l[5]), f(l[6], l[7])),
            )
        }
        let min = tree(&self.min, f64::min);
        let max = tree(&self.max, f64::max);
        let sums = self.sums.iter().map(|s| tree(s, |a, b| a + b)).collect();
        (min, max, sums)
    }
}

/// Accumulate one value into lane `lane`: the per-value definition both
/// the frame body below and the per-row reference paths share.
#[inline(always)]
pub fn moments_one(v: f64, lane: usize, acc: &mut MomentLanes) {
    acc.min[lane] = acc.min[lane].min(v);
    acc.max[lane] = acc.max[lane].max(v);
    let mut p = v;
    for s in acc.sums.iter_mut() {
        s[lane] += p;
        p *= v;
    }
}

/// Highest moment order with a register-resident accumulator loop; higher
/// orders fall back to the in-place loop (still lane-structured).
const MOMENT_LOCAL_MAX: usize = 6;

#[inline(always)]
fn moments_frame_body<T: LaneValue>(vals: &[T], acc: &mut MomentLanes) {
    let k = acc.sums.len();
    let mut chunks = vals.chunks_exact(MOMENT_LANES);
    if k <= MOMENT_LOCAL_MAX {
        // Copy the accumulators to locals so the hot loop keeps them in
        // vector registers instead of round-tripping through the Vec.
        let mut min = acc.min;
        let mut max = acc.max;
        let mut sums = [[0.0f64; MOMENT_LANES]; MOMENT_LOCAL_MAX];
        sums[..k].copy_from_slice(&acc.sums);
        for c in chunks.by_ref() {
            let mut v = [0.0f64; MOMENT_LANES];
            for (l, slot) in v.iter_mut().enumerate() {
                *slot = c[l].lane_f64();
            }
            for (l, &vl) in v.iter().enumerate() {
                min[l] = min[l].min(vl);
                max[l] = max[l].max(vl);
            }
            let mut p = v;
            for s in sums[..k].iter_mut() {
                for l in 0..MOMENT_LANES {
                    s[l] += p[l];
                }
                for l in 0..MOMENT_LANES {
                    p[l] *= v[l];
                }
            }
        }
        acc.min = min;
        acc.max = max;
        acc.sums.copy_from_slice(&sums[..k]);
    } else {
        for c in chunks.by_ref() {
            let mut v = [0.0f64; MOMENT_LANES];
            for (l, slot) in v.iter_mut().enumerate() {
                *slot = c[l].lane_f64();
            }
            for (l, &vl) in v.iter().enumerate() {
                acc.min[l] = acc.min[l].min(vl);
                acc.max[l] = acc.max[l].max(vl);
            }
            let mut p = v;
            for s in acc.sums.iter_mut() {
                for l in 0..MOMENT_LANES {
                    s[l] += p[l];
                }
                for l in 0..MOMENT_LANES {
                    p[l] *= v[l];
                }
            }
        }
    }
    let off = vals.len() - chunks.remainder().len();
    for (j, &raw) in chunks.remainder().iter().enumerate() {
        moments_one(raw.lane_f64(), (off + j) % MOMENT_LANES, acc);
    }
}

tier_dispatch! {
    moments_frame_body => moments_frame_avx2, moments_frame_avx512;
    /// Accumulate a fully-live frame whose first lane sits at a row ≡ 0
    /// (mod 8) — 64-row-aligned frame bases guarantee this — so `vals[k]`
    /// lands in lane `k % 8`. Per-lane operation order is identical to
    /// calling [`moments_one`] per value, hence bit-identical results under
    /// either codegen.
    fn moments_frame<T: LaneValue>(vals: &[T], acc: &mut MomentLanes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_word_sets_full_lanes() {
        let mut out = [0u32; 64];
        expand_word(0b1011, &mut out);
        assert_eq!(out[0], u32::MAX);
        assert_eq!(out[1], u32::MAX);
        assert_eq!(out[2], 0);
        assert_eq!(out[3], u32::MAX);
        assert!(out[4..].iter().all(|&m| m == 0));
    }

    #[test]
    fn bucket_cells_match_per_value_reference() {
        let p = BucketParams {
            lo: 0.0,
            hi: 100.0,
            scale: 10.0 / 100.0,
            cnt: 10,
        };
        let vals: Vec<f64> = (0..64).map(|k| k as f64 * 2.5 - 10.0).collect();
        let live = 0xF0F0_F0F0_F0F0_F0F0u64;
        let mut out = [0u32; 64];
        bucket_indexes(&vals, live, &p, 99, &mut out);
        for (k, &cell) in out.iter().enumerate() {
            let expect = if live >> k & 1 == 1 {
                p.cell_of(vals[k])
            } else {
                99
            };
            assert_eq!(cell, expect, "lane {k}");
        }
    }

    #[test]
    fn moments_frame_equals_per_value_lanes() {
        let vals: Vec<f64> = (0..61).map(|k| (k as f64) * 0.37 - 7.0).collect();
        let mut a = MomentLanes::new(3);
        moments_frame(&vals, &mut a);
        let mut b = MomentLanes::new(3);
        for (k, &v) in vals.iter().enumerate() {
            moments_one(v, k % MOMENT_LANES, &mut b);
        }
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        for (x, y) in a.sums.iter().zip(&b.sums) {
            for l in 0..MOMENT_LANES {
                assert_eq!(x[l].to_bits(), y[l].to_bits(), "lane {l}");
            }
        }
    }

    #[test]
    fn forced_scalar_is_bit_identical() {
        let vals: Vec<f64> = (0..64).map(|k| (k as f64) * 1.13 - 31.0).collect();
        let p = BucketParams {
            lo: -10.0,
            hi: 40.0,
            scale: 17.0 / 50.0,
            cnt: 17,
        };
        let mut fast = [0u32; 64];
        let mut slow = [0u32; 64];
        bucket_indexes(&vals, u64::MAX, &p, 18, &mut fast);
        set_force_scalar(true);
        bucket_indexes(&vals, u64::MAX, &p, 18, &mut slow);
        set_force_scalar(false);
        assert_eq!(fast, slow);
    }
}
