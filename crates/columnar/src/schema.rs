//! Column kinds, descriptors, and table schemas.

use crate::error::{Error, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The data type of a column (paper §3.5: integers, floating-point numbers,
/// dates, free-form text, and categorical strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Double,
    /// Date as epoch milliseconds.
    Date,
    /// Free-form text (dictionary-encoded).
    String,
    /// Categorical data: text from a small domain (dictionary-encoded).
    Category,
}

impl ColumnKind {
    /// True for kinds that can be converted to a real number for charting
    /// (paper §4.3: numeric "or a value that can be readily converted to a
    /// real number, such as a date").
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ColumnKind::Int | ColumnKind::Double | ColumnKind::Date
        )
    }

    /// True for kinds backed by a dictionary of strings.
    pub fn is_textual(self) -> bool {
        matches!(self, ColumnKind::String | ColumnKind::Category)
    }
}

impl fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnKind::Int => "Int",
            ColumnKind::Double => "Double",
            ColumnKind::Date => "Date",
            ColumnKind::String => "String",
            ColumnKind::Category => "Category",
        };
        f.write_str(s)
    }
}

/// Name and kind of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDesc {
    /// Column name, unique within a schema.
    pub name: Arc<str>,
    /// Data type.
    pub kind: ColumnKind,
}

impl ColumnDesc {
    /// Convenience constructor.
    pub fn new(name: &str, kind: ColumnKind) -> Self {
        ColumnDesc {
            name: Arc::from(name),
            kind,
        }
    }
}

/// An ordered set of uniquely-named column descriptors.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: Vec<ColumnDesc>,
    by_name: HashMap<Arc<str>, usize>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from descriptors; fails on duplicate names.
    pub fn from_descs(descs: Vec<ColumnDesc>) -> Result<Self> {
        let mut s = Schema::new();
        for d in descs {
            s.push(d)?;
        }
        Ok(s)
    }

    /// Append a column descriptor; fails on duplicate names.
    pub fn push(&mut self, desc: ColumnDesc) -> Result<()> {
        if self.by_name.contains_key(&desc.name) {
            return Err(Error::DuplicateColumn(desc.name.to_string()));
        }
        self.by_name.insert(desc.name.clone(), self.columns.len());
        self.columns.push(desc);
        Ok(())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Descriptor at position `i`.
    pub fn desc(&self, i: usize) -> &ColumnDesc {
        &self.columns[i]
    }

    /// All descriptors in order.
    pub fn descs(&self) -> &[ColumnDesc] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownColumn(name.to_string()))
    }

    /// Kind of the column named `name`.
    pub fn kind_of(&self, name: &str) -> Result<ColumnKind> {
        Ok(self.columns[self.index_of(name)?].kind)
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut out = Schema::new();
        for n in names {
            let i = self.index_of(n)?;
            out.push(self.columns[i].clone())?;
        }
        Ok(out)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", c.name, c.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_descs(vec![
            ColumnDesc::new("Carrier", ColumnKind::Category),
            ColumnDesc::new("DepDelay", ColumnKind::Double),
            ColumnDesc::new("FlightDate", ColumnKind::Date),
        ])
        .unwrap()
    }

    #[test]
    fn index_and_kind_lookup() {
        let s = sample();
        assert_eq!(s.index_of("DepDelay").unwrap(), 1);
        assert_eq!(s.kind_of("Carrier").unwrap(), ColumnKind::Category);
        assert!(matches!(s.index_of("Nope"), Err(Error::UnknownColumn(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = sample();
        let e = s.push(ColumnDesc::new("Carrier", ColumnKind::Int));
        assert!(matches!(e, Err(Error::DuplicateColumn(_))));
    }

    #[test]
    fn project_preserves_order_given() {
        let s = sample();
        let p = s.project(&["FlightDate", "Carrier"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.desc(0).name.as_ref(), "FlightDate");
        assert_eq!(p.desc(1).name.as_ref(), "Carrier");
        assert!(s.project(&["Missing"]).is_err());
    }

    #[test]
    fn kind_predicates() {
        assert!(ColumnKind::Int.is_numeric());
        assert!(ColumnKind::Date.is_numeric());
        assert!(!ColumnKind::String.is_numeric());
        assert!(ColumnKind::Category.is_textual());
        assert!(!ColumnKind::Double.is_textual());
    }

    #[test]
    fn display_formats() {
        let s = sample();
        let txt = s.to_string();
        assert!(txt.contains("Carrier:Category"));
        assert!(txt.contains("DepDelay:Double"));
    }
}
