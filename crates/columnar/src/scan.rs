//! Chunked columnar scans: batch row selection for vizketch kernels.
//!
//! The per-row scan interface (`MembershipSet::iter` + `Column::get(i) ->
//! Option<T>`) pays a membership probe, a bounds check, and an `Option`
//! branch on *every cell*. That is far from the paper's claim that
//! `summarize` loops run "as fast as the hardware allows" (§5, App. C).
//! This module provides the batch alternative every sketch kernel is built
//! on:
//!
//! * [`ScanChunk`] — a batch of selected rows in one of three shapes:
//!   a dense row range (`Range`), a 64-row bitmap word (`Mask`), or an
//!   explicit sorted index list (`Rows`).
//! * [`MembershipSet::chunks`] — decomposes any membership representation
//!   into chunks, coalescing consecutive all-ones bitmap words into dense
//!   ranges.
//! * [`Selection`] — unifies "scan the whole membership" and "scan these
//!   sampled rows" so kernels have a single streaming/sampled code path.
//! * [`scan_values`] / [`scan_rows`] / [`count_missing`] — typed drivers
//!   that fold null masks in at word granularity: one `u64` fetch per 64
//!   rows, with a branch-free inner loop over the raw value slice whenever
//!   a chunk is dense and the column has no nulls there (the *dense fast
//!   path*).
//!
//! Chunks are always emitted in ascending row order and never overlap, so
//! order-sensitive kernels (Misra-Gries, next-K) observe exactly the same
//! row sequence as the per-row reference path — the scan-equivalence
//! property tests in `hillview-sketch` rely on that.

use crate::bitmap::Bitmap;
use crate::encoding::{IntStorage, PackedInt};
use crate::membership::MembershipSet;

/// What a typed scan driver reads values from: either a plain slice (raw
/// column data, hash tables, scratch vectors) or an encoded
/// [`IntStorage`]. The drivers probe [`ScanSource::as_plain`] once — a
/// `Some` keeps the original slice loops (including the dense fast path)
/// with zero indirection, a `None` switches to the chunk-decoder path that
/// materializes at most 64 rows at a time into a stack scratch buffer via
/// [`ScanSource::decode_into`].
pub trait ScanSource<T: Copy> {
    /// The contiguous backing slice, when the storage is uncompressed.
    fn as_plain(&self) -> Option<&[T]>;
    /// Random access to row `i` (sparse row lists, sampled scans).
    fn index(&self, i: usize) -> T;
    /// Decode rows `start .. start + out.len()` into `out`, ascending.
    fn decode_into(&self, start: usize, out: &mut [T]);
}

impl<T: Copy> ScanSource<T> for [T] {
    #[inline]
    fn as_plain(&self) -> Option<&[T]> {
        Some(self)
    }
    #[inline]
    fn index(&self, i: usize) -> T {
        self[i]
    }
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [T]) {
        out.copy_from_slice(&self[start..start + out.len()]);
    }
}

impl<T: Copy> ScanSource<T> for Vec<T> {
    #[inline]
    fn as_plain(&self) -> Option<&[T]> {
        Some(self)
    }
    #[inline]
    fn index(&self, i: usize) -> T {
        self[i]
    }
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [T]) {
        out.copy_from_slice(&self[start..start + out.len()]);
    }
}

impl<T: PackedInt> ScanSource<T> for IntStorage<T> {
    #[inline]
    fn as_plain(&self) -> Option<&[T]> {
        IntStorage::as_plain(self)
    }
    #[inline]
    fn index(&self, i: usize) -> T {
        self.get(i)
    }
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [T]) {
        IntStorage::decode_into(self, start, out);
    }
}

/// A batch of selected rows, in ascending row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanChunk<'a> {
    /// Every row in `start..end` is selected.
    Range {
        /// First selected row.
        start: usize,
        /// One past the last selected row.
        end: usize,
    },
    /// Selected rows within the 64-row block starting at `base` (which is
    /// always 64-aligned): bit `b` set means row `base + b` is selected.
    /// The word is never zero.
    Mask {
        /// 64-aligned block start.
        base: usize,
        /// Selection bits for rows `base..base + 64`.
        word: u64,
    },
    /// Explicitly listed selected rows, sorted ascending.
    Rows(&'a [u32]),
}

/// Iterator over the [`ScanChunk`]s of a selection.
pub struct ScanChunks<'a> {
    inner: ChunksInner<'a>,
}

enum ChunksInner<'a> {
    Done,
    /// A single dense range, emitted once.
    Range(usize, usize),
    /// Bitmap words still to decompose.
    Words {
        words: &'a [u64],
        len: usize,
        idx: usize,
    },
    /// A single explicit row list, emitted once.
    Rows(&'a [u32]),
}

impl<'a> ScanChunks<'a> {
    fn range(start: usize, end: usize) -> Self {
        ScanChunks {
            inner: if start < end {
                ChunksInner::Range(start, end)
            } else {
                ChunksInner::Done
            },
        }
    }

    fn rows(rows: &'a [u32]) -> Self {
        ScanChunks {
            inner: if rows.is_empty() {
                ChunksInner::Done
            } else {
                ChunksInner::Rows(rows)
            },
        }
    }

    fn bitmap(bitmap: &'a Bitmap) -> Self {
        ScanChunks {
            inner: ChunksInner::Words {
                words: bitmap.words(),
                len: bitmap.len(),
                idx: 0,
            },
        }
    }
}

/// The all-ones pattern for word `idx` of a bitmap of `len` bits (the last
/// word of a non-multiple-of-64 bitmap has a shorter tail).
#[inline]
fn full_word(idx: usize, len: usize) -> u64 {
    let remaining = len - idx * 64;
    if remaining >= 64 {
        u64::MAX
    } else {
        (1u64 << remaining) - 1
    }
}

impl<'a> Iterator for ScanChunks<'a> {
    type Item = ScanChunk<'a>;

    fn next(&mut self) -> Option<ScanChunk<'a>> {
        match &mut self.inner {
            ChunksInner::Done => None,
            ChunksInner::Range(start, end) => {
                let chunk = ScanChunk::Range {
                    start: *start,
                    end: *end,
                };
                self.inner = ChunksInner::Done;
                Some(chunk)
            }
            ChunksInner::Rows(rows) => {
                let chunk = ScanChunk::Rows(rows);
                self.inner = ChunksInner::Done;
                Some(chunk)
            }
            ChunksInner::Words { words, len, idx } => {
                // Skip empty words.
                while *idx < words.len() && words[*idx] == 0 {
                    *idx += 1;
                }
                if *idx >= words.len() {
                    self.inner = ChunksInner::Done;
                    return None;
                }
                let w = words[*idx];
                if w == full_word(*idx, *len) {
                    // Coalesce a run of all-ones words into one dense range.
                    let start = *idx * 64;
                    let mut j = *idx + 1;
                    while j < words.len() && words[j] == full_word(j, *len) && words[j] != 0 {
                        j += 1;
                    }
                    let end = (j * 64).min(*len);
                    *idx = j;
                    Some(ScanChunk::Range { start, end })
                } else {
                    let base = *idx * 64;
                    *idx += 1;
                    Some(ScanChunk::Mask { base, word: w })
                }
            }
        }
    }
}

impl MembershipSet {
    /// Decompose this membership set into [`ScanChunk`]s: `Full` becomes one
    /// dense range, `Dense` becomes bitmap words with all-ones runs
    /// coalesced into ranges, `Sparse` becomes one explicit row list.
    pub fn chunks(&self) -> ScanChunks<'_> {
        match self {
            MembershipSet::Full(n) => ScanChunks::range(0, *n),
            MembershipSet::Dense(b) => ScanChunks::bitmap(b),
            MembershipSet::Sparse { rows, .. } => ScanChunks::rows(rows),
        }
    }
}

/// What a kernel scans: an entire membership set (streaming) or an explicit
/// sampled row list. Gives kernels one code path for both.
#[derive(Debug, Clone, Copy)]
pub enum Selection<'a> {
    /// Every row of the membership set.
    Members(&'a MembershipSet),
    /// A pre-drawn ascending row sample (e.g. from
    /// [`MembershipSet::sample`]).
    Rows(&'a [u32]),
}

impl<'a> Selection<'a> {
    /// Number of selected rows.
    pub fn count(&self) -> usize {
        match self {
            Selection::Members(m) => m.len(),
            Selection::Rows(r) => r.len(),
        }
    }

    /// The selection as chunks, ascending.
    pub fn chunks(&self) -> ScanChunks<'a> {
        match self {
            Selection::Members(m) => m.chunks(),
            Selection::Rows(r) => ScanChunks::rows(r),
        }
    }
}

/// The bits `[lo, hi)` of a 64-bit word, set.
#[inline]
fn mask_span(lo: usize, hi: usize) -> u64 {
    debug_assert!(lo <= hi && hi <= 64);
    if hi - lo == 64 {
        u64::MAX
    } else {
        ((1u64 << (hi - lo)) - 1) << lo
    }
}

/// Stream the non-null values of `data` at the selected rows into
/// `present`, adding the number of selected-but-null rows to `missing`.
///
/// This is the workhorse of every single-column kernel. Null handling is
/// word-granular: per 64-row block the driver fetches one null word, and
/// when a dense chunk has no nulls the inner loop is a plain slice
/// iteration the compiler can unroll/vectorize (the dense fast path).
pub fn scan_values<T: Copy + Default, S: ScanSource<T> + ?Sized>(
    sel: &Selection<'_>,
    data: &S,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    present: impl FnMut(T),
) {
    match data.as_plain() {
        Some(slice) => scan_values_plain(sel, slice, nulls, missing, present),
        None => scan_values_packed(sel, data, nulls, missing, present),
    }
}

fn scan_values_plain<T: Copy>(
    sel: &Selection<'_>,
    data: &[T],
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    mut present: impl FnMut(T),
) {
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => match nulls {
                // Dense fast path: no filter, no nulls — pure slice loop.
                None => {
                    for &v in &data[start..end] {
                        present(v);
                    }
                }
                Some(nb) => {
                    let mut r = start;
                    while r < end {
                        let w_idx = r / 64;
                        let w_end = ((w_idx + 1) * 64).min(end);
                        let nword = nb.word(w_idx);
                        if nword == 0 {
                            for &v in &data[r..w_end] {
                                present(v);
                            }
                        } else {
                            let span = mask_span(r - w_idx * 64, w_end - w_idx * 64);
                            *missing += (nword & span).count_ones() as u64;
                            let mut live = span & !nword;
                            while live != 0 {
                                let b = live.trailing_zeros() as usize;
                                live &= live - 1;
                                present(data[w_idx * 64 + b]);
                            }
                        }
                        r = w_end;
                    }
                }
            },
            ScanChunk::Mask { base, word } => {
                let nword = match nulls {
                    None => 0,
                    Some(nb) => nb.word(base / 64),
                };
                *missing += (word & nword).count_ones() as u64;
                let mut live = word & !nword;
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    live &= live - 1;
                    present(data[base + b]);
                }
            }
            ScanChunk::Rows(rows) => match nulls {
                None => {
                    for &r in rows {
                        present(data[r as usize]);
                    }
                }
                Some(nb) => {
                    for &r in rows {
                        if nb.get(r as usize) {
                            *missing += 1;
                        } else {
                            present(data[r as usize]);
                        }
                    }
                }
            },
        }
    }
}

/// The chunk-decoder path of [`scan_values`]: per 64-row block, decode the
/// selected span into a stack scratch buffer, then run the identical
/// word-granular null logic over the buffer. Rows are decoded in ascending
/// order, so the value stream matches the plain path exactly.
fn scan_values_packed<T: Copy + Default, S: ScanSource<T> + ?Sized>(
    sel: &Selection<'_>,
    data: &S,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    mut present: impl FnMut(T),
) {
    let mut scratch = [T::default(); 64];
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                let mut r = start;
                while r < end {
                    let w_idx = r / 64;
                    let w_end = ((w_idx + 1) * 64).min(end);
                    let buf = &mut scratch[..w_end - r];
                    data.decode_into(r, buf);
                    let nword = nulls.map_or(0, |nb| nb.word(w_idx));
                    if nword == 0 {
                        for &v in buf.iter() {
                            present(v);
                        }
                    } else {
                        let span = mask_span(r - w_idx * 64, w_end - w_idx * 64);
                        *missing += (nword & span).count_ones() as u64;
                        let mut live = span & !nword;
                        while live != 0 {
                            let b = live.trailing_zeros() as usize;
                            live &= live - 1;
                            present(buf[w_idx * 64 + b - r]);
                        }
                    }
                    r = w_end;
                }
            }
            ScanChunk::Mask { base, word } => {
                // Decode only up to the highest selected bit, so the scratch
                // never reads past the end of the column.
                let hi = 64 - word.leading_zeros() as usize;
                let buf = &mut scratch[..hi];
                data.decode_into(base, buf);
                let nword = nulls.map_or(0, |nb| nb.word(base / 64));
                *missing += (word & nword).count_ones() as u64;
                let mut live = word & !nword;
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    live &= live - 1;
                    present(buf[b]);
                }
            }
            ScanChunk::Rows(rows) => match nulls {
                None => {
                    for &r in rows {
                        present(data.index(r as usize));
                    }
                }
                Some(nb) => {
                    for &r in rows {
                        if nb.get(r as usize) {
                            *missing += 1;
                        } else {
                            present(data.index(r as usize));
                        }
                    }
                }
            },
        }
    }
}

/// Receiver for [`scan_value_runs`]: dense null-free runs arrive as whole
/// slices via [`RunSink::run`], everything else (masked words, null
/// neighborhoods, sparse rows) value-at-a-time via [`RunSink::one`].
pub trait RunSink<T> {
    /// A dense, null-free run of selected values.
    fn run(&mut self, run: &[T]);
    /// A single selected, non-null value.
    fn one(&mut self, v: T);
}

/// Like [`scan_values`], but dense null-free runs are handed to the sink
/// as whole slices instead of value-at-a-time. Kernels with heavy per-value
/// arithmetic (histogram bucketing) process such runs in blocks, separating
/// the arithmetic from their accumulator updates so the compiler can
/// pipeline or vectorize it.
///
/// Every selected non-null value reaches exactly one of the sink's two
/// methods, in ascending row order overall.
pub fn scan_value_runs<T: Copy + Default, D: ScanSource<T> + ?Sized, S: RunSink<T>>(
    sel: &Selection<'_>,
    data: &D,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    sink: &mut S,
) {
    match data.as_plain() {
        Some(slice) => scan_value_runs_plain(sel, slice, nulls, missing, sink),
        None => scan_value_runs_packed(sel, data, nulls, missing, sink),
    }
}

fn scan_value_runs_plain<T: Copy, S: RunSink<T>>(
    sel: &Selection<'_>,
    data: &[T],
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    sink: &mut S,
) {
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => match nulls {
                None => sink.run(&data[start..end]),
                Some(nb) => {
                    let mut r = start;
                    // Coalesce consecutive null-free words into one run.
                    let mut run_start = None;
                    while r < end {
                        let w_idx = r / 64;
                        let w_end = ((w_idx + 1) * 64).min(end);
                        let nword = nb.word(w_idx);
                        if nword == 0 {
                            run_start.get_or_insert(r);
                        } else {
                            if let Some(s) = run_start.take() {
                                sink.run(&data[s..r]);
                            }
                            let span = mask_span(r - w_idx * 64, w_end - w_idx * 64);
                            *missing += (nword & span).count_ones() as u64;
                            let mut live = span & !nword;
                            while live != 0 {
                                let b = live.trailing_zeros() as usize;
                                live &= live - 1;
                                sink.one(data[w_idx * 64 + b]);
                            }
                        }
                        r = w_end;
                    }
                    if let Some(s) = run_start.take() {
                        sink.run(&data[s..end]);
                    }
                }
            },
            ScanChunk::Mask { base, word } => {
                let nword = match nulls {
                    None => 0,
                    Some(nb) => nb.word(base / 64),
                };
                *missing += (word & nword).count_ones() as u64;
                let mut live = word & !nword;
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    live &= live - 1;
                    sink.one(data[base + b]);
                }
            }
            ScanChunk::Rows(rows) => match nulls {
                None => {
                    for &r in rows {
                        sink.one(data[r as usize]);
                    }
                }
                Some(nb) => {
                    for &r in rows {
                        if nb.get(r as usize) {
                            *missing += 1;
                        } else {
                            sink.one(data[r as usize]);
                        }
                    }
                }
            },
        }
    }
}

/// The chunk-decoder path of [`scan_value_runs`]: dense null-free 64-row
/// blocks are decoded into a stack scratch buffer and handed to the sink as
/// whole runs (at most 64 values each); everything else goes value-at-a-time
/// through [`RunSink::one`]. Same value stream as the plain path, in order.
fn scan_value_runs_packed<T: Copy + Default, D: ScanSource<T> + ?Sized, S: RunSink<T>>(
    sel: &Selection<'_>,
    data: &D,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    sink: &mut S,
) {
    let mut scratch = [T::default(); 64];
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                let mut r = start;
                while r < end {
                    let w_idx = r / 64;
                    let w_end = ((w_idx + 1) * 64).min(end);
                    let buf = &mut scratch[..w_end - r];
                    data.decode_into(r, buf);
                    let nword = nulls.map_or(0, |nb| nb.word(w_idx));
                    if nword == 0 {
                        sink.run(buf);
                    } else {
                        let span = mask_span(r - w_idx * 64, w_end - w_idx * 64);
                        *missing += (nword & span).count_ones() as u64;
                        let mut live = span & !nword;
                        while live != 0 {
                            let b = live.trailing_zeros() as usize;
                            live &= live - 1;
                            sink.one(buf[w_idx * 64 + b - r]);
                        }
                    }
                    r = w_end;
                }
            }
            ScanChunk::Mask { base, word } => {
                let hi = 64 - word.leading_zeros() as usize;
                let buf = &mut scratch[..hi];
                data.decode_into(base, buf);
                let nword = nulls.map_or(0, |nb| nb.word(base / 64));
                *missing += (word & nword).count_ones() as u64;
                let mut live = word & !nword;
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    live &= live - 1;
                    sink.one(buf[b]);
                }
            }
            ScanChunk::Rows(rows) => match nulls {
                None => {
                    for &r in rows {
                        sink.one(data.index(r as usize));
                    }
                }
                Some(nb) => {
                    for &r in rows {
                        if nb.get(r as usize) {
                            *missing += 1;
                        } else {
                            sink.one(data.index(r as usize));
                        }
                    }
                }
            },
        }
    }
}

/// Enumerate the selected row indexes, ascending. For kernels that must
/// touch several columns per row (heat maps, next-K): the membership probe
/// is amortized to chunk decoding but value access stays per-row.
pub fn scan_rows(sel: &Selection<'_>, mut f: impl FnMut(usize)) {
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                for r in start..end {
                    f(r);
                }
            }
            ScanChunk::Mask { base, word } => {
                let mut live = word;
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    live &= live - 1;
                    f(base + b);
                }
            }
            ScanChunk::Rows(rows) => {
                for &r in rows {
                    f(r as usize);
                }
            }
        }
    }
}

/// Count selected rows whose bit is set in `nulls`, touching no column
/// data at all — pure word-AND popcounts for dense selections.
pub fn count_missing(sel: &Selection<'_>, nulls: Option<&Bitmap>) -> u64 {
    let Some(nb) = nulls else {
        return 0;
    };
    let mut missing = 0u64;
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                let mut r = start;
                while r < end {
                    let w_idx = r / 64;
                    let w_end = ((w_idx + 1) * 64).min(end);
                    let span = mask_span(r - w_idx * 64, w_end - w_idx * 64);
                    missing += (nb.word(w_idx) & span).count_ones() as u64;
                    r = w_end;
                }
            }
            ScanChunk::Mask { base, word } => {
                missing += (word & nb.word(base / 64)).count_ones() as u64;
            }
            ScanChunk::Rows(rows) => {
                missing += rows.iter().filter(|&&r| nb.get(r as usize)).count() as u64;
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_rows(m: &MembershipSet) -> Vec<usize> {
        let mut out = Vec::new();
        scan_rows(&Selection::Members(m), |r| out.push(r));
        out
    }

    #[test]
    fn full_is_one_range() {
        let m = MembershipSet::full(100);
        let chunks: Vec<_> = m.chunks().collect();
        assert_eq!(chunks, vec![ScanChunk::Range { start: 0, end: 100 }]);
    }

    #[test]
    fn empty_full_yields_nothing() {
        let m = MembershipSet::full(0);
        assert_eq!(m.chunks().count(), 0);
    }

    #[test]
    fn sparse_is_one_rows_chunk() {
        let m = MembershipSet::from_rows(vec![3, 17, 64], 1000);
        let chunks: Vec<_> = m.chunks().collect();
        assert!(matches!(chunks.as_slice(), [ScanChunk::Rows(r)] if r == &[3, 17, 64]));
    }

    #[test]
    fn dense_coalesces_full_words_into_ranges() {
        // 320 rows: words 0,1 full; word 2 partial; word 3 full; word 4 empty.
        let mut bm = Bitmap::new(320);
        for i in 0..128 {
            bm.set(i);
        }
        bm.set(130);
        bm.set(190);
        for i in 192..256 {
            bm.set(i);
        }
        let m = MembershipSet::Dense(bm);
        let chunks: Vec<_> = m.chunks().collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], ScanChunk::Range { start: 0, end: 128 });
        assert!(matches!(chunks[1], ScanChunk::Mask { base: 128, .. }));
        assert_eq!(
            chunks[2],
            ScanChunk::Range {
                start: 192,
                end: 256
            }
        );
    }

    #[test]
    fn dense_full_tail_word_coalesces() {
        // 70 rows all set: last word is a 6-bit tail, still a Range.
        let bm = Bitmap::all_set(70);
        let m = MembershipSet::Dense(bm);
        let chunks: Vec<_> = m.chunks().collect();
        assert_eq!(chunks, vec![ScanChunk::Range { start: 0, end: 70 }]);
    }

    #[test]
    fn chunk_row_enumeration_matches_iter_for_all_reps() {
        for m in [
            MembershipSet::full(130),
            MembershipSet::from_rows((0..130).step_by(3).collect(), 130),
            MembershipSet::from_rows((0..130).step_by(31).collect(), 130),
            MembershipSet::from_rows(vec![], 130),
            {
                let mut bm = Bitmap::new(130);
                for i in 50..130 {
                    bm.set(i);
                }
                MembershipSet::Dense(bm)
            },
        ] {
            assert_eq!(chunk_rows(&m), m.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn scan_values_respects_null_words() {
        let data: Vec<i64> = (0..200).collect();
        let mut nulls = Bitmap::new(200);
        for i in (0..200).step_by(7) {
            nulls.set(i);
        }
        let m = MembershipSet::full(200);
        let mut missing = 0u64;
        let mut sum = 0i64;
        scan_values(
            &Selection::Members(&m),
            &data,
            Some(&nulls),
            &mut missing,
            |v| sum += v,
        );
        let expect_missing = (0..200).step_by(7).count() as u64;
        assert_eq!(missing, expect_missing);
        let expect_sum: i64 = (0..200).filter(|i| i % 7 != 0).sum();
        assert_eq!(sum, expect_sum);
    }

    #[test]
    fn scan_values_dense_fast_path() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let m = MembershipSet::full(1000);
        let mut missing = 0u64;
        let mut n = 0usize;
        scan_values(&Selection::Members(&m), &data, None, &mut missing, |_| {
            n += 1
        });
        assert_eq!(n, 1000);
        assert_eq!(missing, 0);
    }

    #[test]
    fn scan_values_sampled_rows() {
        let data: Vec<i64> = (0..100).collect();
        let mut nulls = Bitmap::new(100);
        nulls.set(10);
        let rows: Vec<u32> = vec![5, 10, 20];
        let mut missing = 0u64;
        let mut seen = Vec::new();
        scan_values(
            &Selection::Rows(&rows),
            &data,
            Some(&nulls),
            &mut missing,
            |v| seen.push(v),
        );
        assert_eq!(missing, 1);
        assert_eq!(seen, vec![5, 20]);
    }

    #[test]
    fn count_missing_agrees_with_scan() {
        let mut nulls = Bitmap::new(500);
        for i in (0..500).step_by(13) {
            nulls.set(i);
        }
        for m in [
            MembershipSet::full(500),
            MembershipSet::from_rows((100..400).collect(), 500),
            MembershipSet::from_rows((0..500).step_by(29).collect(), 500),
        ] {
            let sel = Selection::Members(&m);
            let fast = count_missing(&sel, Some(&nulls));
            let slow = m.iter().filter(|&r| nulls.get(r)).count() as u64;
            assert_eq!(fast, slow);
        }
        assert_eq!(
            count_missing(&Selection::Members(&MembershipSet::full(500)), None),
            0
        );
    }

    #[test]
    fn selection_count_matches() {
        let m = MembershipSet::from_rows(vec![1, 5, 9], 10);
        assert_eq!(Selection::Members(&m).count(), 3);
        assert_eq!(Selection::Rows(&[1, 2]).count(), 2);
    }
}
