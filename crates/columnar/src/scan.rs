//! Chunked columnar scans: batch row selection for vizketch kernels.
//!
//! The per-row scan interface (`MembershipSet::iter` + `Column::get(i) ->
//! Option<T>`) pays a membership probe, a bounds check, and an `Option`
//! branch on *every cell*. That is far from the paper's claim that
//! `summarize` loops run "as fast as the hardware allows" (§5, App. C).
//! This module provides the batch alternative every sketch kernel is built
//! on:
//!
//! * [`ScanChunk`] — a batch of selected rows in one of three shapes:
//!   a dense row range (`Range`), a 64-row bitmap word (`Mask`), or an
//!   explicit sorted index list (`Rows`).
//! * [`MembershipSet::chunks`] — decomposes any membership representation
//!   into chunks, coalescing consecutive all-ones bitmap words into dense
//!   ranges.
//! * [`Selection`] — unifies "scan the whole membership" and "scan these
//!   sampled rows" so kernels have a single streaming/sampled code path.
//!   [`Selection::members_in`] additionally bounds a membership set to a
//!   row-index range, which is how split sub-ranges reuse the same drivers.
//! * [`SplittableSelection`] — the chunk partitioner behind intra-partition
//!   parallelism: it divides any membership representation into balanced,
//!   row-weighted sub-ranges (halving recursively) *without materializing
//!   row ids*, so a work-stealing executor can fan a single partition out
//!   across cores and fold the partial summaries back in range order.
//! * [`scan_values`] / [`scan_value_runs`] / [`scan_rows`] /
//!   [`count_missing`] — typed drivers built on **one block loop**
//!   ([`crate::block::scan_blocks`]): every selection shape decodes into
//!   64-row-aligned [`Block`] frames (value lanes +
//!   selection word + validity word), with one null-word fetch per frame
//!   and a branch-free inner loop whenever a frame is fully live (the
//!   *dense fast path*). Plain storage borrows its lanes zero-copy; packed
//!   storages decode whole frames through the encoding layer's block
//!   decoders. There is no per-variant driver duplication — the `Block`
//!   ABI is the only interface between storage and kernels.
//!
//! Chunks are always emitted in ascending row order and never overlap, so
//! order-sensitive kernels (Misra-Gries, next-K) observe exactly the same
//! row sequence as the per-row reference path — the scan-equivalence
//! property tests in `hillview-sketch` rely on that. A bounded selection
//! emits exactly the chunks of the unbounded one clipped to the range, so
//! concatenating the value streams of adjacent sub-ranges reproduces the
//! whole-partition stream verbatim.

use crate::bitmap::Bitmap;
use crate::block::{scan_blocks, Block, BlockSink, BLOCK_ROWS};
use crate::encoding::{IntStorage, PackedInt};
use crate::membership::MembershipSet;
use crate::predicate::FrameFilter;

/// What a typed scan driver reads values from: either a plain slice (raw
/// column data, hash tables, scratch vectors) or an encoded
/// [`IntStorage`]. The block driver pulls 64-row-aligned frames through
/// [`ScanSource::decode_frame`] — plain sources return a zero-copy
/// sub-slice, packed sources decode into the caller's frame buffer — and
/// serves sparse row lists through [`ScanSource::index_run`].
///
/// `decode_frame` doubles as the pipeline's *residency hook*: a mapped
/// (`hvc` v3) storage touches only the file chunks covering the requested
/// frame (see [`crate::residency`]), and [`ScanSource::as_plain`] returns
/// `None` for it so no caller binds the whole payload. Since the fused
/// filter path evaluates zone maps and drops all-fail selection words
/// *before* asking for a frame, a zone-skipped block of a mapped column is
/// never faulted in at all.
pub trait ScanSource<T: Copy> {
    /// The contiguous backing slice, when the storage is uncompressed and
    /// fully resident (mapped storage declines, keeping scans
    /// frame-granular so lazy residency is preserved).
    fn as_plain(&self) -> Option<&[T]>;
    /// Random access to row `i` (sparse row lists, sampled scans).
    fn index(&self, i: usize) -> T;
    /// Random access tuned for *ascending* row sequences. `cursor` is
    /// opaque scan-local state (initialize to 0 and reuse across calls of
    /// one scan); run-length storage uses it to resume from the current run
    /// instead of binary-searching per row, making sparse and sampled scans
    /// O(1) amortized. Falling back to [`ScanSource::index`] is always
    /// correct.
    #[inline]
    fn index_ascending(&self, cursor: &mut usize, i: usize) -> T {
        let _ = cursor;
        self.index(i)
    }
    /// Ascending access returning `(value, exclusive end of the run of
    /// rows sharing it)`. Run-length storage reports whole runs so sparse
    /// scans probe once per run; other sources report single-row runs.
    #[inline]
    fn index_run(&self, cursor: &mut usize, i: usize) -> (T, usize) {
        (self.index_ascending(cursor, i), i + 1)
    }
    /// Decode rows `start .. start + out.len()` into `out`, ascending.
    fn decode_into(&self, start: usize, out: &mut [T]);
    /// Decoded lanes of the 64-row-aligned frame `base .. base + len`
    /// (`len <= 64`): zero-copy for plain sources, materialized into `buf`
    /// otherwise. `cursor` is the same ascending state as
    /// [`ScanSource::index_run`]. This is the block ABI's decode entry
    /// point; frames must be requested in ascending order.
    #[inline]
    fn decode_frame<'a>(
        &'a self,
        cursor: &mut usize,
        base: usize,
        len: usize,
        buf: &'a mut [T; BLOCK_ROWS],
    ) -> &'a [T] {
        let _ = cursor;
        self.decode_into(base, &mut buf[..len]);
        &buf[..len]
    }
}

impl<T: Copy> ScanSource<T> for [T] {
    #[inline]
    fn as_plain(&self) -> Option<&[T]> {
        Some(self)
    }
    #[inline]
    fn index(&self, i: usize) -> T {
        self[i]
    }
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [T]) {
        out.copy_from_slice(&self[start..start + out.len()]);
    }
    #[inline]
    fn decode_frame<'a>(
        &'a self,
        _cursor: &mut usize,
        base: usize,
        len: usize,
        _buf: &'a mut [T; BLOCK_ROWS],
    ) -> &'a [T] {
        &self[base..base + len]
    }
}

impl<T: Copy> ScanSource<T> for Vec<T> {
    #[inline]
    fn as_plain(&self) -> Option<&[T]> {
        Some(self)
    }
    #[inline]
    fn index(&self, i: usize) -> T {
        self[i]
    }
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [T]) {
        out.copy_from_slice(&self[start..start + out.len()]);
    }
    #[inline]
    fn decode_frame<'a>(
        &'a self,
        _cursor: &mut usize,
        base: usize,
        len: usize,
        _buf: &'a mut [T; BLOCK_ROWS],
    ) -> &'a [T] {
        &self[base..base + len]
    }
}

impl<T: PackedInt> ScanSource<T> for IntStorage<T> {
    #[inline]
    fn as_plain(&self) -> Option<&[T]> {
        IntStorage::as_plain(self)
    }
    #[inline]
    fn index(&self, i: usize) -> T {
        self.get(i)
    }
    #[inline]
    fn index_ascending(&self, cursor: &mut usize, i: usize) -> T {
        IntStorage::get_ascending(self, cursor, i)
    }
    #[inline]
    fn index_run(&self, cursor: &mut usize, i: usize) -> (T, usize) {
        IntStorage::run_at(self, cursor, i)
    }
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [T]) {
        IntStorage::decode_into(self, start, out);
    }
    #[inline]
    fn decode_frame<'a>(
        &'a self,
        cursor: &mut usize,
        base: usize,
        len: usize,
        buf: &'a mut [T; BLOCK_ROWS],
    ) -> &'a [T] {
        IntStorage::decode_frame(self, cursor, base, len, buf)
    }
}

/// A batch of selected rows, in ascending row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanChunk<'a> {
    /// Every row in `start..end` is selected.
    Range {
        /// First selected row.
        start: usize,
        /// One past the last selected row.
        end: usize,
    },
    /// Selected rows within the 64-row block starting at `base` (which is
    /// always 64-aligned): bit `b` set means row `base + b` is selected.
    /// The word is never zero.
    Mask {
        /// 64-aligned block start.
        base: usize,
        /// Selection bits for rows `base..base + 64`.
        word: u64,
    },
    /// Explicitly listed selected rows, sorted ascending.
    Rows(&'a [u32]),
}

/// Iterator over the [`ScanChunk`]s of a selection.
pub struct ScanChunks<'a> {
    inner: ChunksInner<'a>,
}

enum ChunksInner<'a> {
    Done,
    /// A single dense range, emitted once.
    Range(usize, usize),
    /// Bitmap words still to decompose, clipped to rows `lo..hi`.
    Words {
        words: &'a [u64],
        idx: usize,
        lo: usize,
        hi: usize,
    },
    /// A single explicit row list, emitted once.
    Rows(&'a [u32]),
    /// Fused filtering: parent chunks are decomposed into 64-row selection
    /// words, each word is run through the [`FrameFilter`], and only
    /// non-zero match words are yielded as [`ScanChunk::Mask`].
    Filtered {
        inner: Box<ScanChunks<'a>>,
        filter: &'a core::cell::RefCell<FrameFilter<'a>>,
        pending: FilteredPending<'a>,
    },
}

/// The partially consumed parent chunk of a filtered iterator.
enum FilteredPending<'a> {
    None,
    /// Remaining rows `.0 .. .1` of a parent range chunk.
    Range(usize, usize),
    /// Remaining rows of a parent sparse chunk.
    Rows(&'a [u32]),
}

impl<'a> ScanChunks<'a> {
    fn range(start: usize, end: usize) -> Self {
        ScanChunks {
            inner: if start < end {
                ChunksInner::Range(start, end)
            } else {
                ChunksInner::Done
            },
        }
    }

    fn rows(rows: &'a [u32]) -> Self {
        ScanChunks {
            inner: if rows.is_empty() {
                ChunksInner::Done
            } else {
                ChunksInner::Rows(rows)
            },
        }
    }

    fn bitmap(bitmap: &'a Bitmap) -> Self {
        Self::bitmap_bounded(bitmap, 0, bitmap.len())
    }

    /// The chunks of `bitmap` clipped to rows `lo..hi`: exactly the
    /// unbounded chunk stream with out-of-range rows removed.
    fn bitmap_bounded(bitmap: &'a Bitmap, lo: usize, hi: usize) -> Self {
        let hi = hi.min(bitmap.len());
        ScanChunks {
            inner: if lo >= hi {
                ChunksInner::Done
            } else {
                ChunksInner::Words {
                    words: bitmap.words(),
                    idx: lo / 64,
                    lo,
                    hi,
                }
            },
        }
    }
}

/// The selectable bits of word `idx` for rows clipped to `lo..hi`: the
/// intersection of the word's 64-row span with the bounds. Zero only when
/// the word lies entirely outside the bounds.
#[inline]
fn word_span(idx: usize, lo: usize, hi: usize) -> u64 {
    let base = idx * 64;
    let s = lo.max(base).min(base + 64) - base;
    let e = hi.max(base).min(base + 64) - base;
    if s >= e {
        0
    } else {
        mask_span(s, e)
    }
}

impl<'a> Iterator for ScanChunks<'a> {
    type Item = ScanChunk<'a>;

    fn next(&mut self) -> Option<ScanChunk<'a>> {
        match &mut self.inner {
            ChunksInner::Done => None,
            ChunksInner::Range(start, end) => {
                let chunk = ScanChunk::Range {
                    start: *start,
                    end: *end,
                };
                self.inner = ChunksInner::Done;
                Some(chunk)
            }
            ChunksInner::Rows(rows) => {
                let chunk = ScanChunk::Rows(rows);
                self.inner = ChunksInner::Done;
                Some(chunk)
            }
            ChunksInner::Words { words, idx, lo, hi } => {
                // Skip words with no selected bits in bounds.
                let mut w = 0u64;
                while *idx * 64 < *hi {
                    w = words.get(*idx).copied().unwrap_or(0) & word_span(*idx, *lo, *hi);
                    if w != 0 {
                        break;
                    }
                    *idx += 1;
                }
                if *idx * 64 >= *hi {
                    self.inner = ChunksInner::Done;
                    return None;
                }
                if w == word_span(*idx, *lo, *hi) {
                    // Coalesce a run of fully selected spans into one range.
                    let start = (*idx * 64).max(*lo);
                    let mut j = *idx + 1;
                    while j * 64 < *hi {
                        let span = word_span(j, *lo, *hi);
                        if words.get(j).copied().unwrap_or(0) & span == span && span != 0 {
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    let end = (j * 64).min(*hi);
                    *idx = j;
                    Some(ScanChunk::Range { start, end })
                } else {
                    let base = *idx * 64;
                    *idx += 1;
                    Some(ScanChunk::Mask { base, word: w })
                }
            }
            ChunksInner::Filtered {
                inner,
                filter,
                pending,
            } => {
                let mut f = filter.borrow_mut();
                loop {
                    // Produce the next 64-row (base, selection word) pair of
                    // the parent selection.
                    let (base, word) = match pending {
                        FilteredPending::Range(s, e) => {
                            let base = *s & !63;
                            let end = (*e).min(base + 64);
                            let w = mask_span(*s - base, end - base);
                            if end < *e {
                                *s = end;
                            } else {
                                *pending = FilteredPending::None;
                            }
                            (base, w)
                        }
                        FilteredPending::Rows(rows) => {
                            let base = rows[0] as usize & !63;
                            let mut k = 0;
                            let mut w = 0u64;
                            while k < rows.len() && (rows[k] as usize) < base + 64 {
                                w |= 1u64 << (rows[k] as usize - base);
                                k += 1;
                            }
                            if k < rows.len() {
                                *rows = &rows[k..];
                            } else {
                                *pending = FilteredPending::None;
                            }
                            (base, w)
                        }
                        FilteredPending::None => match inner.next() {
                            None => return None,
                            Some(ScanChunk::Range { start, end }) => {
                                *pending = FilteredPending::Range(start, end);
                                continue;
                            }
                            Some(ScanChunk::Rows(rows)) => {
                                if rows.is_empty() {
                                    continue;
                                }
                                *pending = FilteredPending::Rows(rows);
                                continue;
                            }
                            Some(ScanChunk::Mask { base, word }) => (base, word),
                        },
                    };
                    // Words the predicate zeroes out (zone-map skips,
                    // no-match blocks) are dropped here: the kernel never
                    // sees — and never decodes — those blocks.
                    let m = f.eval_word(base, word);
                    if m != 0 {
                        return Some(ScanChunk::Mask { base, word: m });
                    }
                }
            }
        }
    }
}

impl MembershipSet {
    /// Decompose this membership set into [`ScanChunk`]s: `Full` becomes one
    /// dense range, `Dense` becomes bitmap words with all-ones runs
    /// coalesced into ranges, `Sparse` becomes one explicit row list.
    pub fn chunks(&self) -> ScanChunks<'_> {
        match self {
            MembershipSet::Full(n) => ScanChunks::range(0, *n),
            MembershipSet::Dense(b) => ScanChunks::bitmap(b),
            MembershipSet::Sparse { rows, .. } => ScanChunks::rows(rows),
        }
    }
}

/// The sub-slice of a sorted row list whose rows lie in `lo..hi` — two
/// binary searches, no copying. Used to clip pre-drawn samples (and sparse
/// memberships) to a split sub-range.
pub fn rows_in_range(rows: &[u32], lo: usize, hi: usize) -> &[u32] {
    let a = rows.partition_point(|&r| (r as usize) < lo);
    let b = rows.partition_point(|&r| (r as usize) < hi);
    &rows[a..b]
}

/// What a kernel scans: an entire membership set (streaming), a row-bounded
/// slice of one (split sub-ranges), or an explicit sampled row list. Gives
/// kernels one code path for all three.
#[derive(Debug, Clone, Copy)]
pub enum Selection<'a> {
    /// Every row of the membership set.
    Members(&'a MembershipSet),
    /// The rows of the membership set whose index lies in `start..end`.
    /// Build through [`Selection::members_in`], which normalizes the cheap
    /// cases (full bounds, sparse sets) to the other variants.
    MemberRange {
        /// The underlying membership set.
        members: &'a MembershipSet,
        /// First row index of the bounds.
        start: usize,
        /// One past the last row index of the bounds.
        end: usize,
    },
    /// A pre-drawn ascending row sample (e.g. from
    /// [`MembershipSet::sample`]).
    Rows(&'a [u32]),
    /// A **fused** selection: the rows of `base` that additionally pass a
    /// compiled predicate, evaluated lazily inside the chunk iterator.
    ///
    /// Each parent chunk is decomposed into 64-row selection words, the
    /// [`FrameFilter`] turns every word into its match word, and only
    /// non-zero match words are yielded (as [`ScanChunk::Mask`]) — so a
    /// block the predicate rejects (e.g. by zone map) is never decoded by
    /// the consuming kernel at all. This is what compiles a
    /// `(predicate, sketch)` pair into a single memory pass: no
    /// intermediate membership set, no second decode.
    ///
    /// Single-pass: `chunks()` may be called once; `count()` panics — read
    /// [`FrameFilter::matched`] after the scan instead.
    Filtered {
        /// The parent selection being filtered.
        base: &'a Selection<'a>,
        /// The compiled filter (shared mutable state: decode cursors and
        /// the matched-row counter advance as the scan proceeds).
        filter: &'a core::cell::RefCell<FrameFilter<'a>>,
    },
}

impl<'a> Selection<'a> {
    /// The rows of `members` with index in `lo..hi` (clamped to the
    /// universe). Scanning `members_in` pieces over a partition of the
    /// universe yields exactly the row stream of `Members`, in order —
    /// that equivalence is what makes split execution safe.
    pub fn members_in(members: &'a MembershipSet, lo: usize, hi: usize) -> Selection<'a> {
        let hi = hi.min(members.universe());
        let lo = lo.min(hi);
        if lo == 0 && hi == members.universe() {
            return Selection::Members(members);
        }
        match members {
            // Sparse sets clip to a sub-slice of the row list for free.
            MembershipSet::Sparse { rows, .. } => Selection::Rows(rows_in_range(rows, lo, hi)),
            _ => Selection::MemberRange {
                members,
                start: lo,
                end: hi,
            },
        }
    }

    /// Number of selected rows.
    ///
    /// Panics on [`Selection::Filtered`]: the filtered row count only
    /// exists after the (single) scan — read [`FrameFilter::matched`] then.
    pub fn count(&self) -> usize {
        match self {
            Selection::Members(m) => m.len(),
            Selection::MemberRange {
                members,
                start,
                end,
            } => members.count_range(*start, *end),
            Selection::Rows(r) => r.len(),
            Selection::Filtered { .. } => panic!(
                "Selection::Filtered is single-pass: its row count is only known after \
                 the scan — read FrameFilter::matched() instead of count()"
            ),
        }
    }

    /// The selection as chunks, ascending.
    pub fn chunks(&self) -> ScanChunks<'a> {
        match self {
            Selection::Members(m) => m.chunks(),
            Selection::MemberRange {
                members,
                start,
                end,
            } => match members {
                MembershipSet::Full(n) => ScanChunks::range(*start, (*end).min(*n)),
                MembershipSet::Dense(b) => ScanChunks::bitmap_bounded(b, *start, *end),
                MembershipSet::Sparse { rows, .. } => {
                    ScanChunks::rows(rows_in_range(rows, *start, *end))
                }
            },
            Selection::Rows(r) => ScanChunks::rows(r),
            Selection::Filtered { base, filter } => {
                filter.borrow_mut().begin();
                ScanChunks {
                    inner: ChunksInner::Filtered {
                        inner: Box::new(base.chunks()),
                        filter,
                        pending: FilteredPending::None,
                    },
                }
            }
        }
    }
}

/// A row-bounded view of a membership set that an executor can divide into
/// balanced, row-weighted halves — the chunk partitioner for
/// intra-partition parallelism.
///
/// Splitting never materializes row ids: full sets halve their range,
/// dense sets cut at a popcount-balanced 64-row word boundary, and sparse
/// sets halve their row slice by index. Weights are conserved exactly
/// (`left.weight() + right.weight() == self.weight()`), so an executor can
/// detect completion by summing reported weights, and the leaf set produced
/// by recursive splitting is a pure function of (membership, grain) —
/// independent of thread count or stealing order, which is what pins
/// parallel results bit-identical to the serial split fold.
#[derive(Debug, Clone, Copy)]
pub struct SplittableSelection<'a> {
    members: &'a MembershipSet,
    start: usize,
    end: usize,
    weight: usize,
}

impl<'a> SplittableSelection<'a> {
    /// The whole membership set as one splittable piece.
    pub fn new(members: &'a MembershipSet) -> Self {
        SplittableSelection {
            members,
            start: 0,
            end: members.universe(),
            weight: members.len(),
        }
    }

    /// A bounded piece; the weight is computed (O(words) worst case).
    pub fn with_bounds(members: &'a MembershipSet, start: usize, end: usize) -> Self {
        let end = end.min(members.universe());
        let start = start.min(end);
        SplittableSelection {
            members,
            start,
            end,
            weight: members.count_range(start, end),
        }
    }

    /// Rebuild a piece from bounds plus an already-known weight (executors
    /// ship `(start, end, weight)` across task boundaries).
    pub fn with_weight(
        members: &'a MembershipSet,
        start: usize,
        end: usize,
        weight: usize,
    ) -> Self {
        debug_assert_eq!(weight, members.count_range(start, end));
        SplittableSelection {
            members,
            start,
            end,
            weight,
        }
    }

    /// The universe row bounds `[start, end)` of this piece.
    pub fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Selected rows within the bounds.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// The piece as a driver [`Selection`].
    pub fn selection(&self) -> Selection<'a> {
        Selection::members_in(self.members, self.start, self.end)
    }

    /// Split into two pieces of roughly equal weight. Returns `None` when
    /// the piece cannot be split further (weight < 2, or — for dense sets —
    /// all weight concentrated in a single 64-row word).
    pub fn split(&self) -> Option<(Self, Self)> {
        if self.weight < 2 {
            return None;
        }
        let (mid, left_weight) = match self.members {
            MembershipSet::Full(_) => {
                let mid = self.start + (self.end - self.start) / 2;
                (mid, mid - self.start)
            }
            MembershipSet::Sparse { rows, .. } => {
                let a = rows.partition_point(|&r| (r as usize) < self.start);
                let m = a + self.weight / 2;
                (rows[m] as usize, self.weight / 2)
            }
            MembershipSet::Dense(b) => {
                // Walk words accumulating popcount; cut at the first word
                // boundary at or past half the weight that leaves both
                // sides non-empty.
                let target = (self.weight / 2).max(1);
                let words = b.words();
                let mut acc = 0usize;
                let mut w = self.start / 64;
                let mut cut = None;
                while w * 64 < self.end {
                    let span = word_span(w, self.start, self.end.min(b.len()));
                    let prev = acc;
                    acc += (words.get(w).copied().unwrap_or(0) & span).count_ones() as usize;
                    if acc >= target {
                        let after = ((w + 1) * 64).min(self.end);
                        if after < self.end && acc < self.weight {
                            cut = Some((after, acc));
                        } else if prev > 0 && w * 64 > self.start {
                            cut = Some((w * 64, prev));
                        }
                        break;
                    }
                    w += 1;
                }
                cut?
            }
        };
        if left_weight == 0 || left_weight >= self.weight {
            return None;
        }
        debug_assert!(self.start < mid && mid < self.end);
        Some((
            SplittableSelection {
                members: self.members,
                start: self.start,
                end: mid,
                weight: left_weight,
            },
            SplittableSelection {
                members: self.members,
                start: mid,
                end: self.end,
                weight: self.weight - left_weight,
            },
        ))
    }
}

use crate::bitmap::span_mask as mask_span;

/// Stream the non-null values of `data` at the selected rows into
/// `present`, adding the number of selected-but-null rows to `missing`.
///
/// This is the workhorse of every single-column kernel, a thin adapter
/// over the block driver ([`crate::block::scan_blocks`]): fully-live
/// frames stream their lanes branch-free (the dense fast path), partial
/// frames iterate their live bits, sparse rows arrive per value.
pub fn scan_values<T: Copy + Default, S: ScanSource<T> + ?Sized>(
    sel: &Selection<'_>,
    data: &S,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    present: impl FnMut(T),
) {
    struct Values<T, F: FnMut(T)> {
        f: F,
        _t: std::marker::PhantomData<fn(T)>,
    }
    impl<T: Copy, F: FnMut(T)> BlockSink<T> for Values<T, F> {
        #[inline]
        fn block(&mut self, b: &Block<'_, T>) {
            if b.all_live() {
                for &v in b.values {
                    (self.f)(v);
                }
            } else {
                let mut live = b.live();
                while live != 0 {
                    let k = live.trailing_zeros() as usize;
                    live &= live - 1;
                    (self.f)(b.values[k]);
                }
            }
        }
        #[inline]
        fn one(&mut self, _row: usize, v: T) {
            (self.f)(v);
        }
    }
    let mut sink = Values {
        f: present,
        _t: std::marker::PhantomData,
    };
    scan_blocks(sel, data, nulls, missing, &mut sink);
}

/// Receiver for [`scan_value_runs`]: dense null-free runs arrive as whole
/// slices via [`RunSink::run`], everything else (masked words, null
/// neighborhoods, sparse rows) value-at-a-time via [`RunSink::one`].
pub trait RunSink<T> {
    /// A dense, null-free run of selected values.
    fn run(&mut self, run: &[T]);
    /// A single selected, non-null value.
    fn one(&mut self, v: T);
}

/// Like [`scan_values`], but fully-live frames are handed to the sink as
/// whole decoded slices (at most 64 values) instead of value-at-a-time —
/// the slice-level face of the block pipeline for consumers that want
/// blocked arithmetic without tracking words. The in-tree hot kernels
/// (histogram, moments) implement [`BlockSink`] directly instead, which
/// additionally exposes each frame's selection and validity words.
///
/// Every selected non-null value reaches exactly one of the sink's two
/// methods, in ascending row order overall.
pub fn scan_value_runs<T: Copy + Default, D: ScanSource<T> + ?Sized, S: RunSink<T>>(
    sel: &Selection<'_>,
    data: &D,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    sink: &mut S,
) {
    struct Runs<'s, T, S: RunSink<T>> {
        sink: &'s mut S,
        _t: std::marker::PhantomData<fn(T)>,
    }
    impl<T: Copy, S: RunSink<T>> BlockSink<T> for Runs<'_, T, S> {
        #[inline]
        fn block(&mut self, b: &Block<'_, T>) {
            if b.all_live() {
                self.sink.run(b.values);
            } else {
                let mut live = b.live();
                while live != 0 {
                    let k = live.trailing_zeros() as usize;
                    live &= live - 1;
                    self.sink.one(b.values[k]);
                }
            }
        }
        #[inline]
        fn one(&mut self, _row: usize, v: T) {
            self.sink.one(v);
        }
    }
    let mut adapter = Runs {
        sink,
        _t: std::marker::PhantomData,
    };
    scan_blocks(sel, data, nulls, missing, &mut adapter);
}

/// Enumerate the selected row indexes, ascending. For kernels that must
/// touch several columns per row (heat maps, next-K): the membership probe
/// is amortized to chunk decoding but value access stays per-row.
pub fn scan_rows(sel: &Selection<'_>, mut f: impl FnMut(usize)) {
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                for r in start..end {
                    f(r);
                }
            }
            ScanChunk::Mask { base, word } => {
                let mut live = word;
                while live != 0 {
                    let b = live.trailing_zeros() as usize;
                    live &= live - 1;
                    f(base + b);
                }
            }
            ScanChunk::Rows(rows) => {
                for &r in rows {
                    f(r as usize);
                }
            }
        }
    }
}

/// Count selected rows whose bit is set in `nulls`, touching no column
/// data at all — pure word-AND popcounts for dense selections.
pub fn count_missing(sel: &Selection<'_>, nulls: Option<&Bitmap>) -> u64 {
    let Some(nb) = nulls else {
        return 0;
    };
    let mut missing = 0u64;
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                let mut r = start;
                while r < end {
                    let w_idx = r / 64;
                    let w_end = ((w_idx + 1) * 64).min(end);
                    let span = mask_span(r - w_idx * 64, w_end - w_idx * 64);
                    missing += (nb.word(w_idx) & span).count_ones() as u64;
                    r = w_end;
                }
            }
            ScanChunk::Mask { base, word } => {
                missing += (word & nb.word(base / 64)).count_ones() as u64;
            }
            ScanChunk::Rows(rows) => {
                missing += rows.iter().filter(|&&r| nb.get(r as usize)).count() as u64;
            }
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_rows(m: &MembershipSet) -> Vec<usize> {
        let mut out = Vec::new();
        scan_rows(&Selection::Members(m), |r| out.push(r));
        out
    }

    #[test]
    fn full_is_one_range() {
        let m = MembershipSet::full(100);
        let chunks: Vec<_> = m.chunks().collect();
        assert_eq!(chunks, vec![ScanChunk::Range { start: 0, end: 100 }]);
    }

    #[test]
    fn empty_full_yields_nothing() {
        let m = MembershipSet::full(0);
        assert_eq!(m.chunks().count(), 0);
    }

    #[test]
    fn sparse_is_one_rows_chunk() {
        let m = MembershipSet::from_rows(vec![3, 17, 64], 1000);
        let chunks: Vec<_> = m.chunks().collect();
        assert!(matches!(chunks.as_slice(), [ScanChunk::Rows(r)] if r == &[3, 17, 64]));
    }

    #[test]
    fn dense_coalesces_full_words_into_ranges() {
        // 320 rows: words 0,1 full; word 2 partial; word 3 full; word 4 empty.
        let mut bm = Bitmap::new(320);
        for i in 0..128 {
            bm.set(i);
        }
        bm.set(130);
        bm.set(190);
        for i in 192..256 {
            bm.set(i);
        }
        let m = MembershipSet::Dense(bm);
        let chunks: Vec<_> = m.chunks().collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0], ScanChunk::Range { start: 0, end: 128 });
        assert!(matches!(chunks[1], ScanChunk::Mask { base: 128, .. }));
        assert_eq!(
            chunks[2],
            ScanChunk::Range {
                start: 192,
                end: 256
            }
        );
    }

    #[test]
    fn dense_full_tail_word_coalesces() {
        // 70 rows all set: last word is a 6-bit tail, still a Range.
        let bm = Bitmap::all_set(70);
        let m = MembershipSet::Dense(bm);
        let chunks: Vec<_> = m.chunks().collect();
        assert_eq!(chunks, vec![ScanChunk::Range { start: 0, end: 70 }]);
    }

    #[test]
    fn chunk_row_enumeration_matches_iter_for_all_reps() {
        for m in [
            MembershipSet::full(130),
            MembershipSet::from_rows((0..130).step_by(3).collect(), 130),
            MembershipSet::from_rows((0..130).step_by(31).collect(), 130),
            MembershipSet::from_rows(vec![], 130),
            {
                let mut bm = Bitmap::new(130);
                for i in 50..130 {
                    bm.set(i);
                }
                MembershipSet::Dense(bm)
            },
        ] {
            assert_eq!(chunk_rows(&m), m.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn scan_values_respects_null_words() {
        let data: Vec<i64> = (0..200).collect();
        let mut nulls = Bitmap::new(200);
        for i in (0..200).step_by(7) {
            nulls.set(i);
        }
        let m = MembershipSet::full(200);
        let mut missing = 0u64;
        let mut sum = 0i64;
        scan_values(
            &Selection::Members(&m),
            &data,
            Some(&nulls),
            &mut missing,
            |v| sum += v,
        );
        let expect_missing = (0..200).step_by(7).count() as u64;
        assert_eq!(missing, expect_missing);
        let expect_sum: i64 = (0..200).filter(|i| i % 7 != 0).sum();
        assert_eq!(sum, expect_sum);
    }

    #[test]
    fn scan_values_dense_fast_path() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let m = MembershipSet::full(1000);
        let mut missing = 0u64;
        let mut n = 0usize;
        scan_values(&Selection::Members(&m), &data, None, &mut missing, |_| {
            n += 1
        });
        assert_eq!(n, 1000);
        assert_eq!(missing, 0);
    }

    #[test]
    fn scan_values_sampled_rows() {
        let data: Vec<i64> = (0..100).collect();
        let mut nulls = Bitmap::new(100);
        nulls.set(10);
        let rows: Vec<u32> = vec![5, 10, 20];
        let mut missing = 0u64;
        let mut seen = Vec::new();
        scan_values(
            &Selection::Rows(&rows),
            &data,
            Some(&nulls),
            &mut missing,
            |v| seen.push(v),
        );
        assert_eq!(missing, 1);
        assert_eq!(seen, vec![5, 20]);
    }

    #[test]
    fn count_missing_agrees_with_scan() {
        let mut nulls = Bitmap::new(500);
        for i in (0..500).step_by(13) {
            nulls.set(i);
        }
        for m in [
            MembershipSet::full(500),
            MembershipSet::from_rows((100..400).collect(), 500),
            MembershipSet::from_rows((0..500).step_by(29).collect(), 500),
        ] {
            let sel = Selection::Members(&m);
            let fast = count_missing(&sel, Some(&nulls));
            let slow = m.iter().filter(|&r| nulls.get(r)).count() as u64;
            assert_eq!(fast, slow);
        }
        assert_eq!(
            count_missing(&Selection::Members(&MembershipSet::full(500)), None),
            0
        );
    }

    #[test]
    fn selection_count_matches() {
        let m = MembershipSet::from_rows(vec![1, 5, 9], 10);
        assert_eq!(Selection::Members(&m).count(), 3);
        assert_eq!(Selection::Rows(&[1, 2]).count(), 2);
    }

    fn memberships() -> Vec<MembershipSet> {
        vec![
            MembershipSet::full(300),
            MembershipSet::from_rows((0..300).step_by(29).collect(), 300),
            MembershipSet::from_rows((0..300).filter(|r| r % 3 != 0).collect(), 300),
            MembershipSet::from_rows((40..230).collect(), 300),
            MembershipSet::from_rows(vec![], 300),
            {
                let mut bm = Bitmap::new(300);
                for i in (64..256).filter(|i| i % 5 != 2) {
                    bm.set(i);
                }
                MembershipSet::Dense(bm)
            },
        ]
    }

    #[test]
    fn bounded_selection_rows_match_filtered_iter() {
        for m in memberships() {
            for (lo, hi) in [(0, 300), (0, 0), (13, 200), (64, 128), (63, 65), (100, 999)] {
                let sel = Selection::members_in(&m, lo, hi);
                let mut got = Vec::new();
                scan_rows(&sel, |r| got.push(r));
                let want: Vec<usize> = m.iter().filter(|&r| r >= lo && r < hi).collect();
                assert_eq!(got, want, "{m:?} bounds {lo}..{hi}");
                assert_eq!(sel.count(), want.len());
            }
        }
    }

    #[test]
    fn bounded_pieces_reassemble_the_full_scan() {
        // Scanning members_in over consecutive bounds concatenates to the
        // unbounded scan — the property split execution rests on.
        for m in memberships() {
            let mut pieces = Vec::new();
            for (lo, hi) in [(0, 77), (77, 150), (150, 300)] {
                scan_rows(&Selection::members_in(&m, lo, hi), |r| pieces.push(r));
            }
            let whole: Vec<usize> = m.iter().collect();
            assert_eq!(pieces, whole, "{m:?}");
        }
    }

    #[test]
    fn split_conserves_weight_and_orders_bounds() {
        for m in memberships() {
            let root = SplittableSelection::new(&m);
            assert_eq!(root.weight(), m.len());
            if let Some((l, r)) = root.split() {
                assert_eq!(l.weight() + r.weight(), root.weight());
                assert!(l.weight() > 0 && r.weight() > 0);
                let (ls, le) = l.bounds();
                let (rs, re) = r.bounds();
                assert_eq!(ls, 0);
                assert_eq!(le, rs);
                assert_eq!(re, m.universe());
                assert_eq!(l.weight(), m.count_range(ls, le));
                assert_eq!(r.weight(), m.count_range(rs, re));
            } else {
                assert!(
                    m.len() < 2 || matches!(m, MembershipSet::Dense(_)),
                    "{m:?} should be splittable"
                );
            }
        }
    }

    #[test]
    fn recursive_split_partitions_every_membership() {
        // Split to a tiny grain and check the leaf selections tile the
        // original row stream exactly.
        for m in memberships() {
            let mut stack = vec![SplittableSelection::new(&m)];
            let mut rows = Vec::new();
            let mut leaves = 0;
            while let Some(part) = stack.pop() {
                if part.weight() > 16 {
                    if let Some((l, r)) = part.split() {
                        // Process left first to keep ascending order with a
                        // LIFO stack.
                        stack.push(r);
                        stack.push(l);
                        continue;
                    }
                }
                leaves += 1;
                scan_rows(&part.selection(), |r| rows.push(r));
            }
            let whole: Vec<usize> = m.iter().collect();
            assert_eq!(rows, whole, "{m:?}");
            if m.len() > 64 {
                assert!(leaves > 1, "{m:?} produced a single leaf");
            }
        }
    }

    #[test]
    fn splits_are_row_weighted_not_range_weighted() {
        // All the weight sits in the back half of the range; a balanced
        // split must cut inside that half, not at the naive midpoint.
        let m = MembershipSet::from_rows((800..1000).collect(), 1000);
        let root = SplittableSelection::new(&m);
        let (l, r) = root.split().unwrap();
        assert_eq!(l.weight(), 100);
        assert_eq!(r.weight(), 100);
        let (_, mid) = l.bounds();
        assert!((850..=950).contains(&mid), "cut at {mid}");
    }

    #[test]
    fn with_bounds_and_with_weight_agree() {
        for m in memberships() {
            let a = SplittableSelection::with_bounds(&m, 10, 200);
            let b = SplittableSelection::with_weight(&m, 10, 200, m.count_range(10, 200));
            assert_eq!(a.bounds(), b.bounds());
            assert_eq!(a.weight(), b.weight());
        }
    }

    #[test]
    fn rows_in_range_clips_sorted_lists() {
        let rows: Vec<u32> = vec![3, 17, 64, 65, 200];
        assert_eq!(rows_in_range(&rows, 0, 1000), &rows[..]);
        assert_eq!(rows_in_range(&rows, 17, 65), &[17, 64]);
        assert_eq!(rows_in_range(&rows, 66, 200), &[] as &[u32]);
        assert_eq!(rows_in_range(&rows, 201, 300), &[] as &[u32]);
    }
}
