//! Lazy block residency: file-backed column buffers and the block cache.
//!
//! This is the out-of-core tier under the scan pipeline. A [`Segment`] is
//! one immutable column file (an `hvc` v3 file) whose bytes become
//! addressable without being read up front; a [`ValueBuf`] is a typed
//! column buffer that is either owned heap data (`Vec<T>`, the classic
//! fully-resident tier) or a zero-copy window into a segment; and the
//! [`BlockCache`] is the per-worker, byte-accounted bounded-LRU that
//! decides which 64 KiB file chunks stay physically resident.
//!
//! # Residency tiers
//!
//! A segment opens in one of three backings, best first:
//!
//! * **Mmap** (`ooc` feature, unix): the file is mapped read-only and
//!   column buffers borrow file bytes directly — zero copies, zero heap.
//!   Chunks are *evictable*: eviction is `madvise(MADV_DONTNEED)`, which
//!   drops the physical pages; the kernel refaults identical bytes from the
//!   file on the next access, so eviction is always safe even under
//!   outstanding borrows.
//! * **Pread** (unix, no feature needed): a lazily-committed anonymous
//!   buffer the size of the file, filled chunk-at-a-time with
//!   `pread(2)`-style `read_at` on first touch. Chunks fault lazily but are
//!   *pinned* once resident (overwriting them under outstanding borrows
//!   would race), so the cache budget is best-effort for this tier.
//! * **Heap**: the whole file is read at open. Fully resident, no faulting,
//!   no cache participation — the fallback for non-unix targets and
//!   `SegmentMode::Heap` callers.
//!
//! # Touch-for-accounting
//!
//! Every read of mapped bytes goes through [`ValueBuf::slice`] /
//! [`ValueBuf::hot`], which *touch* the covered chunks first. For the mmap
//! backing a touch is pure bookkeeping (the OS demand-pages regardless);
//! for the pread backing it is load-bearing (it performs the read). Either
//! way the touch stream is what gives the cache its fault/hit/eviction
//! counters and its recency order — and what makes zone-map block skipping
//! an *I/O* optimization: a block the predicate rejects is never decoded,
//! so its chunks are never touched, so they are never faulted in.
//!
//! Accounting is deliberately approximate at the margins: the resident-byte
//! gauge is maintained under the cache lock, but recency stamps race
//! benignly with eviction (a chunk evicted just after a reader revalidated
//! it simply refaults), and the OS may drop or keep pages on its own.
//!
//! A failed fault (I/O error under a scan that cannot return `Result`)
//! panics with a descriptive message; the worker's leaf-task panic
//! isolation (PR 6) turns that into a structured query error.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Residency/fault granularity in bytes. A multiple of every common page
/// size so chunk boundaries are always `madvise`-alignable.
pub const CHUNK_BYTES: usize = 64 * 1024;

/// How [`Segment::open`] should back the file. `Auto` picks the best tier
/// available (mmap under the `ooc` feature, else pread, else heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SegmentMode {
    /// Best available backing.
    #[default]
    Auto,
    /// Require zero-copy mapping; falls back to pread when the `ooc`
    /// feature is off (or mapping fails), to heap off-unix.
    Mmap,
    /// Lazily-faulted pread buffer (heap off-unix).
    Pread,
    /// Read the whole file eagerly; no lazy residency.
    Heap,
}

/// An aligned, lazily-committed raw allocation (pread and heap backings).
/// 64-byte aligned so typed windows at the format's 64-byte section offsets
/// are always well-aligned.
struct RawBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: RawBuf is a uniquely-owned heap allocation (no aliasing, no
// thread affinity); sending it just moves ownership of the pointer.
unsafe impl Send for RawBuf {}
// SAFETY: shared access is read-only except through `&mut self` or the
// chunk-residency protocol in `fault_pread`, whose writes are confined to
// chunks that the state word proves no reader has been handed yet.
unsafe impl Sync for RawBuf {}

impl RawBuf {
    fn zeroed(len: usize) -> RawBuf {
        if len == 0 {
            return RawBuf {
                ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = std::alloc::Layout::from_size_align(len, 64).expect("segment layout");
        // Zeroed allocation: large requests are served as untouched
        // (lazily-committed) pages, so allocating a file-sized buffer does
        // not commit file-sized physical memory.
        // SAFETY: `layout` has non-zero size (len == 0 returned above) and
        // a valid 64-byte alignment, as `Layout::from_size_align` checked.
        let ptr = unsafe { std::alloc::alloc_zeroed(layout) };
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        RawBuf { ptr, len }
    }
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        if self.len > 0 {
            let layout = std::alloc::Layout::from_size_align(self.len, 64).expect("segment layout");
            // SAFETY: `ptr` came from `alloc_zeroed` with this exact layout
            // (len > 0 implies the non-dangling branch of `zeroed`), and
            // Drop runs at most once.
            unsafe { std::alloc::dealloc(self.ptr, layout) };
        }
    }
}

enum Backing {
    /// Zero-copy read-only file mapping (evictable chunks).
    #[cfg(all(feature = "ooc", unix))]
    Mmap(memmap2::Mmap),
    /// Anonymous buffer filled by `read_at` on first touch (pinned chunks).
    #[cfg(unix)]
    Pread { file: File, buf: RawBuf },
    /// Whole file read at open (no cache participation).
    Heap(RawBuf),
}

/// One immutable column file with chunk-granular residency state. Open via
/// [`Segment::open`]; read through [`ValueBuf`] windows.
pub struct Segment {
    id: u64,
    len: usize,
    backing: Backing,
    /// Per-chunk state word: `(recency tick << 1) | resident`.
    chunks: Vec<AtomicU64>,
    cache: Arc<BlockCache>,
    path: PathBuf,
}

impl Segment {
    /// Open `path` under `mode`, attaching its residency to `cache`.
    pub fn open(
        path: impl AsRef<Path>,
        mode: SegmentMode,
        cache: &Arc<BlockCache>,
    ) -> io::Result<Arc<Segment>> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
        let backing = Self::pick_backing(file, len, mode)?;
        let lazy = !matches!(backing, Backing::Heap(_));
        let nchunks = len.div_ceil(CHUNK_BYTES);
        let seg = Arc::new(Segment {
            // lint: allow(relaxed, unique-ID allocator; only uniqueness matters, not ordering)
            id: cache.next_id.fetch_add(1, Ordering::Relaxed),
            len,
            backing,
            chunks: (0..nchunks).map(|_| AtomicU64::new(0)).collect(),
            cache: Arc::clone(cache),
            path: path.to_path_buf(),
        });
        if lazy {
            cache
                .inner
                .lock()
                .segments
                .insert(seg.id, Arc::downgrade(&seg));
        }
        Ok(seg)
    }

    #[allow(unused_mut, unused_variables)]
    fn pick_backing(file: File, len: usize, mode: SegmentMode) -> io::Result<Backing> {
        if matches!(mode, SegmentMode::Heap) {
            return Self::heap_backing(file, len);
        }
        #[cfg(all(feature = "ooc", unix))]
        if matches!(mode, SegmentMode::Auto | SegmentMode::Mmap) {
            // On failure fall through to the pread tier.
            // SAFETY: segment files are immutable once written (the store
            // never rewrites a sealed column file), which is the contract
            // `Mmap::map` needs — no live mutation can race the mapping.
            if let Ok(map) = unsafe { memmap2::Mmap::map(&file) } {
                return Ok(Backing::Mmap(map));
            }
        }
        #[cfg(unix)]
        {
            Ok(Backing::Pread {
                file,
                buf: RawBuf::zeroed(len),
            })
        }
        #[cfg(not(unix))]
        {
            Self::heap_backing(file, len)
        }
    }

    fn heap_backing(mut file: File, len: usize) -> io::Result<Backing> {
        use std::io::Read;
        let buf = RawBuf::zeroed(len);
        let mut read = 0usize;
        while read < len {
            // SAFETY: `buf` is a fresh, uniquely-owned allocation of `len`
            // bytes, so `ptr + read .. ptr + len` is in bounds and nothing
            // else aliases it during this fill loop.
            let dst = unsafe { std::slice::from_raw_parts_mut(buf.ptr.add(read), len - read) };
            let n = file.read(dst)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "segment file shrank while reading",
                ));
            }
            read += n;
        }
        Ok(Backing::Heap(buf))
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The file this segment was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True when the backing is fully heap-resident (no lazy residency).
    pub fn is_heap(&self) -> bool {
        matches!(self.backing, Backing::Heap(_))
    }

    /// True when chunks of this segment can be evicted and refaulted
    /// (mmap backing only).
    fn evictable(&self) -> bool {
        #[cfg(all(feature = "ooc", unix))]
        {
            matches!(self.backing, Backing::Mmap(_))
        }
        #[cfg(not(all(feature = "ooc", unix)))]
        {
            false
        }
    }

    /// True when the backing borrows file bytes zero-copy (mmap).
    pub fn is_mapped(&self) -> bool {
        self.evictable()
    }

    fn base_ptr(&self) -> *const u8 {
        match &self.backing {
            #[cfg(all(feature = "ooc", unix))]
            Backing::Mmap(m) => m.as_ptr(),
            #[cfg(unix)]
            Backing::Pread { buf, .. } => buf.ptr,
            Backing::Heap(buf) => buf.ptr,
        }
    }

    fn chunk_len(&self, c: usize) -> usize {
        CHUNK_BYTES.min(self.len - c * CHUNK_BYTES)
    }

    /// Bytes of this segment currently marked resident.
    pub fn resident_bytes(&self) -> usize {
        if self.is_heap() {
            return self.len;
        }
        self.chunks
            .iter()
            .enumerate()
            // lint: allow(relaxed, advisory gauge snapshot; racing touches can legitimately change it mid-sum)
            .filter(|(_, s)| s.load(Ordering::Relaxed) & 1 == 1)
            .map(|(c, _)| self.chunk_len(c))
            .sum()
    }

    /// Ensure the chunks covering byte range `start..end` are resident,
    /// recording hits/faults in the cache. The hot path (all chunks already
    /// resident) is lock-free.
    fn touch(&self, start: usize, end: usize) {
        if start >= end || self.is_heap() {
            return;
        }
        debug_assert!(end <= self.len);
        let c0 = start / CHUNK_BYTES;
        let c1 = (end - 1) / CHUNK_BYTES;
        let mut all_resident = true;
        for c in c0..=c1 {
            // Acquire: reading a resident bit must synchronize with the
            // Release store that published it, so the pread tier's buffer
            // writes in `populate` are visible before the caller
            // dereferences the window.
            if self.chunks[c].load(Ordering::Acquire) & 1 == 0 {
                all_resident = false;
                break;
            }
        }
        if all_resident {
            // lint: allow(relaxed, recency clock; ticks only order evictions and publish nothing)
            let tick = self.cache.tick.fetch_add(1, Ordering::Relaxed);
            for c in c0..=c1 {
                // The recency bump must be an RMW, not a plain store: a
                // store would terminate the release sequence headed by the
                // populating thread's Release store, so a later reader
                // acquiring this value would NOT synchronize with
                // `populate`'s buffer writes. An RMW continues the
                // sequence. AcqRel also makes the returned value reliable
                // for the race check below.
                let prev = self.chunks[c].swap(tick << 1 | 1, Ordering::AcqRel);
                if prev & 1 == 0 {
                    // Lost a race with the evictor between the scan above
                    // and here: our swap resurrected a chunk whose pages
                    // and accounting are gone. Put the evicted state back
                    // and take the slow path, which repopulates and
                    // re-accounts under the cache lock.
                    self.chunks[c].store(0, Ordering::Release);
                    self.cache.fault(self, c0, c1);
                    return;
                }
            }
            // lint: allow(relaxed, monotonic diagnostics counter; no data is published through it)
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.cache.fault(self, c0, c1);
    }

    /// Read chunk `c` into the pread buffer (no-op for mmap: the OS faults
    /// the pages on first access; we only account).
    fn populate(&self, c: usize) {
        match &self.backing {
            #[cfg(all(feature = "ooc", unix))]
            Backing::Mmap(_) => {}
            #[cfg(unix)]
            Backing::Pread { file, buf } => {
                use std::os::unix::fs::FileExt;
                let off = c * CHUNK_BYTES;
                let n = self.chunk_len(c);
                // SAFETY: `off + n <= buf.len` by `chunk_len`, and the
                // residency protocol guarantees exclusive write access: the
                // caller (`BlockCache::fault`, under the cache lock) only
                // populates chunks whose resident bit is clear, so no
                // reader has been handed a window over these bytes yet and
                // no other populater can run concurrently.
                let dst = unsafe { std::slice::from_raw_parts_mut(buf.ptr.add(off), n) };
                file.read_exact_at(dst, off as u64).unwrap_or_else(|e| {
                    panic!(
                        "block fault failed reading {:?} at {off}..{}: {e}",
                        self.path,
                        off + n
                    )
                });
            }
            Backing::Heap(_) => unreachable!("heap segments never fault"),
        }
    }

    /// Drop the physical pages of chunk `c`. Only called for evictable
    /// (mmap) backings; returns false if the kernel refused.
    #[cfg_attr(not(all(feature = "ooc", unix)), allow(unused_variables))]
    fn evict_chunk(&self, c: usize) -> bool {
        match &self.backing {
            #[cfg(all(feature = "ooc", unix))]
            Backing::Mmap(m) => m
                .advise_dontneed(c * CHUNK_BYTES, self.chunk_len(c))
                .is_ok(),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("heap", &self.is_heap())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        if self.is_heap() {
            return;
        }
        // Return this segment's resident bytes to the cache gauge and
        // deregister.
        let resident: usize = self
            .chunks
            .iter()
            .enumerate()
            // lint: allow(relaxed, Drop has &mut self, so no touch can race this final sum)
            .filter(|(_, s)| s.load(Ordering::Relaxed) & 1 == 1)
            .map(|(c, _)| self.chunk_len(c))
            .sum();
        let mut inner = self.cache.inner.lock();
        inner.segments.remove(&self.id);
        inner.resident = inner.resident.saturating_sub(resident);
    }
}

/// Counters and gauges of a [`BlockCache`], mergeable across workers the
/// same way `SketchCache` stats are.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Byte budget (summed capacity after a merge).
    pub budget: u64,
    /// Bytes currently marked resident.
    pub resident_bytes: u64,
    /// Chunk faults (first touches) since creation.
    pub faults: u64,
    /// Bytes faulted in since creation (cumulative; eviction + refault
    /// counts again — this is the I/O-volume counter the out-of-core bench
    /// reports against total file bytes).
    pub bytes_faulted: u64,
    /// Touches fully served by resident chunks.
    pub hits: u64,
    /// Chunks evicted to stay within budget.
    pub evictions: u64,
}

impl BlockCacheStats {
    /// Fold another worker's stats into this one (sums everything;
    /// `budget`/`resident_bytes` become cluster-wide capacity and usage).
    pub fn merge(&mut self, other: &BlockCacheStats) {
        self.budget += other.budget;
        self.resident_bytes += other.resident_bytes;
        self.faults += other.faults;
        self.bytes_faulted += other.bytes_faulted;
        self.hits += other.hits;
        self.evictions += other.evictions;
    }
}

struct CacheInner {
    segments: HashMap<u64, Weak<Segment>>,
    resident: usize,
    faults: u64,
    bytes_faulted: u64,
    evictions: u64,
}

/// Byte-accounted bounded-LRU over the chunks of every lazy [`Segment`] a
/// worker has open. Eviction (mmap chunks only) picks the least-recently
/// touched resident chunk; pread chunks count against the budget but pin.
pub struct BlockCache {
    budget: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    next_id: AtomicU64,
    inner: Mutex<CacheInner>,
}

impl BlockCache {
    /// A cache evicting down to `budget` bytes of resident chunks.
    pub fn new(budget: usize) -> Arc<BlockCache> {
        Arc::new(BlockCache {
            budget,
            tick: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            inner: Mutex::new(CacheInner {
                segments: HashMap::new(),
                resident: 0,
                faults: 0,
                bytes_faulted: 0,
                evictions: 0,
            }),
        })
    }

    /// A cache that never evicts.
    pub fn unbounded() -> Arc<BlockCache> {
        Self::new(usize::MAX)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> BlockCacheStats {
        let inner = self.inner.lock();
        BlockCacheStats {
            budget: if self.budget == usize::MAX {
                0
            } else {
                self.budget as u64
            },
            resident_bytes: inner.resident as u64,
            faults: inner.faults,
            bytes_faulted: inner.bytes_faulted,
            // lint: allow(relaxed, monotonic diagnostics counter; no data is published through it)
            hits: self.hits.load(Ordering::Relaxed),
            evictions: inner.evictions,
        }
    }

    /// Fault in chunks `c0..=c1` of `seg`, then evict least-recently-used
    /// evictable chunks until the gauge is back under budget.
    fn fault(&self, seg: &Segment, c0: usize, c1: usize) {
        let mut inner = self.inner.lock();
        // lint: allow(relaxed, recency clock; ticks only order evictions and publish nothing)
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        for c in c0..=c1 {
            if seg.chunks[c].load(Ordering::Acquire) & 1 == 1 {
                // Sound even though this thread did not populate: the
                // Acquire load above synchronized with the Release store
                // that published the chunk, so this Release store
                // transitively republishes the populated bytes along with
                // the new tick.
                seg.chunks[c].store(tick << 1 | 1, Ordering::Release);
                continue;
            }
            seg.populate(c);
            // Release: publishes `populate`'s buffer writes to any thread
            // that later Acquire-loads this state word.
            seg.chunks[c].store(tick << 1 | 1, Ordering::Release);
            let bytes = seg.chunk_len(c);
            inner.resident += bytes;
            inner.faults += 1;
            inner.bytes_faulted += bytes as u64;
        }
        while inner.resident > self.budget {
            // Least-recently-touched resident evictable chunk, skipping the
            // chunks just faulted (they carry the freshest tick anyway, but
            // a tiny budget must never evict its own working set mid-touch).
            let mut victim: Option<(Arc<Segment>, usize, u64)> = None;
            let mut dead: Vec<u64> = Vec::new();
            for (&sid, weak) in inner.segments.iter() {
                let Some(s) = weak.upgrade() else {
                    dead.push(sid);
                    continue;
                };
                if !s.evictable() {
                    continue;
                }
                for c in 0..s.chunks.len() {
                    if sid == seg.id && (c0..=c1).contains(&c) {
                        continue;
                    }
                    // lint: allow(relaxed, recency-tick read for victim selection under the cache lock; no payload is read through it)
                    let state = s.chunks[c].load(Ordering::Relaxed);
                    if state & 1 == 0 {
                        continue;
                    }
                    let t = state >> 1;
                    if victim.as_ref().is_none_or(|(_, _, vt)| t < *vt) {
                        victim = Some((Arc::clone(&s), c, t));
                    }
                }
            }
            for sid in dead {
                inner.segments.remove(&sid);
            }
            let Some((vseg, vc, _)) = victim else {
                break; // nothing evictable (pread-only residency, tiny budget)
            };
            if !vseg.evict_chunk(vc) {
                break;
            }
            vseg.chunks[vc].store(0, Ordering::Release);
            inner.resident = inner.resident.saturating_sub(vseg.chunk_len(vc));
            inner.evictions += 1;
        }
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish()
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for i64 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
}

/// Plain-old-data element types a [`ValueBuf`] can window over file bytes.
/// Sealed: exactly the lane types of the column storages (`i64` values,
/// `u32` dictionary codes, `u64` packed words, `f64` doubles).
pub trait Pod:
    sealed::Sealed + Copy + Default + Send + Sync + PartialEq + std::fmt::Debug + 'static
{
    /// Size of one element in bytes.
    const BYTES: usize;
    /// Decode one element from little-endian bytes (heap-tier file reads).
    fn read_le(b: &[u8]) -> Self;
    /// Append one element as little-endian bytes (file writes).
    fn write_le(self, out: &mut Vec<u8>);
}

macro_rules! pod {
    ($t:ty) => {
        impl Pod for $t {
            const BYTES: usize = std::mem::size_of::<$t>();
            #[inline]
            fn read_le(b: &[u8]) -> Self {
                <$t>::from_le_bytes(b.try_into().expect("pod width"))
            }
            #[inline]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    };
}
pod!(i64);
pod!(u32);
pod!(u64);
pod!(f64);

enum Repr<T> {
    Owned(Vec<T>),
    Mapped {
        seg: Arc<Segment>,
        /// Byte offset of element 0 within the segment.
        off: usize,
        /// Element count.
        len: usize,
    },
}

/// A typed column buffer: owned heap values, or a zero-copy window into a
/// [`Segment`]. All reads go through [`ValueBuf::slice`] (touch
/// everything) or [`ValueBuf::hot`] (touch a sub-range at chunk
/// granularity) so residency accounting — and, for the pread tier, the
/// reads themselves — always happen before bytes are dereferenced.
///
/// Mapped windows can only be constructed for [`Pod`] element types (file
/// bytes are reinterpreted in place); the owned representation works for
/// any `T`, which keeps the storage enums' derives unconstrained.
pub struct ValueBuf<T> {
    repr: Repr<T>,
}

impl<T: Pod> ValueBuf<T> {
    /// A window of `len` elements starting `off` bytes into `seg`.
    /// Validates bounds and element alignment (segment bases are 64-byte
    /// aligned, so `off` must be a multiple of the element size).
    pub fn mapped(seg: Arc<Segment>, off: usize, len: usize) -> Result<ValueBuf<T>, String> {
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| "mapped window overflows".to_string())?;
        let end = off
            .checked_add(bytes)
            .ok_or_else(|| "mapped window overflows".to_string())?;
        if end > seg.len() {
            return Err(format!(
                "mapped window {off}..{end} exceeds segment length {}",
                seg.len()
            ));
        }
        if !off.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(format!("mapped window offset {off} misaligned"));
        }
        Ok(ValueBuf {
            repr: Repr::Mapped { seg, off, len },
        })
    }
}

impl<T> ValueBuf<T> {
    /// Number of elements. Never touches.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.len(),
            Repr::Mapped { len, .. } => *len,
        }
    }

    /// True when there are no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn raw_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Owned(v) => v,
            // SAFETY: `ValueBuf::mapped` validated that `off..off + len *
            // size_of::<T>()` lies inside the segment and that `off` is
            // element-aligned (segment bases are 64-byte aligned). `T: Pod`
            // is sealed to plain-old-data lane types, every bit pattern of
            // which is a valid value. The segment is kept alive by the
            // `Arc` in `Mapped`, so the borrow cannot outlive the bytes.
            Repr::Mapped { seg, off, len } => unsafe {
                std::slice::from_raw_parts(seg.base_ptr().add(*off) as *const T, *len)
            },
        }
    }

    /// The full element slice, touching every covered chunk.
    #[inline]
    pub fn slice(&self) -> &[T] {
        if let Repr::Mapped { seg, off, len } = &self.repr {
            seg.touch(*off, *off + *len * std::mem::size_of::<T>());
        }
        self.raw_slice()
    }

    /// The full element slice after touching only the chunks covering
    /// elements `r` — the lazy-residency fast path of the block decoders:
    /// callers index absolutely into the returned slice but must stay
    /// within `r`. For owned buffers this is free.
    #[inline]
    pub fn hot(&self, r: std::ops::Range<usize>) -> &[T] {
        if let Repr::Mapped { seg, off, .. } = &self.repr {
            let sz = std::mem::size_of::<T>();
            seg.touch(*off + r.start * sz, *off + r.end * sz);
        }
        self.raw_slice()
    }

    /// The backing slice when the buffer is owned (fully resident); `None`
    /// for mapped windows, which forces callers onto the frame-granular
    /// (lazy) path.
    #[inline]
    pub fn as_owned_slice(&self) -> Option<&[T]> {
        match &self.repr {
            Repr::Owned(v) => Some(v),
            Repr::Mapped { .. } => None,
        }
    }

    /// Copy out every element (touches everything).
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.slice().to_vec()
    }

    /// Heap bytes owned by this buffer (mapped windows into heap-backed
    /// segments count here: the segment holds the bytes on the heap).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Repr::Mapped { seg, len, .. } => {
                if seg.is_heap() {
                    *len * std::mem::size_of::<T>()
                } else {
                    0
                }
            }
        }
    }

    /// Bytes this buffer addresses through a lazy (mmap or pread) segment
    /// — file-backed capacity, not heap footprint.
    pub fn mapped_bytes(&self) -> usize {
        match &self.repr {
            Repr::Owned(_) => 0,
            Repr::Mapped { seg, len, .. } => {
                if seg.is_heap() {
                    0
                } else {
                    *len * std::mem::size_of::<T>()
                }
            }
        }
    }

    /// True when backed by a segment (any backing) rather than owned heap.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, Repr::Mapped { .. })
    }
}

impl<T> From<Vec<T>> for ValueBuf<T> {
    fn from(v: Vec<T>) -> Self {
        ValueBuf {
            repr: Repr::Owned(v),
        }
    }
}

impl<T> Default for ValueBuf<T> {
    fn default() -> Self {
        ValueBuf {
            repr: Repr::Owned(Vec::new()),
        }
    }
}

impl<T: Clone> Clone for ValueBuf<T> {
    fn clone(&self) -> Self {
        ValueBuf {
            repr: match &self.repr {
                Repr::Owned(v) => Repr::Owned(v.clone()),
                Repr::Mapped { seg, off, len } => Repr::Mapped {
                    seg: Arc::clone(seg),
                    off: *off,
                    len: *len,
                },
            },
        }
    }
}

impl<T: PartialEq> PartialEq for ValueBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.slice() == other.slice()
    }
}

impl<T: Eq> Eq for ValueBuf<T> {}

impl<T: std::fmt::Debug> std::fmt::Debug for ValueBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.repr {
            Repr::Owned(v) => f.debug_tuple("Owned").field(v).finish(),
            Repr::Mapped { seg, off, len } => f
                .debug_struct("Mapped")
                .field("seg", seg)
                .field("off", off)
                .field("len", len)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_tmp(name: &str, bytes: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join("hillview-residency-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::File::create(&path)
            .unwrap()
            .write_all(bytes)
            .unwrap();
        path
    }

    fn le_bytes(vals: &[i64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn mapped_buf_reads_file_values_in_every_mode() {
        let vals: Vec<i64> = (0..50_000).map(|i| i * 3 - 7).collect();
        let path = write_tmp("modes.bin", &le_bytes(&vals));
        for mode in [
            SegmentMode::Auto,
            SegmentMode::Mmap,
            SegmentMode::Pread,
            SegmentMode::Heap,
        ] {
            let cache = BlockCache::unbounded();
            let seg = Segment::open(&path, mode, &cache).unwrap();
            let buf = ValueBuf::<i64>::mapped(seg, 0, vals.len()).unwrap();
            assert_eq!(buf.slice(), &vals[..], "{mode:?}");
            assert_eq!(buf.hot(100..164)[100..164], vals[100..164], "{mode:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn untouched_chunks_never_fault() {
        let vals: Vec<i64> = (0..100_000).collect(); // 800 KB ≈ 13 chunks
        let path = write_tmp("lazy.bin", &le_bytes(&vals));
        let cache = BlockCache::unbounded();
        let seg = Segment::open(&path, SegmentMode::Auto, &cache).unwrap();
        let buf = ValueBuf::<i64>::mapped(Arc::clone(&seg), 0, vals.len()).unwrap();
        // Touch one 64-row frame: at most 2 chunks fault.
        assert_eq!(buf.hot(0..64)[0..64], vals[0..64]);
        let s = cache.stats();
        assert!(s.faults <= 2, "faulted {} chunks for one frame", s.faults);
        assert!(
            (s.bytes_faulted as usize) < seg.len() / 4,
            "one frame faulted {} of {} file bytes",
            s.bytes_faulted,
            seg.len()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn repeated_touches_hit_not_fault() {
        let vals: Vec<i64> = (0..20_000).collect();
        let path = write_tmp("hits.bin", &le_bytes(&vals));
        let cache = BlockCache::unbounded();
        let seg = Segment::open(&path, SegmentMode::Auto, &cache).unwrap();
        let buf = ValueBuf::<i64>::mapped(seg, 0, vals.len()).unwrap();
        buf.slice();
        let faults_once = cache.stats().faults;
        buf.slice();
        buf.hot(5..500);
        let s = cache.stats();
        assert_eq!(s.faults, faults_once, "re-touch refaulted");
        assert!(s.hits >= 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[cfg(feature = "ooc")]
    #[test]
    fn tiny_budget_evicts_and_rereads_correctly() {
        let vals: Vec<i64> = (0..200_000i64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect();
        let path = write_tmp("evict.bin", &le_bytes(&vals));
        // 1.6 MB file, 128 KiB budget (2 chunks): heavy churn.
        let cache = BlockCache::new(2 * CHUNK_BYTES);
        let seg = Segment::open(&path, SegmentMode::Mmap, &cache).unwrap();
        assert!(seg.is_mapped(), "mmap backing expected under ooc");
        let buf = ValueBuf::<i64>::mapped(Arc::clone(&seg), 0, vals.len()).unwrap();
        for round in 0..3 {
            let mut i = 0;
            while i < vals.len() {
                let end = (i + 64).min(vals.len());
                assert_eq!(
                    buf.hot(i..end)[i..end],
                    vals[i..end],
                    "round {round} at {i}"
                );
                i = end;
            }
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "no evictions under 2-chunk budget");
        assert!(
            s.resident_bytes <= (2 * CHUNK_BYTES) as u64,
            "resident {} over budget",
            s.resident_bytes
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dropping_a_segment_releases_its_residency() {
        let vals: Vec<i64> = (0..50_000).collect();
        let path = write_tmp("drop.bin", &le_bytes(&vals));
        let cache = BlockCache::unbounded();
        {
            let seg = Segment::open(&path, SegmentMode::Auto, &cache).unwrap();
            let buf = ValueBuf::<i64>::mapped(seg, 0, vals.len()).unwrap();
            buf.slice();
            assert!(cache.stats().resident_bytes > 0);
        }
        assert_eq!(cache.stats().resident_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_window_validation() {
        let path = write_tmp("valid.bin", &le_bytes(&[1, 2, 3, 4]));
        let cache = BlockCache::unbounded();
        let seg = Segment::open(&path, SegmentMode::Auto, &cache).unwrap();
        assert!(ValueBuf::<i64>::mapped(Arc::clone(&seg), 0, 4).is_ok());
        assert!(ValueBuf::<i64>::mapped(Arc::clone(&seg), 0, 5).is_err());
        assert!(ValueBuf::<i64>::mapped(Arc::clone(&seg), 3, 1).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_and_mapped_bufs_compare_equal() {
        let vals: Vec<i64> = (0..5_000).map(|i| i * i).collect();
        let path = write_tmp("eq.bin", &le_bytes(&vals));
        let cache = BlockCache::unbounded();
        let seg = Segment::open(&path, SegmentMode::Auto, &cache).unwrap();
        let mapped = ValueBuf::<i64>::mapped(seg, 0, vals.len()).unwrap();
        let owned: ValueBuf<i64> = vals.into();
        assert_eq!(owned, mapped);
        assert_eq!(owned.heap_bytes(), 5_000 * 8);
        #[cfg(unix)]
        {
            assert_eq!(mapped.heap_bytes(), 0);
            assert_eq!(mapped.mapped_bytes(), 5_000 * 8);
        }
        std::fs::remove_file(std::env::temp_dir().join("hillview-residency-test/eq.bin")).unwrap();
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = BlockCacheStats {
            budget: 10,
            resident_bytes: 5,
            faults: 2,
            bytes_faulted: 100,
            hits: 7,
            evictions: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.budget, 20);
        assert_eq!(a.faults, 4);
        assert_eq!(a.bytes_faulted, 200);
        assert_eq!(a.hits, 14);
        assert_eq!(a.evictions, 2);
    }
}
