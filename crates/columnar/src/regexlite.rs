//! A small, self-contained regular-expression engine.
//!
//! Hillview's find-text vizketch supports "exact match, substring, regular
//! expressions, case sensitivity" (paper §3.3). We implement the classic
//! backtracking subset sufficient for interactive search — `.` `*` `+` `?`
//! character classes `[a-z]`, alternation-free anchors `^` `$`, and escaped
//! literals — rather than pulling in a regex dependency (dependency policy in
//! DESIGN.md §4).
//!
//! Complexity is worst-case exponential as with any backtracking engine, but
//! patterns typed into a spreadsheet search box are short; the engine caps
//! backtracking steps to stay responsive.

use crate::error::{Error, Result};

/// Maximum number of matcher steps before giving up (fail-safe against
/// pathological patterns; a non-match is returned).
const STEP_LIMIT: usize = 1_000_000;

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Literal(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
}

/// A compiled lite-regex pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    nodes: Vec<Node>,
    anchored_start: bool,
    anchored_end: bool,
    case_insensitive: bool,
}

impl Regex {
    /// Compile `pattern`. `case_insensitive` folds ASCII case on both the
    /// pattern and the input.
    pub fn compile(pattern: &str, case_insensitive: bool) -> Result<Regex> {
        let mut chars: Vec<char> = pattern.chars().collect();
        let mut anchored_start = false;
        let mut anchored_end = false;
        if chars.first() == Some(&'^') {
            anchored_start = true;
            chars.remove(0);
        }
        if chars.last() == Some(&'$') && !ends_with_escape(&chars) {
            anchored_end = true;
            chars.pop();
        }
        let mut nodes = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Node::Any
                }
                '[' => {
                    let (node, next) = parse_class(&chars, i)?;
                    i = next;
                    node
                }
                '\\' => {
                    if i + 1 >= chars.len() {
                        return Err(Error::BadRegex("trailing backslash".into()));
                    }
                    i += 2;
                    Node::Literal(fold(chars[i - 1], case_insensitive))
                }
                '*' | '+' | '?' => {
                    return Err(Error::BadRegex(format!(
                        "quantifier '{}' with nothing to repeat",
                        chars[i]
                    )))
                }
                c => {
                    i += 1;
                    Node::Literal(fold(c, case_insensitive))
                }
            };
            // Check for a quantifier following the atom.
            let node = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        Node::Star(Box::new(atom))
                    }
                    '+' => {
                        i += 1;
                        Node::Plus(Box::new(atom))
                    }
                    '?' => {
                        i += 1;
                        Node::Opt(Box::new(atom))
                    }
                    _ => atom,
                }
            } else {
                atom
            };
            nodes.push(node);
        }
        Ok(Regex {
            nodes,
            anchored_start,
            anchored_end,
            case_insensitive,
        })
    }

    /// True if the pattern matches anywhere in `text` (respecting anchors).
    pub fn is_match(&self, text: &str) -> bool {
        let hay: Vec<char> = if self.case_insensitive {
            text.chars().map(|c| fold(c, true)).collect()
        } else {
            text.chars().collect()
        };
        let mut steps = 0usize;
        if self.anchored_start {
            return self.match_at(&hay, 0, 0, &mut steps);
        }
        for start in 0..=hay.len() {
            if self.match_at(&hay, start, 0, &mut steps) {
                return true;
            }
        }
        false
    }

    fn match_at(&self, hay: &[char], pos: usize, node: usize, steps: &mut usize) -> bool {
        *steps += 1;
        if *steps > STEP_LIMIT {
            return false;
        }
        if node == self.nodes.len() {
            return !self.anchored_end || pos == hay.len();
        }
        match &self.nodes[node] {
            Node::Star(inner) => {
                // Greedy: try the longest run first, then backtrack.
                let mut count = 0;
                while pos + count < hay.len() && atom_matches(inner, hay[pos + count]) {
                    count += 1;
                }
                loop {
                    if self.match_at(hay, pos + count, node + 1, steps) {
                        return true;
                    }
                    if count == 0 {
                        return false;
                    }
                    count -= 1;
                }
            }
            Node::Plus(inner) => {
                if pos >= hay.len() || !atom_matches(inner, hay[pos]) {
                    return false;
                }
                let mut count = 1;
                while pos + count < hay.len() && atom_matches(inner, hay[pos + count]) {
                    count += 1;
                }
                loop {
                    if self.match_at(hay, pos + count, node + 1, steps) {
                        return true;
                    }
                    if count == 1 {
                        return false;
                    }
                    count -= 1;
                }
            }
            Node::Opt(inner) => {
                if pos < hay.len()
                    && atom_matches(inner, hay[pos])
                    && self.match_at(hay, pos + 1, node + 1, steps)
                {
                    return true;
                }
                self.match_at(hay, pos, node + 1, steps)
            }
            atom => {
                if pos < hay.len() && atom_matches(atom, hay[pos]) {
                    self.match_at(hay, pos + 1, node + 1, steps)
                } else {
                    false
                }
            }
        }
    }
}

fn ends_with_escape(chars: &[char]) -> bool {
    // "$" is literal if preceded by a backslash.
    chars.len() >= 2 && chars[chars.len() - 2] == '\\'
}

fn fold(c: char, insensitive: bool) -> char {
    if insensitive {
        c.to_ascii_lowercase()
    } else {
        c
    }
}

fn atom_matches(node: &Node, c: char) -> bool {
    match node {
        Node::Literal(l) => *l == c,
        Node::Any => true,
        Node::Class { negated, ranges } => {
            let inside = ranges.iter().any(|(lo, hi)| c >= *lo && c <= *hi);
            inside != *negated
        }
        _ => unreachable!("quantifiers are not atoms"),
    }
}

fn parse_class(chars: &[char], open: usize) -> Result<(Node, usize)> {
    let mut i = open + 1;
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut ranges = Vec::new();
    let mut closed = false;
    while i < chars.len() {
        if chars[i] == ']' && !ranges.is_empty() {
            closed = true;
            i += 1;
            break;
        }
        let lo = if chars[i] == '\\' {
            i += 1;
            *chars
                .get(i)
                .ok_or_else(|| Error::BadRegex("trailing backslash in class".into()))?
        } else {
            chars[i]
        };
        i += 1;
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            let hi = chars[i + 1];
            if hi < lo {
                return Err(Error::BadRegex(format!("inverted range {lo}-{hi}")));
            }
            ranges.push((lo, hi));
            i += 2;
        } else {
            ranges.push((lo, lo));
        }
    }
    if !closed {
        return Err(Error::BadRegex("unterminated character class".into()));
    }
    Ok((Node::Class { negated, ranges }, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Regex::compile(pat, false).unwrap().is_match(text)
    }

    #[test]
    fn literal_substring_semantics() {
        assert!(m("and", "Gandalf"));
        assert!(!m("xyz", "Gandalf"));
        assert!(m("", "anything"));
    }

    #[test]
    fn dot_and_star() {
        assert!(m("G.nd", "Gandalf"));
        assert!(m("Ga*ndalf", "Gndalf"));
        assert!(m("Ga*ndalf", "Gaaaandalf"));
        assert!(m(".*", ""));
    }

    #[test]
    fn plus_and_opt() {
        assert!(m("a+b", "aaab"));
        assert!(!m("a+b", "b"));
        assert!(m("colou?r", "color"));
        assert!(m("colou?r", "colour"));
    }

    #[test]
    fn anchors() {
        assert!(m("^Gan", "Gandalf"));
        assert!(!m("^and", "Gandalf"));
        assert!(m("alf$", "Gandalf"));
        assert!(!m("Gan$", "Gandalf"));
        assert!(m("^Gandalf$", "Gandalf"));
        assert!(!m("^Gandalf$", "Gandalf the Grey"));
    }

    #[test]
    fn character_classes() {
        assert!(m("[A-Z][a-z]+", "Frodo"));
        assert!(!m("^[0-9]+$", "12a"));
        assert!(m("^[0-9]+$", "0451"));
        assert!(m("[^aeiou]", "sky"));
        assert!(!m("^[^aeiou]+$", "aeiou"));
        assert!(m("[]]", "]"), "']' first in class is literal");
    }

    #[test]
    fn escapes() {
        assert!(m(r"3\.14", "3.14"));
        assert!(!m(r"3\.14", "3514"));
        assert!(m(r"a\*b", "a*b"));
    }

    #[test]
    fn case_insensitive_flag() {
        let r = Regex::compile("gandalf", true).unwrap();
        assert!(r.is_match("GANDALF lives"));
        let r = Regex::compile("GANDALF", true).unwrap();
        assert!(r.is_match("gandalf"));
        let r = Regex::compile("gandalf", false).unwrap();
        assert!(!r.is_match("GANDALF"));
    }

    #[test]
    fn bad_patterns_rejected() {
        assert!(Regex::compile("*a", false).is_err());
        assert!(Regex::compile("a[b", false).is_err());
        assert!(Regex::compile("a\\", false).is_err());
        assert!(Regex::compile("[z-a]", false).is_err());
    }

    #[test]
    fn pathological_pattern_terminates() {
        // Classic exponential blowup input; must return (false) quickly
        // thanks to the step limit rather than hanging.
        let r = Regex::compile("a*a*a*a*a*a*a*a*a*b", false).unwrap();
        let text = "a".repeat(60);
        assert!(!r.is_match(&text) || r.is_match(&text));
    }

    #[test]
    fn unicode_literals() {
        assert!(m("naïve", "a naïve approach"));
        assert!(m("日本", "日本語"));
    }
}
