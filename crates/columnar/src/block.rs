//! The decoded-block ABI: the one frame format connecting the encoding
//! layer, the scan drivers, and every kernel inner loop.
//!
//! A [`Block`] is a 64-row-aligned window of a column: decoded value lanes
//! (borrowed zero-copy from plain storage, materialized by the block
//! decoders otherwise), a *selection* word saying which rows of the frame
//! the scan selects, and a *validity* word saying which rows are non-null.
//! Kernels consume frames through [`BlockSink`], driven by [`scan_blocks`]
//! — the single driver loop that replaced the per-variant scratch-buffer
//! decode protocol. Sparse explicit row lists (samples, very selective
//! filters) bypass frame decoding and arrive per value through
//! [`BlockSink::one`], with run-length storage serving whole runs through
//! one cursor probe.
//!
//! Frames tile a selection exactly: bases are 64-aligned and strictly
//! ascending, selection words never overlap, and the union of selection
//! bits (plus the sparse fallback rows) is precisely the scanned selection
//! — the tiling laws the columnar proptests pin. Because lanes are decoded
//! in ascending order and frames never repeat rows, a kernel folding block
//! values observes exactly the per-row reference value stream.
//!
//! [`BlockCursor`] packages the scratch buffer + ascending decode state for
//! kernels that pull frames from several columns in lockstep (heat maps,
//! stacked histograms) rather than being driven by one source.

use crate::bitmap::{span_mask, Bitmap};
use crate::scan::{ScanChunk, ScanSource, Selection};

/// Rows per block frame.
pub const BLOCK_ROWS: usize = crate::encoding::BLOCK_ROWS;

/// A decoded 64-row-aligned frame of one column.
#[derive(Debug, Clone, Copy)]
pub struct Block<'a, T> {
    /// First row of the frame; always a multiple of 64.
    pub base: usize,
    /// Decoded value lanes for rows `base .. base + values.len()`. Covers
    /// every selected row of the frame (null rows hold the storage's
    /// placeholder value, like the raw column arrays).
    pub values: &'a [T],
    /// Bit `k` set ⇔ row `base + k` is selected by the scan. Bits at or
    /// beyond `values.len()` are never set.
    pub selection: u64,
    /// Bit `k` set ⇔ row `base + k` is non-null. Bits beyond the column
    /// are meaningless; always combine with `selection`.
    pub validity: u64,
}

impl<T> Block<'_, T> {
    /// Rows the kernel must process: selected and non-null.
    #[inline]
    pub fn live(&self) -> u64 {
        self.selection & self.validity
    }

    /// Number of decoded lanes.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the frame has no lanes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when every lane is selected and non-null — the dense fast path
    /// where kernels may run branch-free over the whole value slice.
    #[inline]
    pub fn all_live(&self) -> bool {
        self.live() == span_mask(0, self.values.len())
    }
}

/// Receiver for [`scan_blocks`]: dense portions of the selection arrive as
/// decoded [`Block`] frames, sparse row lists value-at-a-time.
pub trait BlockSink<T> {
    /// A decoded frame; process the rows of `block.live()`.
    fn block(&mut self, block: &Block<'_, T>);
    /// One selected, non-null value at `row` (sparse row-list path).
    fn one(&mut self, row: usize, v: T);
}

/// Scratch + ascending decode state for pulling frames out of a
/// [`ScanSource`] in lockstep with other columns.
pub struct BlockCursor<'a, T, S: ?Sized> {
    src: &'a S,
    cursor: usize,
    buf: [T; BLOCK_ROWS],
}

impl<'a, T: Copy + Default, S: ScanSource<T> + ?Sized> BlockCursor<'a, T, S> {
    /// A cursor over `src`, starting before row 0.
    pub fn new(src: &'a S) -> Self {
        BlockCursor {
            src,
            cursor: 0,
            buf: [T::default(); BLOCK_ROWS],
        }
    }

    /// Decoded lanes of the frame `base .. base + len` (`base` 64-aligned,
    /// `len <= 64`). Frames should be requested in ascending order.
    #[inline]
    pub fn lanes(&mut self, base: usize, len: usize) -> &[T] {
        self.src
            .decode_frame(&mut self.cursor, base, len, &mut self.buf)
    }

    /// Random access tuned for ascending rows (sparse fallback paths).
    #[inline]
    pub fn value(&mut self, row: usize) -> T {
        self.src.index_ascending(&mut self.cursor, row)
    }
}

/// One step of [`scan_frames`]: a dense 64-aligned frame of the selection,
/// or a single sparse row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEvent {
    /// A dense frame (from `Range` and `Mask` chunks): rows at the set
    /// bits of `word` within `base .. base + len` are selected. `len`
    /// always covers the highest selected bit; decode `base .. base + len`.
    Frame {
        /// 64-aligned frame base.
        base: usize,
        /// Lanes to decode (`<= 64`).
        len: usize,
        /// Selection bits of the frame.
        word: u64,
    },
    /// One explicitly listed row (sparse lists, samples).
    Row(usize),
}

/// Enumerate the selection as 64-aligned frames plus sparse fallback rows.
///
/// This is the skeleton of [`scan_blocks`], exposed for kernels that scan
/// several columns per row (heat maps, stacked histograms) and decode each
/// column's lanes through its own [`BlockCursor`].
pub fn scan_frames(sel: &Selection<'_>, mut f: impl FnMut(FrameEvent)) {
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                let mut r = start;
                while r < end {
                    let base = r / 64 * 64;
                    let fend = (base + 64).min(end);
                    f(FrameEvent::Frame {
                        base,
                        len: fend - base,
                        word: span_mask(r - base, fend - base),
                    });
                    r = fend;
                }
            }
            ScanChunk::Mask { base, word } => {
                f(FrameEvent::Frame {
                    base,
                    len: 64 - word.leading_zeros() as usize,
                    word,
                });
            }
            ScanChunk::Rows(rows) => {
                for &r in rows {
                    f(FrameEvent::Row(r as usize));
                }
            }
        }
    }
}

/// The single block driver loop: decode the selection's frames out of
/// `data` (any [`ScanSource`] — plain slices are borrowed zero-copy) and
/// hand them to `sink`, folding the null bitmap in at word granularity and
/// adding the number of selected-but-null rows to `missing`. Sparse row
/// lists skip frame decoding and stream through [`BlockSink::one`], with
/// run-length runs served whole via [`ScanSource::index_run`].
pub fn scan_blocks<T, S, K>(
    sel: &Selection<'_>,
    data: &S,
    nulls: Option<&Bitmap>,
    missing: &mut u64,
    sink: &mut K,
) where
    T: Copy + Default,
    S: ScanSource<T> + ?Sized,
    K: BlockSink<T>,
{
    let mut buf = [T::default(); BLOCK_ROWS];
    let mut cursor = 0usize;
    for chunk in sel.chunks() {
        match chunk {
            ScanChunk::Range { start, end } => {
                let mut r = start;
                while r < end {
                    let base = r / 64 * 64;
                    let fend = (base + 64).min(end);
                    let selection = span_mask(r - base, fend - base);
                    let nword = nulls.map_or(0, |nb| nb.word(base / 64));
                    *missing += (selection & nword).count_ones() as u64;
                    let values = data.decode_frame(&mut cursor, base, fend - base, &mut buf);
                    sink.block(&Block {
                        base,
                        values,
                        selection,
                        validity: !nword,
                    });
                    r = fend;
                }
            }
            ScanChunk::Mask { base, word } => {
                let len = 64 - word.leading_zeros() as usize;
                let nword = nulls.map_or(0, |nb| nb.word(base / 64));
                *missing += (word & nword).count_ones() as u64;
                let values = data.decode_frame(&mut cursor, base, len, &mut buf);
                sink.block(&Block {
                    base,
                    values,
                    selection: word,
                    validity: !nword,
                });
            }
            ScanChunk::Rows(rows) => {
                // Ascending sparse rows: one storage probe per run, not per
                // row — a run covering many sampled rows serves them all.
                let mut run_v = T::default();
                let mut run_end = 0usize;
                match nulls {
                    None => {
                        for &r in rows {
                            let r = r as usize;
                            if r >= run_end {
                                (run_v, run_end) = data.index_run(&mut cursor, r);
                            }
                            sink.one(r, run_v);
                        }
                    }
                    Some(nb) => {
                        for &r in rows {
                            let r = r as usize;
                            if nb.get(r) {
                                *missing += 1;
                            } else {
                                if r >= run_end {
                                    (run_v, run_end) = data.index_run(&mut cursor, r);
                                }
                                sink.one(r, run_v);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipSet;

    #[test]
    fn frames_tile_a_range_selection() {
        let m = MembershipSet::full(200);
        let sel = Selection::Members(&m);
        let mut frames = Vec::new();
        scan_frames(&sel, |ev| match ev {
            FrameEvent::Frame { base, len, word } => frames.push((base, len, word)),
            FrameEvent::Row(_) => panic!("no rows"),
        });
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0], (0, 64, u64::MAX));
        assert_eq!(frames[3], (192, 8, span_mask(0, 8)));
    }

    #[test]
    fn block_live_and_all_live() {
        let b = Block::<i64> {
            base: 0,
            values: &[1, 2, 3],
            selection: 0b111,
            validity: !0b010,
        };
        assert_eq!(b.live(), 0b101);
        assert!(!b.all_live());
        let b = Block::<i64> {
            base: 0,
            values: &[1, 2, 3],
            selection: 0b111,
            validity: !0,
        };
        assert!(b.all_live());
    }
}
