//! Dictionary encoding for string and categorical columns.
//!
//! Paper §6: "String columns use dictionary encoding for compression." A
//! column stores `u32` codes; the dictionary maps codes to interned strings.
//! Dictionaries are immutable once built (tables are snapshots), so lookups
//! by code are a plain array index.

use std::collections::HashMap;
use std::sync::Arc;

/// An immutable, deduplicated code → string mapping.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    strings: Vec<Arc<str>>,
}

impl Dictionary {
    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if the dictionary holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The string for `code`. Panics on unknown codes (column invariant).
    #[inline]
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// Find the code of `s`, by linear scan (used only in tests/small paths).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.strings
            .iter()
            .position(|x| x.as_ref() == s)
            .map(|i| i as u32)
    }

    /// Iterate all strings in code order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<str>> {
        self.strings.iter()
    }

    /// Approximate heap footprint in bytes (for cache accounting).
    pub fn heap_bytes(&self) -> usize {
        self.strings
            .iter()
            .map(|s| s.len() + std::mem::size_of::<Arc<str>>())
            .sum()
    }
}

/// Incrementally interns strings while building a dictionary-encoded column.
#[derive(Debug, Default)]
pub struct DictionaryBuilder {
    dict: Dictionary,
    index: HashMap<Arc<str>, u32>,
}

impl DictionaryBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its (possibly new) code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let arc: Arc<str> = Arc::from(s);
        let code = self.dict.strings.len() as u32;
        self.dict.strings.push(arc.clone());
        self.index.insert(arc, code);
        code
    }

    /// Current number of distinct strings.
    pub fn len(&self) -> usize {
        self.dict.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.dict.is_empty()
    }

    /// Finish building; drops the intern index.
    pub fn finish(self) -> Dictionary {
        self.dict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut b = DictionaryBuilder::new();
        let a = b.intern("SFO");
        let c = b.intern("JFK");
        let a2 = b.intern("SFO");
        assert_eq!(a, a2);
        assert_ne!(a, c);
        let d = b.finish();
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(a).as_ref(), "SFO");
        assert_eq!(d.get(c).as_ref(), "JFK");
    }

    #[test]
    fn codes_are_dense_and_ordered_by_first_appearance() {
        let mut b = DictionaryBuilder::new();
        for s in ["c", "a", "b", "a", "c"] {
            b.intern(s);
        }
        let d = b.finish();
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(0).as_ref(), "c");
        assert_eq!(d.get(1).as_ref(), "a");
        assert_eq!(d.get(2).as_ref(), "b");
    }

    #[test]
    fn code_of_round_trips() {
        let mut b = DictionaryBuilder::new();
        for s in ["x", "y", "z"] {
            b.intern(s);
        }
        let d = b.finish();
        for s in ["x", "y", "z"] {
            let c = d.code_of(s).unwrap();
            assert_eq!(d.get(c).as_ref(), s);
        }
        assert_eq!(d.code_of("w"), None);
    }

    #[test]
    fn heap_bytes_nonzero_when_nonempty() {
        let mut b = DictionaryBuilder::new();
        b.intern("hello");
        let d = b.finish();
        assert!(d.heap_bytes() >= 5);
    }
}
