//! Membership sets: which rows of a partition belong to a derived table.
//!
//! Paper §5.6: *"tables share common data and store a 'membership set' data
//! structure that identifies which rows are contained in the table. ... Dense
//! tables that contain most rows store a bitmap, while sparse tables store a
//! hashset of the row indexes."* Sampling must be efficient and uniform: *"For
//! sparse tables, we generate the first sample by choosing a random row number
//! for the first element; we generate the following samples by returning the
//! next elements in sorted order of their hash values. For dense tables we
//! walk randomly the bitmap in increasing index order."*

use crate::bitmap::Bitmap;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fraction of rows below which a filtered set switches to the sparse
/// representation.
const SPARSE_THRESHOLD: f64 = 0.25;

/// The set of rows (by index within one partition) present in a table view.
#[derive(Debug, Clone)]
pub enum MembershipSet {
    /// All rows `0..n` are present.
    Full(usize),
    /// A dense subset stored as a bitmap over `0..n`.
    Dense(Bitmap),
    /// A sparse subset stored as sorted row indexes.
    Sparse {
        /// Sorted, deduplicated row indexes.
        rows: Vec<u32>,
        /// Size of the underlying partition (`0..universe`).
        universe: usize,
    },
}

impl MembershipSet {
    /// Membership covering every row of a partition with `n` rows.
    pub fn full(n: usize) -> Self {
        MembershipSet::Full(n)
    }

    /// Build from a per-row boolean mask, choosing dense or sparse
    /// representation by selectivity (paper §5.6).
    pub fn from_mask(mask: &Bitmap) -> Self {
        let n = mask.len();
        let count = mask.count_ones();
        if count == n {
            return MembershipSet::Full(n);
        }
        if (count as f64) < (n as f64) * SPARSE_THRESHOLD {
            MembershipSet::Sparse {
                rows: mask.iter_ones().map(|i| i as u32).collect(),
                universe: n,
            }
        } else {
            MembershipSet::Dense(mask.clone())
        }
    }

    /// Build from row indexes (need not be sorted; duplicates removed).
    pub fn from_rows(mut rows: Vec<u32>, universe: usize) -> Self {
        rows.sort_unstable();
        rows.dedup();
        debug_assert!(rows.last().is_none_or(|&r| (r as usize) < universe));
        if rows.len() == universe {
            return MembershipSet::Full(universe);
        }
        if (rows.len() as f64) >= (universe as f64) * SPARSE_THRESHOLD {
            let mut bm = Bitmap::new(universe);
            for &r in &rows {
                bm.set(r as usize);
            }
            MembershipSet::Dense(bm)
        } else {
            MembershipSet::Sparse { rows, universe }
        }
    }

    /// Number of rows present.
    pub fn len(&self) -> usize {
        match self {
            MembershipSet::Full(n) => *n,
            MembershipSet::Dense(b) => b.count_ones(),
            MembershipSet::Sparse { rows, .. } => rows.len(),
        }
    }

    /// True if no rows are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the underlying partition.
    pub fn universe(&self) -> usize {
        match self {
            MembershipSet::Full(n) => *n,
            MembershipSet::Dense(b) => b.len(),
            MembershipSet::Sparse { universe, .. } => *universe,
        }
    }

    /// Number of present rows with index in `lo..hi` (clamped to the
    /// universe). O(1) for full sets, O(words) for dense, O(log n) for
    /// sparse — never materializes row ids, which is what lets the
    /// splittable-selection layer ([`crate::scan::SplittableSelection`])
    /// weigh sub-ranges cheaply.
    pub fn count_range(&self, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.universe());
        if lo >= hi {
            return 0;
        }
        match self {
            MembershipSet::Full(_) => hi - lo,
            MembershipSet::Dense(b) => b.count_range(lo, hi),
            MembershipSet::Sparse { rows, .. } => {
                let a = rows.partition_point(|&r| (r as usize) < lo);
                let b = rows.partition_point(|&r| (r as usize) < hi);
                b - a
            }
        }
    }

    /// True if row `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        match self {
            MembershipSet::Full(n) => i < *n,
            MembershipSet::Dense(b) => i < b.len() && b.get(i),
            MembershipSet::Sparse { rows, .. } => rows.binary_search(&(i as u32)).is_ok(),
        }
    }

    /// Iterate present row indexes in ascending order.
    pub fn iter(&self) -> MembershipIter<'_> {
        match self {
            MembershipSet::Full(n) => MembershipIter::Range(0..*n),
            MembershipSet::Dense(b) => MembershipIter::Bits(Box::new(b.iter_ones())),
            MembershipSet::Sparse { rows, .. } => MembershipIter::Rows(rows.iter()),
        }
    }

    /// Intersect with another membership set over the same universe.
    pub fn intersect(&self, other: &MembershipSet) -> MembershipSet {
        assert_eq!(self.universe(), other.universe(), "universe mismatch");
        match (self, other) {
            (MembershipSet::Full(_), _) => other.clone(),
            (_, MembershipSet::Full(_)) => self.clone(),
            _ => {
                // General path: iterate the smaller side, probe the other.
                let (small, big) = if self.len() <= other.len() {
                    (self, other)
                } else {
                    (other, self)
                };
                let rows: Vec<u32> = small
                    .iter()
                    .filter(|&r| big.contains(r))
                    .map(|r| r as u32)
                    .collect();
                MembershipSet::from_rows(rows, self.universe())
            }
        }
    }

    /// Draw a uniform sample of approximately `rate * len()` present rows,
    /// deterministically from `seed`, following the paper's §5.6 strategies.
    ///
    /// Rows are returned in ascending index order. A `rate >= 1.0` returns
    /// every present row (sampling never upsamples).
    pub fn sample(&self, rate: f64, seed: u64) -> Vec<u32> {
        if rate >= 1.0 {
            return self.iter().map(|r| r as u32).collect();
        }
        if rate <= 0.0 || self.is_empty() {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            // Full and dense: random walk in increasing index order. Skip
            // lengths are geometric with success probability `rate`, giving
            // each row inclusion probability `rate` without touching every
            // row index.
            MembershipSet::Full(n) => {
                let mut out = Vec::with_capacity((*n as f64 * rate) as usize + 16);
                let mut i = geometric_skip(&mut rng, rate);
                while i < *n {
                    out.push(i as u32);
                    i += 1 + geometric_skip(&mut rng, rate);
                }
                out
            }
            MembershipSet::Dense(b) => {
                let mut out = Vec::with_capacity((b.count_ones() as f64 * rate) as usize + 16);
                let mut skip = geometric_skip(&mut rng, rate);
                for r in b.iter_ones() {
                    if skip == 0 {
                        out.push(r as u32);
                        skip = geometric_skip(&mut rng, rate);
                    } else {
                        skip -= 1;
                    }
                }
                out
            }
            // Sparse: pick rows whose (seeded) hash falls below the rate
            // threshold — "next elements in sorted order of their hash
            // values" gives a uniform, deterministic subset.
            MembershipSet::Sparse { rows, .. } => {
                let threshold = (rate * u64::MAX as f64) as u64;
                rows.iter()
                    .copied()
                    .filter(|&r| splitmix64(r as u64 ^ seed) <= threshold)
                    .collect()
            }
        }
    }
}

/// Geometric skip: number of failures before the next success with
/// probability `p`. Used by the random-walk samplers.
fn geometric_skip(rng: &mut SmallRng, p: f64) -> usize {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let g = (u.ln() / (1.0 - p).ln()).floor();
    if g.is_finite() && g >= 0.0 {
        g as usize
    } else {
        0
    }
}

/// Stateless per-row sampling decision: true when `row` belongs to the
/// deterministic hash-order sample at `rate` under `seed` — the same test
/// [`MembershipSet::sample`] applies to sparse sets. Because the decision
/// is a pure function of `(row, rate, seed)`, it can be applied to a
/// streaming row source (the fused filter pipeline) without materializing
/// a membership set first, and any tiling of the row space selects exactly
/// the same rows.
pub fn row_sampled(row: u64, rate: f64, seed: u64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    splitmix64(row ^ seed) <= (rate * u64::MAX as f64) as u64
}

/// A fast 64-bit mix used for hash-order sampling of sparse sets.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Iterator over present rows of a [`MembershipSet`].
pub enum MembershipIter<'a> {
    /// Full sets iterate a range.
    Range(std::ops::Range<usize>),
    /// Dense sets iterate bitmap ones.
    Bits(Box<crate::bitmap::OnesIter<'a>>),
    /// Sparse sets iterate stored rows.
    Rows(std::slice::Iter<'a, u32>),
}

impl Iterator for MembershipIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            MembershipIter::Range(r) => r.next(),
            MembershipIter::Bits(it) => it.next(),
            MembershipIter::Rows(it) => it.next().map(|&r| r as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_semantics() {
        let m = MembershipSet::full(5);
        assert_eq!(m.len(), 5);
        assert_eq!(m.universe(), 5);
        assert!(m.contains(4));
        assert!(!m.contains(5));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_mask_chooses_representation() {
        // Dense: half the rows set.
        let mut mask = Bitmap::new(100);
        for i in (0..100).step_by(2) {
            mask.set(i);
        }
        assert!(matches!(
            MembershipSet::from_mask(&mask),
            MembershipSet::Dense(_)
        ));
        // Sparse: 5% of rows set.
        let mut mask = Bitmap::new(100);
        for i in (0..100).step_by(20) {
            mask.set(i);
        }
        assert!(matches!(
            MembershipSet::from_mask(&mask),
            MembershipSet::Sparse { .. }
        ));
        // Full: everything set.
        let mask = Bitmap::all_set(64);
        assert!(matches!(
            MembershipSet::from_mask(&mask),
            MembershipSet::Full(64)
        ));
    }

    #[test]
    fn from_rows_dedups_and_sorts() {
        let m = MembershipSet::from_rows(vec![5, 1, 5, 3], 100);
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
        assert!(m.contains(3));
        assert!(!m.contains(2));
    }

    #[test]
    fn intersect_matches_naive() {
        let a = MembershipSet::from_rows((0..50).collect(), 100);
        let b = MembershipSet::from_rows((25..75).collect(), 100);
        let i = a.intersect(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), (25..50).collect::<Vec<_>>());
        // Intersect with Full is identity.
        let f = MembershipSet::full(100);
        assert_eq!(f.intersect(&a).len(), a.len());
        assert_eq!(a.intersect(&f).len(), a.len());
    }

    #[test]
    fn sample_rate_one_returns_all() {
        let m = MembershipSet::from_rows(vec![2, 4, 8], 10);
        assert_eq!(m.sample(1.0, 7), vec![2, 4, 8]);
        assert_eq!(m.sample(1.5, 7), vec![2, 4, 8]);
    }

    #[test]
    fn sample_rate_zero_returns_none() {
        let m = MembershipSet::full(1000);
        assert!(m.sample(0.0, 7).is_empty());
        assert!(m.sample(-1.0, 7).is_empty());
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let m = MembershipSet::full(10_000);
        assert_eq!(m.sample(0.1, 42), m.sample(0.1, 42));
        assert_ne!(m.sample(0.1, 42), m.sample(0.1, 43));
    }

    #[test]
    fn sample_size_close_to_expected_full() {
        let m = MembershipSet::full(100_000);
        let s = m.sample(0.1, 1);
        let got = s.len() as f64;
        assert!((8_000.0..12_000.0).contains(&got), "got {got}");
        // Ascending order.
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_size_close_to_expected_dense_and_sparse() {
        let mut mask = Bitmap::new(100_000);
        for i in (0..100_000).step_by(2) {
            mask.set(i);
        }
        let dense = MembershipSet::from_mask(&mask);
        let s = dense.sample(0.2, 3);
        let expect = 0.2 * 50_000.0;
        assert!(
            (s.len() as f64 - expect).abs() < expect * 0.2,
            "{}",
            s.len()
        );
        assert!(s.iter().all(|r| r % 2 == 0), "samples only present rows");

        let sparse = MembershipSet::from_rows((0..100_000).step_by(17).collect(), 100_000);
        let n = sparse.len() as f64;
        let s = sparse.sample(0.3, 9);
        assert!(
            (s.len() as f64 - 0.3 * n).abs() < 0.3 * n * 0.25,
            "{}",
            s.len()
        );
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_uniformity_rough_chi_square() {
        // Bucket 100k full-universe samples into 10 deciles; each decile
        // should receive roughly 10% of the samples.
        let m = MembershipSet::full(100_000);
        let s = m.sample(0.5, 11);
        let mut buckets = [0usize; 10];
        for r in &s {
            buckets[(*r as usize) / 10_000] += 1;
        }
        let expect = s.len() as f64 / 10.0;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 - expect).abs() < expect * 0.15,
                "bucket {i}: {b} vs {expect}"
            );
        }
    }

    #[test]
    fn count_range_matches_filtered_iter() {
        let sets = [
            MembershipSet::full(200),
            MembershipSet::from_rows((0..200).step_by(17).collect(), 200),
            MembershipSet::from_rows((0..200).filter(|r| r % 3 != 0).collect(), 200),
            MembershipSet::from_rows(vec![], 200),
        ];
        for m in &sets {
            for (lo, hi) in [
                (0, 200),
                (0, 0),
                (50, 130),
                (63, 65),
                (128, 500),
                (199, 200),
            ] {
                let naive = m.iter().filter(|&r| r >= lo && r < hi).count();
                assert_eq!(m.count_range(lo, hi), naive, "{m:?} range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn empty_set_behaviour() {
        let m = MembershipSet::from_rows(vec![], 10);
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
        assert!(m.sample(0.5, 1).is_empty());
    }
}
