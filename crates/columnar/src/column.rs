//! Typed columns over base-type arrays.
//!
//! Columns are immutable after construction (tables are snapshots, paper §2).
//! Enum dispatch keeps hot scan loops monomorphic without trait objects.
//!
//! Integer values and dictionary codes live behind the [`crate::encoding`]
//! layer: constructors analyze the data and pick a physical encoding
//! (plain / frame-of-reference bit-packed / run-length), and the chunked
//! scan drivers decode 64-row blocks on the fly. Kernels that need raw
//! access go through [`I64Column::storage`] / [`DictColumn::codes`] (any
//! [`crate::scan::ScanSource`]) or the per-row [`I64Column::get`] /
//! [`DictColumn::code`] accessors.

use crate::dictionary::{Dictionary, DictionaryBuilder};
use crate::encoding::{CodeStorage, I64Storage, ZoneMap};
use crate::nullmask::NullMask;
use crate::schema::ColumnKind;
use crate::value::Value;
use std::sync::Arc;

/// A column of 64-bit integers (also backs `Date` columns as epoch millis).
#[derive(Debug, Clone, Default)]
pub struct I64Column {
    storage: I64Storage,
    nulls: NullMask,
    /// Per-64-row-block min/max, recorded at ingest for block skipping
    /// (shared by clones; derived state, not counted in footprints).
    zones: Arc<ZoneMap<i64>>,
}

impl I64Column {
    /// Build from values and an optional per-row null flag, choosing the
    /// cheapest physical encoding automatically.
    pub fn new(data: Vec<i64>, nulls: NullMask) -> Self {
        Self::with_storage(I64Storage::encode(data), nulls)
    }

    /// Build keeping the values uncompressed (benchmark baselines and
    /// encoding-equivalence tests).
    pub fn plain(data: Vec<i64>, nulls: NullMask) -> Self {
        Self::with_storage(I64Storage::plain_of(data), nulls)
    }

    /// Build from an already-encoded storage (e.g. `hvc` decode, which
    /// preserves the file's encoding instead of re-analyzing).
    pub fn with_storage(storage: I64Storage, nulls: NullMask) -> Self {
        let zones = Arc::new(ZoneMap::build(&storage));
        I64Column {
            storage,
            nulls,
            zones,
        }
    }

    /// Build from an already-encoded storage *and* its persisted zone map —
    /// the mapped-file (`hvc` v3) open path, where rebuilding the zones
    /// would fault in the very payload they exist to skip. The caller
    /// asserts the zones describe `storage` exactly.
    pub fn with_storage_and_zones(
        storage: I64Storage,
        nulls: NullMask,
        zones: ZoneMap<i64>,
    ) -> Self {
        I64Column {
            storage,
            nulls,
            zones: Arc::new(zones),
        }
    }

    /// Build from options: `None` becomes a null.
    pub fn from_options(vals: impl IntoIterator<Item = Option<i64>>) -> Self {
        let vals: Vec<Option<i64>> = vals.into_iter().collect();
        let len = vals.len();
        let nulls = NullMask::from_flags(vals.iter().map(|v| v.is_none()), len);
        let data = vals.into_iter().map(|v| v.unwrap_or(0)).collect();
        Self::new(data, nulls)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.storage.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty()
    }

    /// The encoded value storage (null rows hold 0; check the mask).
    /// Implements [`crate::scan::ScanSource`], so it plugs straight into
    /// the chunked scan drivers.
    #[inline]
    pub fn storage(&self) -> &I64Storage {
        &self.storage
    }

    /// Null mask.
    #[inline]
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// Per-64-row-block min/max of the stored values (null rows contribute
    /// their placeholder), recorded at ingest for block skipping.
    #[inline]
    pub fn zones(&self) -> &ZoneMap<i64> {
        &self.zones
    }

    /// Value at row `i`, or `None` if missing.
    #[inline]
    pub fn get(&self, i: usize) -> Option<i64> {
        if self.nulls.is_null(i) {
            None
        } else {
            Some(self.storage.get(i))
        }
    }
}

/// A column of 64-bit floats. NaNs are normalized to nulls at build time.
///
/// The payload is a [`crate::residency::ValueBuf`], so a mapped (`hvc` v3)
/// double column is file-backed at *column* granularity: the scan binder
/// takes the whole slice once via [`F64Column::data`], which touches every
/// chunk — lazy residency for doubles saves I/O across unqueried columns,
/// not within one.
#[derive(Debug, Clone, Default)]
pub struct F64Column {
    data: crate::residency::ValueBuf<f64>,
    nulls: NullMask,
    /// Per-64-row-block min/max (NaN-free folds), recorded at ingest for
    /// block skipping.
    zones: Arc<ZoneMap<f64>>,
}

impl F64Column {
    /// Build from values and a null mask; NaNs become additional nulls.
    pub fn new(data: Vec<f64>, mut nulls: NullMask) -> Self {
        let len = data.len();
        for (i, v) in data.iter().enumerate() {
            if v.is_nan() {
                nulls.set_null(i, len);
            }
        }
        let zones = Arc::new(ZoneMap::from_f64(&data));
        F64Column {
            data: data.into(),
            nulls,
            zones,
        }
    }

    /// Build from options: `None` (and NaN) become nulls.
    pub fn from_options(vals: impl IntoIterator<Item = Option<f64>>) -> Self {
        let vals: Vec<Option<f64>> = vals.into_iter().collect();
        let len = vals.len();
        let nulls = NullMask::from_flags(vals.iter().map(|v| v.is_none_or(f64::is_nan)), len);
        let data: Vec<f64> = vals.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        let zones = Arc::new(ZoneMap::from_f64(&data));
        F64Column {
            data: data.into(),
            nulls,
            zones,
        }
    }

    /// Build from an already-normalized payload and its persisted zone map
    /// — the mapped-file (`hvc` v3) open path. The caller asserts the
    /// invariant `new` establishes at ingest: every NaN row is already
    /// marked null (the writer stored the normalized payload), and the
    /// zones describe `data` exactly.
    pub fn from_parts(
        data: crate::residency::ValueBuf<f64>,
        nulls: NullMask,
        zones: ZoneMap<f64>,
    ) -> Self {
        F64Column {
            data,
            nulls,
            zones: Arc::new(zones),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data slice (null rows hold 0.0; check the mask). For a mapped
    /// column this touches the whole payload into residency.
    #[inline]
    pub fn data(&self) -> &[f64] {
        self.data.slice()
    }

    /// Heap bytes of the payload (zero when file-backed).
    pub fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
    }

    /// File-backed payload bytes (zero when owned).
    pub fn mapped_bytes(&self) -> usize {
        self.data.mapped_bytes()
    }

    /// Per-64-row-block min/max of the raw values (NaN-free folds),
    /// recorded at ingest for block skipping.
    #[inline]
    pub fn zones(&self) -> &ZoneMap<f64> {
        &self.zones
    }

    /// Null mask.
    #[inline]
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// Value at row `i`, or `None` if missing.
    #[inline]
    pub fn get(&self, i: usize) -> Option<f64> {
        if self.nulls.is_null(i) {
            None
        } else {
            Some(self.data.hot(i..i + 1)[i])
        }
    }
}

/// A dictionary-encoded column of strings or categoricals.
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    codes: CodeStorage,
    dict: Arc<Dictionary>,
    nulls: NullMask,
    /// Per-64-row-block min/max *code*, recorded at ingest so categorical
    /// `Equals`/text matches can skip whole blocks (null rows contribute
    /// their code-0 placeholder).
    zones: Arc<ZoneMap<u32>>,
}

impl DictColumn {
    /// Build from pre-encoded codes and their dictionary, choosing the
    /// cheapest physical encoding for the code array automatically.
    pub fn new(codes: Vec<u32>, dict: Arc<Dictionary>, nulls: NullMask) -> Self {
        Self::with_storage(CodeStorage::encode(codes), dict, nulls)
    }

    /// Build keeping the codes uncompressed.
    pub fn plain(codes: Vec<u32>, dict: Arc<Dictionary>, nulls: NullMask) -> Self {
        Self::with_storage(CodeStorage::plain_of(codes), dict, nulls)
    }

    /// Build from already-encoded code storage (e.g. `hvc` decode).
    pub fn with_storage(codes: CodeStorage, dict: Arc<Dictionary>, nulls: NullMask) -> Self {
        let zones = Arc::new(ZoneMap::build(&codes));
        DictColumn {
            codes,
            dict,
            nulls,
            zones,
        }
    }

    /// Build from already-encoded code storage *and* its persisted zone map
    /// — the mapped-file (`hvc` v3) open path (see
    /// [`I64Column::with_storage_and_zones`]).
    pub fn with_storage_and_zones(
        codes: CodeStorage,
        dict: Arc<Dictionary>,
        nulls: NullMask,
        zones: ZoneMap<u32>,
    ) -> Self {
        DictColumn {
            codes,
            dict,
            nulls,
            zones: Arc::new(zones),
        }
    }

    /// Build by interning an iterator of optional strings.
    pub fn from_strings<'a>(vals: impl IntoIterator<Item = Option<&'a str>>) -> Self {
        let mut builder = DictionaryBuilder::new();
        let mut codes = Vec::new();
        let mut null_rows = Vec::new();
        for (i, v) in vals.into_iter().enumerate() {
            match v {
                Some(s) => codes.push(builder.intern(s)),
                None => {
                    codes.push(0);
                    null_rows.push(i);
                }
            }
        }
        let len = codes.len();
        let mut nulls = NullMask::none();
        for i in null_rows {
            nulls.set_null(i, len);
        }
        Self::new(codes, Arc::new(builder.finish()), nulls)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The encoded code storage (null rows hold code 0; check the mask).
    /// Implements [`crate::scan::ScanSource`] for the chunked drivers.
    #[inline]
    pub fn codes(&self) -> &CodeStorage {
        &self.codes
    }

    /// The dictionary code at row `i` (code 0 for null rows).
    #[inline]
    pub fn code(&self, i: usize) -> u32 {
        self.codes.get(i)
    }

    /// The dictionary shared by this column.
    #[inline]
    pub fn dictionary(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// Per-64-row-block min/max code (null rows contribute code 0),
    /// recorded at ingest for categorical block skipping.
    #[inline]
    pub fn zones(&self) -> &ZoneMap<u32> {
        &self.zones
    }

    /// Null mask.
    #[inline]
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// The string at row `i`, or `None` if missing.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Arc<str>> {
        if self.nulls.is_null(i) {
            None
        } else {
            Some(self.dict.get(self.codes.get(i)))
        }
    }
}

/// A typed column. The kind tag distinguishes `Int` from `Date` and `String`
/// from `Category` even though they share storage layouts.
#[derive(Debug, Clone)]
pub enum Column {
    /// Integers.
    Int(I64Column),
    /// Dates (epoch milliseconds).
    Date(I64Column),
    /// Floats.
    Double(F64Column),
    /// Free-form strings.
    Str(DictColumn),
    /// Categorical strings.
    Cat(DictColumn),
}

impl Column {
    /// The column's kind.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Int(_) => ColumnKind::Int,
            Column::Date(_) => ColumnKind::Date,
            Column::Double(_) => ColumnKind::Double,
            Column::Str(_) => ColumnKind::String,
            Column::Cat(_) => ColumnKind::Category,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) | Column::Date(c) => c.len(),
            Column::Double(c) => c.len(),
            Column::Str(c) | Column::Cat(c) => c.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of missing values.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(c) | Column::Date(c) => c.nulls().null_count(),
            Column::Double(c) => c.nulls().null_count(),
            Column::Str(c) | Column::Cat(c) => c.nulls().null_count(),
        }
    }

    /// The null bitmap shared by all column kinds, if any nulls exist.
    /// Chunked kernels combine this with membership words (see
    /// [`crate::scan`]).
    #[inline]
    pub fn null_bitmap(&self) -> Option<&crate::bitmap::Bitmap> {
        match self {
            Column::Int(c) | Column::Date(c) => c.nulls().bitmap(),
            Column::Double(c) => c.nulls().bitmap(),
            Column::Str(c) | Column::Cat(c) => c.nulls().bitmap(),
        }
    }

    /// True if row `i` is missing.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Int(c) | Column::Date(c) => c.nulls().is_null(i),
            Column::Double(c) => c.nulls().is_null(i),
            Column::Str(c) | Column::Cat(c) => c.nulls().is_null(i),
        }
    }

    /// The dynamically-typed value at row `i`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int(c) => c.get(i).map_or(Value::Missing, Value::Int),
            Column::Date(c) => c.get(i).map_or(Value::Missing, Value::Date),
            Column::Double(c) => c.get(i).map_or(Value::Missing, Value::Double),
            Column::Str(c) | Column::Cat(c) => {
                c.get(i).map_or(Value::Missing, |s| Value::Str(s.clone()))
            }
        }
    }

    /// Row `i` as an `f64`, when the column is numeric and the row present.
    /// Used by chart vizketches (histogram/CDF/heatmap), which operate on
    /// anything convertible to a real number (paper §4.3).
    #[inline]
    pub fn as_f64(&self, i: usize) -> Option<f64> {
        match self {
            Column::Int(c) | Column::Date(c) => c.get(i).map(|v| v as f64),
            Column::Double(c) => c.get(i),
            _ => None,
        }
    }

    /// The numeric (`I64Column`) view if the column is `Int` or `Date`.
    pub fn as_i64_col(&self) -> Option<&I64Column> {
        match self {
            Column::Int(c) | Column::Date(c) => Some(c),
            _ => None,
        }
    }

    /// The float view if the column is `Double`.
    pub fn as_f64_col(&self) -> Option<&F64Column> {
        match self {
            Column::Double(c) => Some(c),
            _ => None,
        }
    }

    /// The dictionary view if the column is `Str` or `Cat`.
    pub fn as_dict_col(&self) -> Option<&DictColumn> {
        match self {
            Column::Str(c) | Column::Cat(c) => Some(c),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes (for the data-cache accounting of
    /// paper §5.4 and the worker's per-dataset footprint reports). Reflects
    /// the *encoded* payload, so compressed columns report their true size.
    /// File-backed (mapped) payloads count zero here — see
    /// [`Column::mapped_bytes`] — and are never touched by the accounting.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Int(c) | Column::Date(c) => c.storage().heap_bytes(),
            Column::Double(c) => c.heap_bytes(),
            Column::Str(c) | Column::Cat(c) => c.codes().heap_bytes() + c.dictionary().heap_bytes(),
        }
    }

    /// Bytes of the payload addressed through a lazily-resident mapped
    /// segment (zero for fully owned columns): the out-of-core capacity
    /// this column reaches without heap cost. Resident-chunk accounting
    /// lives in the block cache, not per column.
    pub fn mapped_bytes(&self) -> usize {
        match self {
            Column::Int(c) | Column::Date(c) => c.storage().mapped_bytes(),
            Column::Double(c) => c.mapped_bytes(),
            Column::Str(c) | Column::Cat(c) => c.codes().mapped_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::EncodingKind;

    #[test]
    fn i64_column_nulls() {
        let c = I64Column::from_options([Some(1), None, Some(3)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Some(1));
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(3));
        assert_eq!(c.nulls().null_count(), 1);
    }

    #[test]
    fn f64_column_normalizes_nan() {
        let c = F64Column::new(vec![1.0, f64::NAN, 3.0], NullMask::none());
        assert_eq!(c.get(1), None);
        assert_eq!(c.nulls().null_count(), 1);
        let c = F64Column::from_options([Some(1.0), Some(f64::NAN), None]);
        assert_eq!(c.nulls().null_count(), 2);
    }

    #[test]
    fn dict_column_round_trips() {
        let c = DictColumn::from_strings([Some("UA"), Some("AA"), None, Some("UA")]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(0).unwrap().as_ref(), "UA");
        assert_eq!(c.get(1).unwrap().as_ref(), "AA");
        assert!(c.get(2).is_none());
        assert_eq!(c.code(0), c.code(3), "repeated strings share codes");
        assert_eq!(c.dictionary().len(), 2);
    }

    #[test]
    fn column_value_and_kind() {
        let col = Column::Int(I64Column::from_options([Some(5), None]));
        assert_eq!(col.kind(), ColumnKind::Int);
        assert_eq!(col.value(0), Value::Int(5));
        assert_eq!(col.value(1), Value::Missing);
        assert_eq!(col.null_count(), 1);

        let col = Column::Date(I64Column::from_options([Some(1000)]));
        assert_eq!(col.kind(), ColumnKind::Date);
        assert_eq!(col.value(0), Value::Date(1000));
        assert_eq!(col.as_f64(0), Some(1000.0));

        let col = Column::Cat(DictColumn::from_strings([Some("DL")]));
        assert_eq!(col.kind(), ColumnKind::Category);
        assert_eq!(col.value(0), Value::str("DL"));
        assert_eq!(col.as_f64(0), None);
    }

    #[test]
    fn typed_views() {
        let int = Column::Int(I64Column::from_options([Some(1)]));
        assert!(int.as_i64_col().is_some());
        assert!(int.as_f64_col().is_none());
        assert!(int.as_dict_col().is_none());
        let dbl = Column::Double(F64Column::from_options([Some(1.0)]));
        assert!(dbl.as_f64_col().is_some());
        let s = Column::Str(DictColumn::from_strings([Some("a")]));
        assert!(s.as_dict_col().is_some());
    }

    #[test]
    fn heap_bytes_scales_with_rows() {
        let small = Column::Int(I64Column::plain((0..10).collect(), NullMask::none()));
        let big = Column::Int(I64Column::plain((0..1000).collect(), NullMask::none()));
        assert!(big.heap_bytes() > small.heap_bytes());
    }

    #[test]
    fn ingest_compresses_compressible_columns() {
        // Sorted, low-cardinality: run-length; small range: bit-packed;
        // sequential unique: delta.
        let sorted = I64Column::new((0..4096).map(|i| i / 100).collect(), NullMask::none());
        assert_eq!(sorted.storage().kind(), EncodingKind::RunLength);
        let sequential = I64Column::new((0..4096).collect(), NullMask::none());
        assert_eq!(sequential.storage().kind(), EncodingKind::Delta);
        for i in [0usize, 63, 64, 4095] {
            assert_eq!(sequential.get(i), Some(i as i64));
        }
        let packed = I64Column::new(
            (0..4096).map(|i| (i * 7919) % 1024).collect(),
            NullMask::none(),
        );
        assert_eq!(packed.storage().kind(), EncodingKind::BitPacked);
        let plain = I64Column::plain((0..4096).collect(), NullMask::none());
        assert_eq!(plain.storage().kind(), EncodingKind::Plain);
        // Values identical under every encoding.
        for i in [0usize, 63, 64, 4095] {
            assert_eq!(sorted.get(i), Some(i as i64 / 100));
        }
        assert!(sorted.storage().heap_bytes() * 4 <= 4096 * 8);
    }

    #[test]
    fn dict_codes_compress() {
        let c = DictColumn::from_strings((0..5000).map(|i| Some(["a", "b", "c"][i % 3])));
        assert_ne!(c.codes().kind(), EncodingKind::Plain);
        assert_eq!(c.code(3), c.code(0));
    }
}
