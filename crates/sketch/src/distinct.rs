//! HyperLogLog distinct counting.
//!
//! Paper App. B.3: *"Number of distinct elements. This information is
//! computed approximatively using the HyperLogLog sketch."* Registers merge
//! by pointwise max, making HLL a textbook mergeable summary.

use crate::hashutil::hash_value;
use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_rows, scan_values, Selection};
use hillview_columnar::{FrameFilter, Predicate};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// HLL sketch of one column's distinct value count.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    /// Column name.
    pub column: Arc<str>,
    /// Register-count exponent: `2^p` registers. 12 ⇒ 4096 registers ⇒
    /// ~1.6% standard error. Range 4..=16.
    pub p: u8,
    /// Hash seed (logged for deterministic replay).
    pub seed: u64,
}

impl DistinctSketch {
    /// Default-precision (p=12) sketch of the named column.
    pub fn new(column: &str) -> Self {
        DistinctSketch {
            column: Arc::from(column),
            p: 12,
            seed: 0,
        }
    }

    /// Override precision.
    pub fn with_precision(mut self, p: u8) -> Self {
        assert!((4..=16).contains(&p), "p out of range");
        self.p = p;
        self
    }
}

/// HLL register array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSummary {
    /// Register-count exponent.
    pub p: u8,
    /// `2^p` max-rank registers.
    pub registers: Vec<u8>,
    /// Missing rows seen (not counted as a distinct value).
    pub missing: u64,
}

impl DistinctSummary {
    fn zero(p: u8) -> Self {
        DistinctSummary {
            p,
            registers: vec![0; 1 << p],
            missing: 0,
        }
    }

    /// The HLL cardinality estimate with small-range correction.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting on empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    fn observe(&mut self, hash: u64) {
        let p = self.p as u32;
        let idx = (hash >> (64 - p)) as usize;
        let rest = hash << p;
        // Rank = leading zeros of the remaining bits + 1, capped.
        let rank = (rest.leading_zeros() + 1).min(64 - p) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }
}

impl Summary for DistinctSummary {
    fn merge(&self, other: &Self) -> Self {
        debug_assert_eq!(self.p, other.p);
        DistinctSummary {
            p: self.p,
            registers: self
                .registers
                .iter()
                .zip(&other.registers)
                .map(|(a, b)| *a.max(b))
                .collect(),
            missing: self.missing + other.missing,
        }
    }
}

impl Wire for DistinctSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.p);
        w.put_bytes(&self.registers);
        w.put_varint(self.missing);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let p = r.get_u8()?;
        let registers = r.get_bytes()?;
        if registers.len() != 1usize << p {
            return Err(hillview_net::Error::BadLength {
                context: "HLL registers",
                len: registers.len() as u64,
            });
        }
        Ok(DistinctSummary {
            p,
            registers,
            missing: r.get_varint()?,
        })
    }
}

impl Sketch for DistinctSketch {
    type Summary = DistinctSummary;

    fn name(&self) -> &'static str {
        "distinct-hll"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<DistinctSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<DistinctSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<DistinctSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<DistinctSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> DistinctSummary {
        DistinctSummary::zero(self.p)
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        Some(format!("{}|{}|{}", self.column, self.p, self.seed).into_bytes())
    }
}

impl DistinctSketch {
    /// The shared scan body; HLL registers max-merge, so split partials
    /// fold back to exactly the unsplit register array.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _partition_seed: u64,
    ) -> SketchResult<DistinctSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let mut out = DistinctSummary::zero(self.p);
        // Only the sketch-level seed feeds the hash: every partition must
        // hash values identically or registers would not merge.
        let seed = self.seed;
        let base = crate::view::bounded_selection(view, &None, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        if let Some(dict) = col.as_dict_col() {
            // Dictionary columns: hash each *code's* string once per
            // partition, then observe per row via the chunked code scan
            // (one null-word probe per 64 rows).
            let hashes: Vec<u64> = dict
                .dictionary()
                .iter()
                .map(|s| crate::hashutil::hash_str(s, seed))
                .collect();
            let mut missing = 0u64;
            scan_values(
                &sel,
                dict.codes(),
                dict.nulls().bitmap(),
                &mut missing,
                |code| out.observe(hashes[code as usize]),
            );
            out.missing = missing;
        } else {
            // Generic path: chunked row enumeration (registers are
            // max-merged, so order is irrelevant, but chunks visit the same
            // rows the per-row reference would).
            scan_rows(&sel, |row| {
                let v = col.value(row);
                if v.is_missing() {
                    out.missing += 1;
                } else {
                    out.observe(hash_value(&v, seed));
                }
            });
        }
        Ok(out)
    }

    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(
        &self,
        view: &TableView,
        _partition_seed: u64,
    ) -> SketchResult<DistinctSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let mut out = DistinctSummary::zero(self.p);
        let seed = self.seed;
        if let Some(dict) = col.as_dict_col() {
            let hashes: Vec<u64> = dict
                .dictionary()
                .iter()
                .map(|s| crate::hashutil::hash_str(s, seed))
                .collect();
            for row in view.iter_rows() {
                if dict.nulls().is_null(row) {
                    out.missing += 1;
                } else {
                    out.observe(hashes[dict.code(row) as usize]);
                }
            }
        } else {
            for row in view.iter_rows() {
                let v = col.value(row);
                if v.is_missing() {
                    out.missing += 1;
                } else {
                    out.observe(hash_value(&v, seed));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn int_view(vals: Vec<i64>) -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(vals.into_iter().map(Some))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn small_cardinalities_are_near_exact() {
        let v = int_view((0..100).map(|i| i % 10).collect());
        let s = DistinctSketch::new("X").summarize(&v, 0).unwrap();
        let est = s.estimate();
        assert!((est - 10.0).abs() < 1.0, "estimate {est}");
    }

    #[test]
    fn large_cardinalities_within_tolerance() {
        let v = int_view((0..50_000).collect());
        let s = DistinctSketch::new("X").summarize(&v, 0).unwrap();
        let est = s.estimate();
        let err = (est - 50_000.0).abs() / 50_000.0;
        assert!(err < 0.05, "estimate {est}, err {err}");
    }

    #[test]
    fn merge_equals_whole_exactly() {
        // HLL registers are max-merged, so the law holds bit-for-bit.
        let v = int_view((0..1000).collect());
        let t = v.table().clone();
        let parts = vec![
            TableView::with_members(
                t.clone(),
                Arc::new(MembershipSet::from_rows((0..500).collect(), 1000)),
            ),
            TableView::with_members(
                t,
                Arc::new(MembershipSet::from_rows((500..1000).collect(), 1000)),
            ),
        ];
        assert!(merge_law_holds(&DistinctSketch::new("X"), &v, &parts, 0));
    }

    #[test]
    fn duplicates_across_partitions_not_double_counted() {
        let v = int_view((0..1000).map(|i| i % 50).collect());
        let t = v.table().clone();
        let a = DistinctSketch::new("X")
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows((0..500).collect(), 1000)),
                ),
                0,
            )
            .unwrap();
        let b = DistinctSketch::new("X")
            .summarize(
                &TableView::with_members(
                    t,
                    Arc::new(MembershipSet::from_rows((500..1000).collect(), 1000)),
                ),
                0,
            )
            .unwrap();
        let est = a.merge(&b).estimate();
        assert!((est - 50.0).abs() < 5.0, "estimate {est}");
    }

    #[test]
    fn string_column_distincts() {
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings((0..500).map(|i| {
                    if i % 7 == 0 {
                        None
                    } else {
                        Some(["a", "b", "c"][i % 3])
                    }
                }))),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let s = DistinctSketch::new("S").summarize(&v, 0).unwrap();
        assert!((s.estimate() - 3.0).abs() < 0.5);
        assert!(s.missing > 0);
    }

    #[test]
    fn precision_trades_size_for_error() {
        let lo = DistinctSketch::new("X").with_precision(6);
        let hi = DistinctSketch::new("X").with_precision(14);
        let v = int_view((0..20_000).collect());
        let slo = lo.summarize(&v, 0).unwrap();
        let shi = hi.summarize(&v, 0).unwrap();
        assert!(slo.to_bytes().len() < shi.to_bytes().len());
        let err_hi = (shi.estimate() - 20_000.0).abs() / 20_000.0;
        assert!(err_hi < 0.05, "err {err_hi}");
    }

    #[test]
    fn wire_roundtrip() {
        let v = int_view((0..100).collect());
        let s = DistinctSketch::new("X").summarize(&v, 0).unwrap();
        assert_eq!(DistinctSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn empty_estimates_zero() {
        let s = DistinctSketch::new("X").identity();
        assert_eq!(s.estimate(), 0.0);
    }
}
