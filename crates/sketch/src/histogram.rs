//! Histogram bucket-count kernels, streaming (exact) and sampled.
//!
//! Paper §4.3: the histogram vizketch divides a range into B equi-sized
//! intervals; the summarize function outputs a vector of B bin counts and
//! merge adds two vectors. The *sampled* variant reads only a uniform subset
//! of rows at a supplied rate — the viz layer picks the rate from the screen
//! resolution so the error stays under half a pixel (App. C.2). CDFs reuse
//! this kernel with one bucket per horizontal pixel.
//!
//! The hot loop consumes decoded [`hillview_columnar::block::Block`]
//! frames: 64 value lanes, one selection word, one validity word. Bucket
//! indexes for a whole frame are computed by the lane-parallel
//! [`hillview_columnar::simd::bucket_indexes`] primitive (AVX2-dispatched
//! under the `simd` feature, scalar otherwise — bit-identical either way,
//! since counter increments commute and dead lanes land in a trash slot).
//! [`HistogramSketch::summarize_rowwise`] keeps the per-row scan as the
//! reference implementation for the equivalence property tests.

use crate::buckets::BucketSpec;
use crate::traits::{Sketch, SketchError, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_values, Selection};
use hillview_columnar::simd::{self, BucketParams, LaneValue};
use hillview_columnar::{scan_blocks, Block, BlockSink, Column, FrameFilter, Predicate};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Histogram sketch over one column.
#[derive(Debug, Clone)]
pub struct HistogramSketch {
    /// Column to bucket (numeric for [`BucketSpec::Numeric`], string for
    /// [`BucketSpec::Strings`]).
    pub column: Arc<str>,
    /// Bucket boundaries.
    pub buckets: BucketSpec,
    /// Row sampling rate; `>= 1.0` streams every row (exact).
    pub rate: f64,
}

impl HistogramSketch {
    /// Exact (streaming) histogram.
    pub fn streaming(column: &str, buckets: BucketSpec) -> Self {
        HistogramSketch {
            column: Arc::from(column),
            buckets,
            rate: 1.0,
        }
    }

    /// Sampled histogram at `rate`.
    pub fn sampled(column: &str, buckets: BucketSpec, rate: f64) -> Self {
        HistogramSketch {
            column: Arc::from(column),
            buckets,
            rate,
        }
    }
}

/// Bucket counts produced by a [`HistogramSketch`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Count per bucket (of sampled rows when `rate < 1`).
    pub buckets: Vec<u64>,
    /// Sampled rows whose value was missing.
    pub missing: u64,
    /// Sampled rows whose value fell outside the bucket range.
    pub out_of_range: u64,
    /// Total rows inspected (= sample size at the leaf).
    pub rows_inspected: u64,
}

impl HistogramSummary {
    /// Zero counts for `n` buckets.
    pub fn zero(n: usize) -> Self {
        HistogramSummary {
            buckets: vec![0; n],
            ..Default::default()
        }
    }

    /// Total count across buckets.
    pub fn total_in_buckets(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

impl Summary for HistogramSummary {
    fn merge(&self, other: &Self) -> Self {
        // The identity summary is zero-length; adopt the other's width.
        if self.buckets.is_empty() {
            return other.clone();
        }
        if other.buckets.is_empty() {
            return self.clone();
        }
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        HistogramSummary {
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            missing: self.missing + other.missing,
            out_of_range: self.out_of_range + other.out_of_range,
            rows_inspected: self.rows_inspected + other.rows_inspected,
        }
    }
}

impl Wire for HistogramSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.buckets.len() as u64);
        for &b in &self.buckets {
            w.put_varint(b);
        }
        w.put_varint(self.missing);
        w.put_varint(self.out_of_range);
        w.put_varint(self.rows_inspected);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let n = r.get_len("histogram buckets")?;
        let mut buckets = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            buckets.push(r.get_varint()?);
        }
        Ok(HistogramSummary {
            buckets,
            missing: r.get_varint()?,
            out_of_range: r.get_varint()?,
            rows_inspected: r.get_varint()?,
        })
    }
}

impl Sketch for HistogramSketch {
    type Summary = HistogramSummary;

    fn name(&self) -> &'static str {
        if self.rate >= 1.0 {
            "histogram-streaming"
        } else {
            "histogram-sampled"
        }
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<HistogramSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<HistogramSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<HistogramSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<HistogramSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> HistogramSummary {
        HistogramSummary::zero(self.buckets.count())
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        // Only the exact (streaming) histogram is seed-independent.
        (self.rate >= 1.0).then(|| format!("{}|{:?}", self.column, self.buckets).into_bytes())
    }
}

impl HistogramSketch {
    /// The shared scan body: `bounds` of `None` is the whole partition,
    /// `Some((lo, hi))` a split sub-range. Counters are integers, so the
    /// range partials fold back to exactly the unsplit summary.
    ///
    /// With `filter` present the predicate is fused into the scan: it
    /// evaluates per 64-row frame inside the selection stream and only
    /// surviving lanes reach the bucket kernel — no membership set is
    /// materialized and the column is decoded once. Sampled histograms
    /// fall back to the two-pass path, because the sample must be drawn
    /// from the *filtered* membership to stay bit-identical to it.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        seed: u64,
    ) -> SketchResult<HistogramSummary> {
        if let Some(pred) = filter {
            if self.rate < 1.0 {
                let narrowed = crate::view::filtered_view(view, pred)?;
                return self.summarize_bounded(&narrowed, bounds, None, seed);
            }
        }
        let col = view.table().column_by_name(&self.column)?;
        let sampled = (self.rate < 1.0).then(|| view.sample_rows(self.rate, seed));
        let base = crate::view::bounded_selection(view, &sampled, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        let mut out = HistogramSummary::zero(self.buckets.count());
        // The fused filter is single-pass, so its row count is read back
        // after the scan; the unfiltered count is position-independent.
        if ff.is_none() {
            out.rows_inspected = base.count() as u64;
        }
        match (&self.buckets, col) {
            // Numeric buckets over numeric columns: block frames with one
            // null-word check per 64 rows. Bucket indexes of a whole frame
            // are computed by the lane-parallel primitive (dead lanes to a
            // trash slot, branch-free), then folded into the counters. The
            // arithmetic is `index_of_f64` with the spec fields hoisted;
            // identical expression order, and counter additions commute, so
            // the result is bit-identical to the reference path under
            // either codegen.
            (BucketSpec::Numeric { lo, hi, count }, Column::Double(c)) => {
                scan_numeric_blocks(
                    &sel,
                    c.data(),
                    c.nulls().bitmap(),
                    (*lo, *hi, *count),
                    &mut out,
                );
            }
            (BucketSpec::Numeric { lo, hi, count }, Column::Int(c) | Column::Date(c)) => {
                scan_numeric_blocks(
                    &sel,
                    c.storage(),
                    c.nulls().bitmap(),
                    (*lo, *hi, *count),
                    &mut out,
                );
            }
            // String buckets over dictionary columns: bucket the dictionary
            // once, then count by code — O(dict) lookups instead of O(rows).
            (BucketSpec::Strings { .. }, Column::Str(c) | Column::Cat(c)) => {
                let code_bucket: Vec<Option<usize>> = c
                    .dictionary()
                    .iter()
                    .map(|s| self.buckets.index_of_str(s))
                    .collect();
                scan_values(
                    &sel,
                    c.codes(),
                    c.nulls().bitmap(),
                    &mut out.missing,
                    |code| match code_bucket[code as usize] {
                        Some(b) => out.buckets[b] += 1,
                        None => out.out_of_range += 1,
                    },
                );
            }
            (spec, col) => {
                return Err(SketchError::BadConfig(format!(
                    "bucket spec {:?} incompatible with column kind {}",
                    spec.count(),
                    col.kind()
                )))
            }
        }
        if let Some(f) = &ff {
            out.rows_inspected = f.borrow().matched();
        }
        Ok(out)
    }
}

/// Block-based numeric histogram loop shared by the Double and Int/Date
/// arms; any [`ScanSource`](hillview_columnar::ScanSource) whose lanes
/// convert to `f64` works (plain float slices, every integer encoding).
///
/// Counts land in a `cnt + 2`-slot scratch vector: slot `cnt` collects
/// out-of-range rows and slot `cnt + 1` is the trash slot that dead lanes
/// (unselected or null) of vectorized frames scatter into, so the lane
/// loop is branch-free. The scratch is folded into `out` afterwards;
/// counter additions commute, so the vector and scalar paths (and any
/// split execution) produce bit-identical summaries.
fn scan_numeric_blocks<T: LaneValue + Default, S: hillview_columnar::ScanSource<T> + ?Sized>(
    sel: &Selection<'_>,
    data: &S,
    nulls: Option<&hillview_columnar::Bitmap>,
    (lo, hi, cnt): (f64, f64, usize),
    out: &mut HistogramSummary,
) {
    struct Sink {
        params: BucketParams,
        /// Four interleaved sub-histograms of `cnt + 2` slots each (slot
        /// `cnt` = out-of-range, `cnt + 1` = dead-lane trash): lane `k`
        /// scatters into sub-histogram `k % 4`, breaking the
        /// store-to-load dependency chain when consecutive rows hit the
        /// same bucket (sorted data). Integer adds commute, so the merged
        /// counts are independent of the sub-histogram split.
        counts: Vec<u64>,
        stride: usize,
        idxs: [u32; 64],
    }

    impl<T: LaneValue> BlockSink<T> for Sink {
        fn block(&mut self, b: &Block<'_, T>) {
            let live = b.live();
            if live == 0 {
                return;
            }
            // Lane-parallel fast path: compute every lane's cell (dead
            // lanes → trash), scatter unconditionally. Sparser frames fall
            // back to per-bit scalar work — same cells, same counts — the
            // lane path does 64 lanes of work regardless of liveness, so
            // it only pays off when (nearly) the whole frame is live.
            if simd::active() && live.count_ones() as usize * 8 >= b.len() * 7 {
                let dead = self.params.cnt + 1;
                simd::bucket_indexes(b.values, live, &self.params, dead, &mut self.idxs);
                let s = self.stride;
                for chunk in self.idxs[..b.len()].chunks_exact(4) {
                    self.counts[chunk[0] as usize] += 1;
                    self.counts[s + chunk[1] as usize] += 1;
                    self.counts[2 * s + chunk[2] as usize] += 1;
                    self.counts[3 * s + chunk[3] as usize] += 1;
                }
                for (j, &i) in self.idxs[..b.len()]
                    .chunks_exact(4)
                    .remainder()
                    .iter()
                    .enumerate()
                {
                    self.counts[j * s + i as usize] += 1;
                }
            } else {
                let mut m = live;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let cell = self.params.cell_of(b.values[k].lane_f64());
                    self.counts[(k % 4) * self.stride + cell as usize] += 1;
                }
            }
        }
        #[inline]
        fn one(&mut self, row: usize, v: T) {
            let cell = self.params.cell_of(v.lane_f64());
            self.counts[(row % 4) * self.stride + cell as usize] += 1;
        }
    }

    let stride = cnt + 2;
    let mut sink = Sink {
        params: BucketParams {
            lo,
            hi,
            // Hoisted; identical bits to the per-call value `index_of_f64`
            // computes.
            scale: cnt as f64 / (hi - lo),
            cnt: cnt as u32,
        },
        counts: vec![0u64; stride * 4],
        stride,
        idxs: [0u32; 64],
    };
    scan_blocks(sel, data, nulls, &mut out.missing, &mut sink);
    let merged = |slot: usize| -> u64 { (0..4).map(|l| sink.counts[l * stride + slot]).sum() };
    out.out_of_range += merged(cnt);
    for (i, b) in out.buckets.iter_mut().enumerate() {
        *b += merged(i);
    }
}

impl HistogramSketch {
    /// Per-row reference implementation: the pre-chunking scan, kept for the
    /// scan-equivalence property tests and the chunked-vs-rowwise benchmark.
    /// Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, seed: u64) -> SketchResult<HistogramSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let mut out = HistogramSummary::zero(self.buckets.count());
        match (&self.buckets, col) {
            (BucketSpec::Numeric { .. }, Column::Double(c)) => {
                self.scan_numeric_rowwise(view, seed, &mut out, |r| c.get(r));
            }
            (BucketSpec::Numeric { .. }, Column::Int(c) | Column::Date(c)) => {
                self.scan_numeric_rowwise(view, seed, &mut out, |r| c.get(r).map(|v| v as f64));
            }
            (BucketSpec::Strings { .. }, Column::Str(c) | Column::Cat(c)) => {
                let code_bucket: Vec<Option<usize>> = c
                    .dictionary()
                    .iter()
                    .map(|s| self.buckets.index_of_str(s))
                    .collect();
                let mut tally = |row: usize| {
                    out.rows_inspected += 1;
                    if c.nulls().is_null(row) {
                        out.missing += 1;
                        return;
                    }
                    match code_bucket[c.code(row) as usize] {
                        Some(b) => out.buckets[b] += 1,
                        None => out.out_of_range += 1,
                    }
                };
                if self.rate >= 1.0 {
                    for row in view.iter_rows() {
                        tally(row);
                    }
                } else {
                    for &row in view.sample_rows(self.rate, seed).iter() {
                        tally(row as usize);
                    }
                }
            }
            (spec, col) => {
                return Err(SketchError::BadConfig(format!(
                    "bucket spec {:?} incompatible with column kind {}",
                    spec.count(),
                    col.kind()
                )))
            }
        }
        Ok(out)
    }

    fn scan_numeric_rowwise(
        &self,
        view: &TableView,
        seed: u64,
        out: &mut HistogramSummary,
        get: impl Fn(usize) -> Option<f64>,
    ) {
        let mut tally = |row: usize| {
            out.rows_inspected += 1;
            match get(row) {
                None => out.missing += 1,
                Some(v) => match self.buckets.index_of_f64(v) {
                    Some(b) => out.buckets[b] += 1,
                    None => out.out_of_range += 1,
                },
            }
        };
        if self.rate >= 1.0 {
            for row in view.iter_rows() {
                tally(row);
            }
        } else {
            for &row in view.sample_rows(self.rate, seed).iter() {
                tally(row as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{DictColumn, F64Column, I64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn numeric_view() -> TableView {
        let vals: Vec<Option<f64>> = (0..100).map(|i| Some(i as f64)).collect();
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(vals)),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn streaming_counts_are_exact() {
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 10));
        let s = sk.summarize(&numeric_view(), 0).unwrap();
        assert_eq!(s.buckets, vec![10; 10]);
        assert_eq!(s.missing, 0);
        assert_eq!(s.out_of_range, 0);
        assert_eq!(s.rows_inspected, 100);
    }

    #[test]
    fn out_of_range_and_missing_counted() {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(-5.0),
                    Some(5.0),
                    None,
                    Some(150.0),
                ])),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 10));
        let s = sk.summarize(&v, 0).unwrap();
        assert_eq!(s.total_in_buckets(), 1);
        assert_eq!(s.missing, 1);
        assert_eq!(s.out_of_range, 2);
    }

    #[test]
    fn int_and_date_columns_bucket() {
        let t = Table::builder()
            .column(
                "I",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(1), Some(9)])),
            )
            .column(
                "D",
                ColumnKind::Date,
                Column::Date(I64Column::from_options([Some(100), Some(900)])),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let s = HistogramSketch::streaming("I", BucketSpec::numeric(0.0, 10.0, 2))
            .summarize(&v, 0)
            .unwrap();
        assert_eq!(s.buckets, vec![1, 1]);
        let s = HistogramSketch::streaming("D", BucketSpec::numeric(0.0, 1000.0, 2))
            .summarize(&v, 0)
            .unwrap();
        assert_eq!(s.buckets, vec![1, 1]);
    }

    #[test]
    fn string_histogram_buckets_by_boundaries() {
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings([
                    Some("apple"),
                    Some("banana"),
                    Some("cherry"),
                    Some("avocado"),
                    None,
                ])),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let sk = HistogramSketch::streaming(
            "S",
            BucketSpec::strings(vec!["a".into(), "b".into(), "c".into()]),
        );
        let s = sk.summarize(&v, 0).unwrap();
        assert_eq!(s.buckets, vec![2, 1, 1]);
        assert_eq!(s.missing, 1);
    }

    #[test]
    fn merge_law_on_partitions() {
        let v = numeric_view();
        let t = v.table().clone();
        let parts: Vec<TableView> = (0..4)
            .map(|p| {
                TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows(
                        (p * 25..(p + 1) * 25).collect(),
                        100,
                    )),
                )
            })
            .collect();
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 7));
        assert!(merge_law_holds(&sk, &v, &parts, 9));
    }

    #[test]
    fn sampled_histogram_approximates_exact() {
        let vals: Vec<Option<f64>> = (0..200_000).map(|i| Some((i % 100) as f64)).collect();
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(vals)),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let spec = BucketSpec::numeric(0.0, 100.0, 10);
        let sampled = HistogramSketch::sampled("X", spec, 0.05)
            .summarize(&v, 3)
            .unwrap();
        let n = sampled.rows_inspected as f64;
        assert!((n - 10_000.0).abs() < 1_500.0, "sample size {n}");
        // Each bucket holds ~10% of the distribution.
        for (i, &b) in sampled.buckets.iter().enumerate() {
            let frac = b as f64 / n;
            assert!((frac - 0.1).abs() < 0.02, "bucket {i} frac {frac}");
        }
    }

    #[test]
    fn sampled_is_deterministic_in_seed() {
        let v = numeric_view();
        let sk = HistogramSketch::sampled("X", BucketSpec::numeric(0.0, 100.0, 4), 0.5);
        assert_eq!(sk.summarize(&v, 1).unwrap(), sk.summarize(&v, 1).unwrap());
        // Different seeds explore different rows (almost surely).
        assert_ne!(sk.summarize(&v, 1).unwrap(), sk.summarize(&v, 2).unwrap());
    }

    #[test]
    fn identity_is_merge_unit() {
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 1.0, 3));
        let s = HistogramSummary {
            buckets: vec![1, 2, 3],
            missing: 4,
            out_of_range: 5,
            rows_inspected: 15,
        };
        assert_eq!(sk.identity().merge(&s), s);
        assert_eq!(s.merge(&sk.identity()), s);
    }

    #[test]
    fn mismatched_spec_and_column_rejected() {
        let v = numeric_view();
        let sk = HistogramSketch::streaming("X", BucketSpec::strings(vec!["a".into()]));
        assert!(matches!(
            sk.summarize(&v, 0),
            Err(SketchError::BadConfig(_))
        ));
    }

    #[test]
    fn wire_roundtrip() {
        let s = HistogramSummary {
            buckets: vec![0, 5, 17, 2],
            missing: 3,
            out_of_range: 1,
            rows_inspected: 28,
        };
        assert_eq!(HistogramSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
