//! The `Sketch`/`Summary` abstraction (paper §4.1, Appendix A).

use crate::view::TableView;
use hillview_net::Wire;
use std::fmt;

/// Errors a sketch can raise while summarizing a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// Underlying columnar error (unknown column, type mismatch...).
    Column(String),
    /// The sketch was configured with invalid parameters.
    BadConfig(String),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::Column(m) => write!(f, "column error: {m}"),
            SketchError::BadConfig(m) => write!(f, "bad sketch configuration: {m}"),
        }
    }
}

impl std::error::Error for SketchError {}

impl From<hillview_columnar::Error> for SketchError {
    fn from(e: hillview_columnar::Error) -> Self {
        SketchError::Column(e.to_string())
    }
}

/// Result alias for sketch operations.
pub type SketchResult<T> = Result<T, SketchError>;

/// A mergeable summary (paper §4.1).
///
/// `merge` must be associative and commutative with the sketch's identity
/// summary as unit — the execution tree merges summaries in whatever order
/// partitions happen to complete, so any other behaviour would make results
/// depend on timing. These laws are property-tested per summary type.
pub trait Summary: Clone + Send + Sync + 'static {
    /// Combine two summaries of disjoint data partitions.
    fn merge(&self, other: &Self) -> Self;
}

/// A mergeable summarization method bound to concrete parameters
/// (column names, bucket boundaries, sampling rates...).
///
/// Implementations must be deterministic functions of `(view, seed)`: the
/// engine logs seeds in its redo log and replays sketches after failures,
/// expecting bit-identical summaries (paper §5.8).
pub trait Sketch: Send + Sync + 'static {
    /// The summary type this sketch produces.
    type Summary: Summary + Wire;

    /// A short stable name, used for computation-cache keys and diagnostics.
    fn name(&self) -> &'static str;

    /// Summarize one partition view.
    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<Self::Summary>;

    /// True when this sketch supports [`Sketch::summarize_range`], letting
    /// the executor split one partition into row-range sub-tasks and fold
    /// the partials with [`Summary::merge`]. Defaults to `false`; the
    /// engine never range-splits a sketch that does not opt in.
    fn splittable(&self) -> bool {
        false
    }

    /// Summarize only the rows of `view` whose partition row index lies in
    /// `lo..hi` — the intra-partition parallelism entry point.
    ///
    /// Contract: the bounds tile the partition, so folding the summaries of
    /// consecutive ranges (in ascending range order, starting from
    /// [`Sketch::identity`]) must be a valid summary of the whole
    /// partition, and sampled sketches must draw the *partition-wide*
    /// sample from `seed` and clip it to the bounds — never re-sample the
    /// sub-range — so that split execution stays deterministic and, for
    /// sketches with exact merges, bit-identical to the unsplit
    /// [`Sketch::summarize`].
    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<Self::Summary> {
        let _ = (view, lo, hi, seed);
        Err(SketchError::BadConfig(format!(
            "sketch {} does not support range splitting",
            self.name()
        )))
    }

    /// Summarize the rows of `view` that satisfy `predicate` — the
    /// **fused** filtered-query entry point.
    ///
    /// Contract: the result must be bit-identical to the two-pass execution
    /// `summarize(filtered_view(view, predicate), seed)` — materialize the
    /// filter into a membership set, then sketch it — which is exactly what
    /// this default does. Kernels override it to compile the predicate into
    /// a [`FrameFilter`](hillview_columnar::FrameFilter) and evaluate both
    /// stages in one block pass (no intermediate membership set, no second
    /// decode); the equivalence proptests pin every override against this
    /// default.
    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &hillview_columnar::Predicate,
        seed: u64,
    ) -> SketchResult<Self::Summary> {
        self.summarize(&crate::view::filtered_view(view, predicate)?, seed)
    }

    /// Range-bounded companion of [`Sketch::summarize_filtered`]: summarize
    /// the rows in `lo..hi` (absolute partition row indexes) that satisfy
    /// `predicate`. Same tiling/fold contract as [`Sketch::summarize_range`];
    /// must be bit-identical to
    /// `summarize_range(filtered_view(view, predicate), lo, hi, seed)`.
    ///
    /// Note the bounds are *absolute* row indexes into the partition —
    /// filtering narrows the membership but never renumbers rows — so split
    /// plans computed from the parent membership remain valid under fusion.
    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &hillview_columnar::Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<Self::Summary> {
        self.summarize_range(&crate::view::filtered_view(view, predicate)?, lo, hi, seed)
    }

    /// The merge identity (summary of an empty partition).
    fn identity(&self) -> Self::Summary;

    /// Cacheability declaration: `Some(bytes)` when this sketch's summary
    /// is a pure function of `(data, membership, predicate)` — independent
    /// of the seed and of any per-run state — so the engine may serve a
    /// stored result for a repeated identical query. The bytes encode the
    /// sketch's **parameters** (column names, bucket boundaries, k, ...)
    /// and feed the engine's structural query key alongside the canonical
    /// predicate and the dataset version; two sketches with equal names and
    /// equal identity bytes must produce bit-identical summaries on
    /// identical inputs.
    ///
    /// Defaults to `None` (never cached): correct for seed-dependent
    /// kernels (sampling rate < 1), kernels with per-call state, and any
    /// sketch that doesn't opt in.
    fn cache_identity(&self) -> Option<Vec<u8>> {
        None
    }
}

/// Check the mergeability law on concrete data: summarizing the union must
/// equal merging the parts. Exact sketches satisfy this bit-for-bit when
/// given the same effective sampling behaviour; used by tests.
pub fn merge_law_holds<S>(sketch: &S, whole: &TableView, parts: &[TableView], seed: u64) -> bool
where
    S: Sketch,
    S::Summary: PartialEq,
{
    let direct = match sketch.summarize(whole, seed) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut merged = sketch.identity();
    for p in parts {
        match sketch.summarize(p, seed) {
            Ok(s) => merged = merged.merge(&s),
            Err(_) => return false,
        }
    }
    direct == merged
}

/// The split execution plan the engine runs in parallel, executed serially:
/// recursively halve the partition's
/// [`SplittableSelection`](hillview_columnar::SplittableSelection) until each
/// piece holds at most `grain` selected rows, call
/// [`Sketch::summarize_range`] on every piece, and fold the partials in
/// ascending range order.
///
/// The leaf set is a pure function of `(membership, grain)` and the fold
/// order is fixed, so this is the *reference* the work-stealing executor
/// must reproduce bit-for-bit whatever the thread count or steal order —
/// the parallel-equivalence property tests compare against it. For
/// sketches whose merge is exact (integer counts, lattices) the result also
/// equals the unsplit [`Sketch::summarize`] bit-for-bit.
pub fn summarize_split<S: Sketch>(
    sketch: &S,
    view: &TableView,
    grain: usize,
    seed: u64,
) -> SketchResult<S::Summary> {
    use hillview_columnar::SplittableSelection;

    fn collect<'a>(part: SplittableSelection<'a>, grain: usize, out: &mut Vec<(usize, usize)>) {
        if part.weight() > grain {
            if let Some((l, r)) = part.split() {
                collect(l, grain, out);
                collect(r, grain, out);
                return;
            }
        }
        let (lo, hi) = part.bounds();
        out.push((lo, hi));
    }

    let grain = grain.max(1);
    let mut ranges = Vec::new();
    collect(SplittableSelection::new(view.members()), grain, &mut ranges);
    let mut acc = sketch.identity();
    for (lo, hi) in ranges {
        acc = acc.merge(&sketch.summarize_range(view, lo, hi, seed)?);
    }
    Ok(acc)
}

/// Check that range-split execution reproduces the whole-partition summary
/// exactly: `summarize_split` at `grain` must equal `summarize`. Holds for
/// every sketch whose merge is exact (bucket counts, lattices, HLL
/// registers); order-sensitive or floating-point-summing sketches
/// (Misra-Gries, moments, PCA) are instead pinned by determinism of the
/// split fold itself. Used by tests.
pub fn split_law_holds<S>(sketch: &S, view: &TableView, grain: usize, seed: u64) -> bool
where
    S: Sketch,
    S::Summary: PartialEq,
{
    match (
        sketch.summarize(view, seed),
        summarize_split(sketch, view, grain, seed),
    ) {
        (Ok(direct), Ok(split)) => direct == split,
        _ => false,
    }
}

/// Split-execution reference for a **fused** filtered query: compute the
/// leaf ranges from the *parent* membership (filtering never renumbers rows,
/// and the engine plans splits before the filter has been materialized),
/// run [`Sketch::summarize_filtered_range`] on every leaf, and fold
/// ascending from [`Sketch::identity`]. The work-stealing executor must
/// reproduce this bit-for-bit under the fused path, whatever the thread
/// count. Used by tests.
pub fn summarize_filtered_split<S: Sketch>(
    sketch: &S,
    view: &TableView,
    predicate: &hillview_columnar::Predicate,
    grain: usize,
    seed: u64,
) -> SketchResult<S::Summary> {
    use hillview_columnar::SplittableSelection;

    fn collect<'a>(part: SplittableSelection<'a>, grain: usize, out: &mut Vec<(usize, usize)>) {
        if part.weight() > grain {
            if let Some((l, r)) = part.split() {
                collect(l, grain, out);
                collect(r, grain, out);
                return;
            }
        }
        let (lo, hi) = part.bounds();
        out.push((lo, hi));
    }

    let grain = grain.max(1);
    let mut ranges = Vec::new();
    collect(SplittableSelection::new(view.members()), grain, &mut ranges);
    let mut acc = sketch.identity();
    for (lo, hi) in ranges {
        acc = acc.merge(&sketch.summarize_filtered_range(view, predicate, lo, hi, seed)?);
    }
    Ok(acc)
}

/// Check the fusion law on concrete data: the fused filtered entry points
/// must reproduce the two-pass execution (filter to a membership set, then
/// sketch) bit-for-bit — both whole-partition and range-split from the
/// parent membership. Used by tests.
pub fn fused_law_holds<S>(
    sketch: &S,
    view: &TableView,
    predicate: &hillview_columnar::Predicate,
    grain: usize,
    seed: u64,
) -> bool
where
    S: Sketch,
    S::Summary: PartialEq,
{
    let narrowed = match crate::view::filtered_view(view, predicate) {
        Ok(v) => v,
        Err(_) => return false,
    };
    let two_pass = match sketch.summarize(&narrowed, seed) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let fused = match sketch.summarize_filtered(view, predicate, seed) {
        Ok(s) => s,
        Err(_) => return false,
    };
    if fused != two_pass {
        return false;
    }
    if sketch.splittable() {
        // Compare leaf-by-leaf over the *same* parent-derived ranges: the
        // fused executor plans splits from the parent membership (the filter
        // is never materialized), and per leaf the fused range summary must
        // equal the two-pass range summary bit-for-bit — each visits
        // identical rows in identical order, so this holds even for
        // floating-point-summing kernels.
        use hillview_columnar::SplittableSelection;
        fn collect<'a>(part: SplittableSelection<'a>, grain: usize, out: &mut Vec<(usize, usize)>) {
            if part.weight() > grain {
                if let Some((l, r)) = part.split() {
                    collect(l, grain, out);
                    collect(r, grain, out);
                    return;
                }
            }
            let (lo, hi) = part.bounds();
            out.push((lo, hi));
        }
        let mut ranges = Vec::new();
        collect(
            SplittableSelection::new(view.members()),
            grain.max(1),
            &mut ranges,
        );
        for (lo, hi) in ranges {
            match (
                sketch.summarize_filtered_range(view, predicate, lo, hi, seed),
                sketch.summarize_range(&narrowed, lo, hi, seed),
            ) {
                (Ok(f), Ok(t)) if f == t => {}
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = SketchError::BadConfig("zero buckets".into());
        assert!(e.to_string().contains("zero buckets"));
        let e: SketchError = hillview_columnar::Error::UnknownColumn("X".into()).into();
        assert!(e.to_string().contains('X'));
    }
}
