//! The `Sketch`/`Summary` abstraction (paper §4.1, Appendix A).

use crate::view::TableView;
use hillview_net::Wire;
use std::fmt;

/// Errors a sketch can raise while summarizing a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// Underlying columnar error (unknown column, type mismatch...).
    Column(String),
    /// The sketch was configured with invalid parameters.
    BadConfig(String),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::Column(m) => write!(f, "column error: {m}"),
            SketchError::BadConfig(m) => write!(f, "bad sketch configuration: {m}"),
        }
    }
}

impl std::error::Error for SketchError {}

impl From<hillview_columnar::Error> for SketchError {
    fn from(e: hillview_columnar::Error) -> Self {
        SketchError::Column(e.to_string())
    }
}

/// Result alias for sketch operations.
pub type SketchResult<T> = Result<T, SketchError>;

/// A mergeable summary (paper §4.1).
///
/// `merge` must be associative and commutative with the sketch's identity
/// summary as unit — the execution tree merges summaries in whatever order
/// partitions happen to complete, so any other behaviour would make results
/// depend on timing. These laws are property-tested per summary type.
pub trait Summary: Clone + Send + Sync + 'static {
    /// Combine two summaries of disjoint data partitions.
    fn merge(&self, other: &Self) -> Self;
}

/// A mergeable summarization method bound to concrete parameters
/// (column names, bucket boundaries, sampling rates...).
///
/// Implementations must be deterministic functions of `(view, seed)`: the
/// engine logs seeds in its redo log and replays sketches after failures,
/// expecting bit-identical summaries (paper §5.8).
pub trait Sketch: Send + Sync + 'static {
    /// The summary type this sketch produces.
    type Summary: Summary + Wire;

    /// A short stable name, used for computation-cache keys and diagnostics.
    fn name(&self) -> &'static str;

    /// Summarize one partition view.
    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<Self::Summary>;

    /// The merge identity (summary of an empty partition).
    fn identity(&self) -> Self::Summary;
}

/// Check the mergeability law on concrete data: summarizing the union must
/// equal merging the parts. Exact sketches satisfy this bit-for-bit when
/// given the same effective sampling behaviour; used by tests.
pub fn merge_law_holds<S>(sketch: &S, whole: &TableView, parts: &[TableView], seed: u64) -> bool
where
    S: Sketch,
    S::Summary: PartialEq,
{
    let direct = match sketch.summarize(whole, seed) {
        Ok(s) => s,
        Err(_) => return false,
    };
    let mut merged = sketch.identity();
    for p in parts {
        match sketch.summarize(p, seed) {
            Ok(s) => merged = merged.merge(&s),
            Err(_) => return false,
        }
    }
    direct == merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let e = SketchError::BadConfig("zero buckets".into());
        assert!(e.to_string().contains("zero buckets"));
        let e: SketchError = hillview_columnar::Error::UnknownColumn("X".into()).into();
        assert!(e.to_string().contains('X'));
    }
}
