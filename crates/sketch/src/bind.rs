//! Internal helper binding a column to a bucket spec for fast row→bucket
//! lookup, shared by the heatmap and stacked-histogram kernels.
//!
//! Binding resolves the column to its raw storage once — float slice or
//! encoded integer/code storage plus optional null bitmap — so the per-row
//! `bucket()` probe costs a storage read and a bitmap bit test instead of a
//! `Column` enum dispatch and an `Option` round-trip. Integer and code
//! reads go through [`hillview_columnar::IntStorage::get`], which is O(1)
//! for plain and bit-packed columns and O(log runs) for run-length ones.

use crate::buckets::BucketSpec;
use crate::traits::{SketchError, SketchResult};
use hillview_columnar::{Bitmap, CodeStorage, Column, I64Storage};

/// Where a row's value landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cell {
    /// Value missing.
    Missing,
    /// Value outside the bucket range.
    Out,
    /// Bucket index.
    In(usize),
}

/// A column bound to its bucket spec, resolved to raw storage.
pub(crate) enum BoundColumn<'a> {
    F64 {
        data: &'a [f64],
        nulls: Option<&'a Bitmap>,
        spec: &'a BucketSpec,
    },
    I64 {
        data: &'a I64Storage,
        nulls: Option<&'a Bitmap>,
        spec: &'a BucketSpec,
    },
    Dict {
        codes: &'a CodeStorage,
        nulls: Option<&'a Bitmap>,
        /// Bucket of each dictionary code, precomputed once.
        code_bucket: Vec<Option<usize>>,
    },
}

impl<'a> BoundColumn<'a> {
    pub(crate) fn bind(col: &'a Column, spec: &'a BucketSpec) -> SketchResult<Self> {
        match (spec, col) {
            (BucketSpec::Numeric { .. }, Column::Double(c)) => Ok(BoundColumn::F64 {
                data: c.data(),
                nulls: c.nulls().bitmap(),
                spec,
            }),
            (BucketSpec::Numeric { .. }, Column::Int(c) | Column::Date(c)) => {
                Ok(BoundColumn::I64 {
                    data: c.storage(),
                    nulls: c.nulls().bitmap(),
                    spec,
                })
            }
            (BucketSpec::Strings { .. }, Column::Str(c) | Column::Cat(c)) => {
                let code_bucket = c
                    .dictionary()
                    .iter()
                    .map(|s| spec.index_of_str(s))
                    .collect();
                Ok(BoundColumn::Dict {
                    codes: c.codes(),
                    nulls: c.nulls().bitmap(),
                    code_bucket,
                })
            }
            (spec, col) => Err(SketchError::BadConfig(format!(
                "bucket spec with {} buckets incompatible with column kind {}",
                spec.count(),
                col.kind()
            ))),
        }
    }

    #[inline]
    pub(crate) fn bucket(&self, row: usize) -> Cell {
        match self {
            BoundColumn::F64 { data, nulls, spec } => {
                if nulls.is_some_and(|nb| nb.get(row)) {
                    Cell::Missing
                } else {
                    match spec.index_of_f64(data[row]) {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
            BoundColumn::I64 { data, nulls, spec } => {
                if nulls.is_some_and(|nb| nb.get(row)) {
                    Cell::Missing
                } else {
                    match spec.index_of_f64(data.get(row) as f64) {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
            BoundColumn::Dict {
                codes,
                nulls,
                code_bucket,
            } => {
                if nulls.is_some_and(|nb| nb.get(row)) {
                    Cell::Missing
                } else {
                    match code_bucket[codes.get(row) as usize] {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{DictColumn, F64Column, I64Column};

    #[test]
    fn numeric_binding() {
        let col = Column::Double(F64Column::from_options([Some(5.0), None, Some(99.0)]));
        let spec = BucketSpec::numeric(0.0, 10.0, 2);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(1));
        assert_eq!(b.bucket(1), Cell::Missing);
        assert_eq!(b.bucket(2), Cell::Out);
    }

    #[test]
    fn int_binding_buckets_as_f64() {
        let col = Column::Int(I64Column::from_options([Some(3), None]));
        let spec = BucketSpec::numeric(0.0, 10.0, 5);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(1));
        assert_eq!(b.bucket(1), Cell::Missing);
    }

    #[test]
    fn dict_binding_precomputes_codes() {
        let col = Column::Cat(DictColumn::from_strings([
            Some("apple"),
            Some("zebra"),
            None,
        ]));
        let spec = BucketSpec::strings(vec!["a".into(), "m".into()]);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(0));
        assert_eq!(b.bucket(1), Cell::In(1));
        assert_eq!(b.bucket(2), Cell::Missing);
    }

    #[test]
    fn incompatible_binding_rejected() {
        let col = Column::Int(I64Column::from_options([Some(1)]));
        let spec = BucketSpec::strings(vec!["a".into()]);
        assert!(BoundColumn::bind(&col, &spec).is_err());
    }
}
