//! Internal helper binding a column to a bucket spec for fast row→bucket
//! lookup, shared by the heatmap and stacked-histogram kernels.

use crate::buckets::BucketSpec;
use crate::traits::{SketchError, SketchResult};
use hillview_columnar::column::DictColumn;
use hillview_columnar::Column;

/// Where a row's value landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cell {
    /// Value missing.
    Missing,
    /// Value outside the bucket range.
    Out,
    /// Bucket index.
    In(usize),
}

/// A column bound to its bucket spec.
pub(crate) enum BoundColumn<'a> {
    Num {
        col: &'a Column,
        spec: &'a BucketSpec,
    },
    Dict {
        col: &'a DictColumn,
        /// Bucket of each dictionary code, precomputed once.
        code_bucket: Vec<Option<usize>>,
    },
}

impl<'a> BoundColumn<'a> {
    pub(crate) fn bind(col: &'a Column, spec: &'a BucketSpec) -> SketchResult<Self> {
        match (spec, col) {
            (BucketSpec::Numeric { .. }, c) if c.kind().is_numeric() => {
                Ok(BoundColumn::Num { col, spec })
            }
            (BucketSpec::Strings { .. }, Column::Str(c) | Column::Cat(c)) => {
                let code_bucket = c
                    .dictionary()
                    .iter()
                    .map(|s| spec.index_of_str(s))
                    .collect();
                Ok(BoundColumn::Dict { col: c, code_bucket })
            }
            (spec, col) => Err(SketchError::BadConfig(format!(
                "bucket spec with {} buckets incompatible with column kind {}",
                spec.count(),
                col.kind()
            ))),
        }
    }

    #[inline]
    pub(crate) fn bucket(&self, row: usize) -> Cell {
        match self {
            BoundColumn::Num { col, spec } => match col.as_f64(row) {
                None => Cell::Missing,
                Some(v) => match spec.index_of_f64(v) {
                    Some(b) => Cell::In(b),
                    None => Cell::Out,
                },
            },
            BoundColumn::Dict { col, code_bucket } => {
                if col.nulls().is_null(row) {
                    Cell::Missing
                } else {
                    match code_bucket[col.codes()[row] as usize] {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{F64Column, I64Column};

    #[test]
    fn numeric_binding() {
        let col = Column::Double(F64Column::from_options([Some(5.0), None, Some(99.0)]));
        let spec = BucketSpec::numeric(0.0, 10.0, 2);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(1));
        assert_eq!(b.bucket(1), Cell::Missing);
        assert_eq!(b.bucket(2), Cell::Out);
    }

    #[test]
    fn dict_binding_precomputes_codes() {
        let col = Column::Cat(DictColumn::from_strings([
            Some("apple"),
            Some("zebra"),
            None,
        ]));
        let spec = BucketSpec::strings(vec!["a".into(), "m".into()]);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(0));
        assert_eq!(b.bucket(1), Cell::In(1));
        assert_eq!(b.bucket(2), Cell::Missing);
    }

    #[test]
    fn incompatible_binding_rejected() {
        let col = Column::Int(I64Column::from_options([Some(1)]));
        let spec = BucketSpec::strings(vec!["a".into()]);
        assert!(BoundColumn::bind(&col, &spec).is_err());
    }
}
