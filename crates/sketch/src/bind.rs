//! Internal helper binding a column to a bucket spec for fast row→bucket
//! lookup, shared by the heatmap and stacked-histogram kernels.
//!
//! Binding resolves the column to its raw storage once — float slice or
//! encoded integer/code storage plus optional null bitmap — so the per-row
//! `bucket()` probe costs a storage read and a bitmap bit test instead of a
//! `Column` enum dispatch and an `Option` round-trip.
//!
//! [`FrameCells`] is the block-ABI face of a binding: for each 64-row
//! frame it decodes the column's value lanes through a
//! [`BlockCursor`](hillview_columnar::BlockCursor) (zero-copy for plain
//! storage) and produces one `u32` cell per lane — the bucket index, an
//! out-of-range sentinel, or a missing sentinel — so two-column kernels
//! (heat maps, stacked histograms) combine whole frames of cells instead
//! of dispatching per row. Numeric cells go through the lane-parallel
//! [`hillview_columnar::simd::bucket_indexes`] primitive; results are
//! bit-identical to the per-row [`BoundColumn::bucket`] reference under
//! either codegen.

use crate::buckets::BucketSpec;
use crate::traits::{SketchError, SketchResult};
use hillview_columnar::simd::{self, BucketParams};
use hillview_columnar::{Bitmap, BlockCursor, CodeStorage, Column, I64Storage, BLOCK_ROWS};

/// Where a row's value landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cell {
    /// Value missing.
    Missing,
    /// Value outside the bucket range.
    Out,
    /// Bucket index.
    In(usize),
}

/// A column bound to its bucket spec, resolved to raw storage.
pub(crate) enum BoundColumn<'a> {
    F64 {
        data: &'a [f64],
        nulls: Option<&'a Bitmap>,
        spec: &'a BucketSpec,
    },
    I64 {
        data: &'a I64Storage,
        nulls: Option<&'a Bitmap>,
        spec: &'a BucketSpec,
    },
    Dict {
        codes: &'a CodeStorage,
        nulls: Option<&'a Bitmap>,
        /// Bucket of each dictionary code, precomputed once.
        code_bucket: Vec<Option<usize>>,
    },
}

impl<'a> BoundColumn<'a> {
    pub(crate) fn bind(col: &'a Column, spec: &'a BucketSpec) -> SketchResult<Self> {
        match (spec, col) {
            (BucketSpec::Numeric { .. }, Column::Double(c)) => Ok(BoundColumn::F64 {
                data: c.data(),
                nulls: c.nulls().bitmap(),
                spec,
            }),
            (BucketSpec::Numeric { .. }, Column::Int(c) | Column::Date(c)) => {
                Ok(BoundColumn::I64 {
                    data: c.storage(),
                    nulls: c.nulls().bitmap(),
                    spec,
                })
            }
            (BucketSpec::Strings { .. }, Column::Str(c) | Column::Cat(c)) => {
                let code_bucket = c
                    .dictionary()
                    .iter()
                    .map(|s| spec.index_of_str(s))
                    .collect();
                Ok(BoundColumn::Dict {
                    codes: c.codes(),
                    nulls: c.nulls().bitmap(),
                    code_bucket,
                })
            }
            (spec, col) => Err(SketchError::BadConfig(format!(
                "bucket spec with {} buckets incompatible with column kind {}",
                spec.count(),
                col.kind()
            ))),
        }
    }

    #[inline]
    pub(crate) fn bucket(&self, row: usize) -> Cell {
        match self {
            BoundColumn::F64 { data, nulls, spec } => {
                if nulls.is_some_and(|nb| nb.get(row)) {
                    Cell::Missing
                } else {
                    match spec.index_of_f64(data[row]) {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
            BoundColumn::I64 { data, nulls, spec } => {
                if nulls.is_some_and(|nb| nb.get(row)) {
                    Cell::Missing
                } else {
                    match spec.index_of_f64(data.get(row) as f64) {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
            BoundColumn::Dict {
                codes,
                nulls,
                code_bucket,
            } => {
                if nulls.is_some_and(|nb| nb.get(row)) {
                    Cell::Missing
                } else {
                    match code_bucket[codes.get(row) as usize] {
                        Some(b) => Cell::In(b),
                        None => Cell::Out,
                    }
                }
            }
        }
    }
}

/// The block-ABI face of a [`BoundColumn`]: per-frame cell computation.
///
/// A *cell* is a `u32`: `< n_buckets` is a bucket index, [`FrameCells::out`]
/// marks an in-range-but-unbucketed (out-of-range) row, [`FrameCells::miss`]
/// a missing row — the same classification [`Cell`] models per row.
pub(crate) struct FrameCells<'a> {
    inner: FrameInner<'a>,
    /// Out-of-range sentinel (= bucket count).
    out: u32,
}

// One FrameCells lives on the stack per kernel scan; the inline 64-lane
// cursor buffers are the point, not a size problem.
#[allow(clippy::large_enum_variant)]
enum FrameInner<'a> {
    F64 {
        data: &'a [f64],
        nulls: Option<&'a Bitmap>,
        params: BucketParams,
    },
    I64 {
        cursor: BlockCursor<'a, i64, I64Storage>,
        nulls: Option<&'a Bitmap>,
        params: BucketParams,
    },
    Dict {
        cursor: BlockCursor<'a, u32, CodeStorage>,
        nulls: Option<&'a Bitmap>,
        /// Cell of each dictionary code (bucket index or the out sentinel),
        /// precomputed once.
        code_cell: Vec<u32>,
    },
}

impl<'a> FrameCells<'a> {
    /// Wrap a binding for frame-wise cell computation; `n_buckets` is the
    /// spec's bucket count (the out-of-range sentinel).
    pub(crate) fn new(bound: &'a BoundColumn<'a>, n_buckets: usize) -> Self {
        let out = n_buckets as u32;
        let inner = match bound {
            BoundColumn::F64 { data, nulls, spec } => FrameInner::F64 {
                data,
                nulls: *nulls,
                params: numeric_params(spec),
            },
            BoundColumn::I64 { data, nulls, spec } => FrameInner::I64 {
                cursor: BlockCursor::new(*data),
                nulls: *nulls,
                params: numeric_params(spec),
            },
            BoundColumn::Dict {
                codes,
                nulls,
                code_bucket,
            } => FrameInner::Dict {
                cursor: BlockCursor::new(*codes),
                nulls: *nulls,
                code_cell: code_bucket
                    .iter()
                    .map(|b| b.map_or(out, |i| i as u32))
                    .collect(),
            },
        };
        FrameCells { inner, out }
    }

    /// The out-of-range sentinel cell.
    #[inline]
    pub(crate) fn out(&self) -> u32 {
        self.out
    }

    /// The missing sentinel cell.
    #[inline]
    pub(crate) fn miss(&self) -> u32 {
        self.out + 1
    }

    /// Compute the cells of frame `base .. base + len` into `cells[..len]`.
    /// Frames must be requested in ascending order.
    pub(crate) fn frame(&mut self, base: usize, len: usize, cells: &mut [u32; BLOCK_ROWS]) {
        let miss = self.out + 1;
        match &mut self.inner {
            FrameInner::F64 {
                data,
                nulls,
                params,
            } => {
                let valid = !nulls.map_or(0, |nb| nb.word(base / 64));
                simd::bucket_indexes(&data[base..base + len], valid, params, miss, cells);
            }
            FrameInner::I64 {
                cursor,
                nulls,
                params,
            } => {
                let valid = !nulls.map_or(0, |nb| nb.word(base / 64));
                let lanes = cursor.lanes(base, len);
                simd::bucket_indexes(lanes, valid, params, miss, cells);
            }
            FrameInner::Dict {
                cursor,
                nulls,
                code_cell,
            } => {
                let nword = nulls.map_or(0, |nb| nb.word(base / 64));
                let lanes = cursor.lanes(base, len);
                for (k, &code) in lanes.iter().enumerate() {
                    cells[k] = if nword >> k & 1 == 1 {
                        miss
                    } else {
                        code_cell[code as usize]
                    };
                }
            }
        }
    }
}

/// Hoisted numeric bucket arithmetic; panics on a string spec (bindings
/// guarantee numeric specs for numeric columns).
fn numeric_params(spec: &BucketSpec) -> BucketParams {
    match spec {
        BucketSpec::Numeric { lo, hi, count } => BucketParams {
            lo: *lo,
            hi: *hi,
            scale: *count as f64 / (hi - lo),
            cnt: *count as u32,
        },
        BucketSpec::Strings { .. } => unreachable!("numeric binding with string spec"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{DictColumn, F64Column, I64Column};

    #[test]
    fn numeric_binding() {
        let col = Column::Double(F64Column::from_options([Some(5.0), None, Some(99.0)]));
        let spec = BucketSpec::numeric(0.0, 10.0, 2);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(1));
        assert_eq!(b.bucket(1), Cell::Missing);
        assert_eq!(b.bucket(2), Cell::Out);
    }

    #[test]
    fn int_binding_buckets_as_f64() {
        let col = Column::Int(I64Column::from_options([Some(3), None]));
        let spec = BucketSpec::numeric(0.0, 10.0, 5);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(1));
        assert_eq!(b.bucket(1), Cell::Missing);
    }

    #[test]
    fn dict_binding_precomputes_codes() {
        let col = Column::Cat(DictColumn::from_strings([
            Some("apple"),
            Some("zebra"),
            None,
        ]));
        let spec = BucketSpec::strings(vec!["a".into(), "m".into()]);
        let b = BoundColumn::bind(&col, &spec).unwrap();
        assert_eq!(b.bucket(0), Cell::In(0));
        assert_eq!(b.bucket(1), Cell::In(1));
        assert_eq!(b.bucket(2), Cell::Missing);
    }

    #[test]
    fn incompatible_binding_rejected() {
        let col = Column::Int(I64Column::from_options([Some(1)]));
        let spec = BucketSpec::strings(vec!["a".into()]);
        assert!(BoundColumn::bind(&col, &spec).is_err());
    }
}
