//! # hillview-sketch
//!
//! The mergeable-summary substrate of Hillview-RS.
//!
//! Paper §4.1: *"a mergeable summarization method consists of two functions
//! `summarize(D)` and `merge(S, S')` ... `summarize(D1 ⊎ D2) =
//! merge(summarize(D1), summarize(D2))`."* Every query in Hillview — charts,
//! tabular views, auxiliary statistics — is expressed as such a pair, which
//! is what lets the engine parallelize blindly and stream partial results.
//!
//! This crate contains the summarization algorithms themselves, independent
//! of display resolution (the `hillview-viz` crate layers the
//! visualization-driven parameter choices on top):
//!
//! * [`histogram`]/[`heatmap`]/[`stacked`] — bucket-count kernels, exact
//!   (streaming) and sampled.
//! * [`moments`]/[`range`] — column statistics (App. B.3 "Moments").
//! * [`distinct`] — HyperLogLog distinct counting (App. B.3).
//! * [`heavy`] — Misra-Gries and sampling heavy hitters (App. B.2/C.3).
//! * [`bottomk`] — bottom-k sampling over distinct strings, for equi-width
//!   string buckets (App. B.1).
//! * [`quantile`] — sampled quantiles for the scroll bar (App. C.1).
//! * [`nextk`] — the "next K items" tabular-view summary (§4.3).
//! * [`find`] — find-text in sort order (App. B.2).
//! * [`pca`] — sampled correlation-matrix sketch plus a Jacobi eigensolver
//!   for principal component analysis (App. B.3).
//!
//! All summaries implement the [`Summary`] merge law (property-tested) and
//! [`Wire`](hillview_net::Wire) serialization, and all randomized sketches
//! are deterministic in an explicit seed — the engine's replay-based fault
//! tolerance depends on that (paper §5.8).

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(rust_2018_idioms)]

mod bind;
pub mod bottomk;
pub mod buckets;
pub mod count;
pub mod distinct;
pub mod eigen;
pub mod find;
pub mod hashutil;
pub mod heatmap;
pub mod heavy;
pub mod histogram;
pub mod moments;
pub mod nextk;
pub mod pca;
pub mod quantile;
pub mod range;
pub mod stacked;
pub mod traits;
pub mod view;

pub use buckets::BucketSpec;
pub use traits::{Sketch, SketchError, SketchResult, Summary};
pub use view::{filtered_view, TableView};
