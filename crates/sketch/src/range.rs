//! Column range: min/max plus counts.
//!
//! Every chart starts with a range computation (paper §5.3 / App. B.4:
//! "All charts, when produced initially, require a vizketch to determine the
//! range of the inputs; subsequently, this information can be cached").
//! Numeric columns report numeric bounds; string columns report the
//! lexicographic extremes.

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::{FrameFilter, Predicate};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Computes the range of one column.
#[derive(Debug, Clone)]
pub struct RangeSketch {
    /// Column name.
    pub column: Arc<str>,
}

impl RangeSketch {
    /// Range of the named column.
    pub fn new(column: &str) -> Self {
        RangeSketch {
            column: Arc::from(column),
        }
    }
}

/// Result of a [`RangeSketch`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RangeSummary {
    /// Present (non-missing) rows.
    pub present: u64,
    /// Missing rows.
    pub missing: u64,
    /// Numeric minimum, if the column is numeric and any row present.
    pub min: Option<f64>,
    /// Numeric maximum.
    pub max: Option<f64>,
    /// Lexicographic minimum, for string columns.
    pub min_str: Option<String>,
    /// Lexicographic maximum, for string columns.
    pub max_str: Option<String>,
}

impl Summary for RangeSummary {
    fn merge(&self, other: &Self) -> Self {
        RangeSummary {
            present: self.present + other.present,
            missing: self.missing + other.missing,
            min: merge_opt(self.min, other.min, f64::min),
            max: merge_opt(self.max, other.max, f64::max),
            min_str: merge_opt_clone(
                &self.min_str,
                &other.min_str,
                |a, b| {
                    if a <= b {
                        a
                    } else {
                        b
                    }
                },
            ),
            max_str: merge_opt_clone(
                &self.max_str,
                &other.max_str,
                |a, b| {
                    if a >= b {
                        a
                    } else {
                        b
                    }
                },
            ),
        }
    }
}

fn merge_opt<T: Copy>(a: Option<T>, b: Option<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (x, None) | (None, x) => x,
    }
}

fn merge_opt_clone<T: Clone>(a: &Option<T>, b: &Option<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a.clone(), b.clone())),
        (x, None) => x.clone(),
        (None, x) => x.clone(),
    }
}

impl Wire for RangeSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.present);
        w.put_varint(self.missing);
        self.min.encode(w);
        self.max.encode(w);
        self.min_str.encode(w);
        self.max_str.encode(w);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        Ok(RangeSummary {
            present: r.get_varint()?,
            missing: r.get_varint()?,
            min: Option::<f64>::decode(r)?,
            max: Option::<f64>::decode(r)?,
            min_str: Option::<String>::decode(r)?,
            max_str: Option::<String>::decode(r)?,
        })
    }
}

impl Sketch for RangeSketch {
    type Summary = RangeSummary;

    fn name(&self) -> &'static str {
        "range"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<RangeSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<RangeSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<RangeSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<RangeSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> RangeSummary {
        RangeSummary::default()
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        Some(self.column.as_bytes().to_vec())
    }
}

impl RangeSketch {
    /// The shared scan body; counts add and min/max are lattices, so split
    /// partials fold back to exactly the unsplit summary.
    ///
    /// Numeric columns run frame-wise and consult the per-64-row-block
    /// zone maps recorded at ingest: a fully-selected, null-free frame
    /// contributes its pre-computed block extremes without decoding a
    /// single value, so the initial range query on an unfiltered dataset
    /// reads only the zone arrays.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<RangeSummary> {
        use hillview_columnar::block::BlockCursor;
        use hillview_columnar::scan::scan_rows;
        use hillview_columnar::{Column, Selection};
        let col = view.table().column_by_name(&self.column)?;
        let mut out = RangeSummary::default();
        let base = crate::view::bounded_selection(view, &None, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        match col {
            Column::Double(c) => {
                let data = c.data();
                let zones = c.zones();
                scan_numeric(
                    &sel,
                    c.nulls(),
                    c.len(),
                    |b| zones.block(b),
                    |r| data[r],
                    &mut out,
                );
            }
            Column::Int(c) | Column::Date(c) => {
                let zones = c.zones();
                let mut cur = BlockCursor::new(c.storage());
                scan_numeric(
                    &sel,
                    c.nulls(),
                    c.len(),
                    // i64 → f64 is monotone, so the converted block
                    // extremes are the extremes of the conversions.
                    |b| {
                        let (mn, mx) = zones.block(b);
                        (mn as f64, mx as f64)
                    },
                    |r| cur.value(r) as f64,
                    &mut out,
                );
            }
            Column::Str(dict) | Column::Cat(dict) => {
                scan_rows(&sel, |r| match dict.get(r) {
                    None => out.missing += 1,
                    Some(s) => {
                        out.present += 1;
                        let s = s.as_ref();
                        if out.min_str.as_deref().is_none_or(|m| s < m) {
                            out.min_str = Some(s.to_string());
                        }
                        if out.max_str.as_deref().is_none_or(|m| s > m) {
                            out.max_str = Some(s.to_string());
                        }
                    }
                });
            }
        }
        Ok(out)
    }
}

/// The shared numeric frame walk of [`RangeSketch::summarize_bounded`]:
/// count missing/present per frame word, take fully-live frames straight
/// from `zone` (the per-block extremes recorded at ingest), and fold
/// partial frames and sparse rows through `value` — an ascending per-row
/// accessor (run-length storage serves it from its run cursor).
fn scan_numeric(
    sel: &hillview_columnar::Selection<'_>,
    nulls: &hillview_columnar::NullMask,
    n: usize,
    zone: impl Fn(usize) -> (f64, f64),
    mut value: impl FnMut(usize) -> f64,
    out: &mut RangeSummary,
) {
    use hillview_columnar::block::{scan_frames, FrameEvent};
    let fold = |out: &mut RangeSummary, mn: f64, mx: f64| {
        out.min = Some(out.min.map_or(mn, |m| m.min(mn)));
        out.max = Some(out.max.map_or(mx, |m| m.max(mx)));
    };
    scan_frames(sel, |ev| match ev {
        FrameEvent::Frame { base, len: _, word } => {
            let nword = nulls.word(base / 64);
            out.missing += (word & nword).count_ones() as u64;
            let mut live = word & !nword;
            out.present += live.count_ones() as u64;
            if live == 0 {
                return;
            }
            let blk = 64.min(n - base);
            let full = if blk == 64 {
                u64::MAX
            } else {
                (1u64 << blk) - 1
            };
            if live == full {
                let (mn, mx) = zone(base / 64);
                fold(out, mn, mx);
            } else {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                while live != 0 {
                    let k = live.trailing_zeros() as usize;
                    live &= live - 1;
                    let v = value(base + k);
                    mn = mn.min(v);
                    mx = mx.max(v);
                }
                fold(out, mn, mx);
            }
        }
        FrameEvent::Row(r) => {
            if nulls.is_null(r) {
                out.missing += 1;
            } else {
                out.present += 1;
                let v = value(r);
                fold(out, v, v);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{Column, DictColumn, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view() -> TableView {
        let t = Table::builder()
            .column(
                "D",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(5.0),
                    None,
                    Some(-3.5),
                    Some(12.0),
                ])),
            )
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([
                    Some("m"),
                    Some("a"),
                    None,
                    Some("z"),
                ])),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn numeric_range() {
        let s = RangeSketch::new("D").summarize(&view(), 0).unwrap();
        assert_eq!(s.present, 3);
        assert_eq!(s.missing, 1);
        assert_eq!(s.min, Some(-3.5));
        assert_eq!(s.max, Some(12.0));
        assert_eq!(s.min_str, None);
    }

    #[test]
    fn string_range() {
        let s = RangeSketch::new("S").summarize(&view(), 0).unwrap();
        assert_eq!(s.min_str.as_deref(), Some("a"));
        assert_eq!(s.max_str.as_deref(), Some("z"));
        assert_eq!(s.min, None);
    }

    #[test]
    fn merge_law() {
        let v = view();
        let t = v.table().clone();
        let parts = vec![
            TableView::with_members(t.clone(), Arc::new(MembershipSet::from_rows(vec![0, 1], 4))),
            TableView::with_members(t, Arc::new(MembershipSet::from_rows(vec![2, 3], 4))),
        ];
        assert!(merge_law_holds(&RangeSketch::new("D"), &v, &parts, 0));
        assert!(merge_law_holds(&RangeSketch::new("S"), &v, &parts, 0));
    }

    #[test]
    fn empty_view_gives_identity() {
        let v = view();
        let empty = TableView::with_members(
            v.table().clone(),
            Arc::new(MembershipSet::from_rows(vec![], 4)),
        );
        let sk = RangeSketch::new("D");
        assert_eq!(sk.summarize(&empty, 0).unwrap(), sk.identity());
    }

    #[test]
    fn wire_roundtrip() {
        let s = RangeSummary {
            present: 10,
            missing: 2,
            min: Some(-1.0),
            max: Some(9.0),
            min_str: None,
            max_str: Some("zz".into()),
        };
        assert_eq!(RangeSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
