//! Column range: min/max plus counts.
//!
//! Every chart starts with a range computation (paper §5.3 / App. B.4:
//! "All charts, when produced initially, require a vizketch to determine the
//! range of the inputs; subsequently, this information can be cached").
//! Numeric columns report numeric bounds; string columns report the
//! lexicographic extremes.

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::sync::Arc;

/// Computes the range of one column.
#[derive(Debug, Clone)]
pub struct RangeSketch {
    /// Column name.
    pub column: Arc<str>,
}

impl RangeSketch {
    /// Range of the named column.
    pub fn new(column: &str) -> Self {
        RangeSketch {
            column: Arc::from(column),
        }
    }
}

/// Result of a [`RangeSketch`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RangeSummary {
    /// Present (non-missing) rows.
    pub present: u64,
    /// Missing rows.
    pub missing: u64,
    /// Numeric minimum, if the column is numeric and any row present.
    pub min: Option<f64>,
    /// Numeric maximum.
    pub max: Option<f64>,
    /// Lexicographic minimum, for string columns.
    pub min_str: Option<String>,
    /// Lexicographic maximum, for string columns.
    pub max_str: Option<String>,
}

impl Summary for RangeSummary {
    fn merge(&self, other: &Self) -> Self {
        RangeSummary {
            present: self.present + other.present,
            missing: self.missing + other.missing,
            min: merge_opt(self.min, other.min, f64::min),
            max: merge_opt(self.max, other.max, f64::max),
            min_str: merge_opt_clone(
                &self.min_str,
                &other.min_str,
                |a, b| {
                    if a <= b {
                        a
                    } else {
                        b
                    }
                },
            ),
            max_str: merge_opt_clone(
                &self.max_str,
                &other.max_str,
                |a, b| {
                    if a >= b {
                        a
                    } else {
                        b
                    }
                },
            ),
        }
    }
}

fn merge_opt<T: Copy>(a: Option<T>, b: Option<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a, b)),
        (x, None) | (None, x) => x,
    }
}

fn merge_opt_clone<T: Clone>(a: &Option<T>, b: &Option<T>, f: impl Fn(T, T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(a.clone(), b.clone())),
        (x, None) => x.clone(),
        (None, x) => x.clone(),
    }
}

impl Wire for RangeSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.present);
        w.put_varint(self.missing);
        self.min.encode(w);
        self.max.encode(w);
        self.min_str.encode(w);
        self.max_str.encode(w);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        Ok(RangeSummary {
            present: r.get_varint()?,
            missing: r.get_varint()?,
            min: Option::<f64>::decode(r)?,
            max: Option::<f64>::decode(r)?,
            min_str: Option::<String>::decode(r)?,
            max_str: Option::<String>::decode(r)?,
        })
    }
}

impl Sketch for RangeSketch {
    type Summary = RangeSummary;

    fn name(&self) -> &'static str {
        "range"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<RangeSummary> {
        self.summarize_bounded(view, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<RangeSummary> {
        self.summarize_bounded(view, Some((lo, hi)), seed)
    }

    fn identity(&self) -> RangeSummary {
        RangeSummary::default()
    }
}

impl RangeSketch {
    /// The shared scan body; counts add and min/max are lattices, so split
    /// partials fold back to exactly the unsplit summary.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        _seed: u64,
    ) -> SketchResult<RangeSummary> {
        use hillview_columnar::scan::scan_rows;
        let col = view.table().column_by_name(&self.column)?;
        let mut out = RangeSummary::default();
        let sel = crate::view::bounded_selection(view, &None, bounds);
        if let Some(dict) = col.as_dict_col() {
            scan_rows(&sel, |r| match dict.get(r) {
                None => out.missing += 1,
                Some(s) => {
                    out.present += 1;
                    let s = s.as_ref();
                    if out.min_str.as_deref().is_none_or(|m| s < m) {
                        out.min_str = Some(s.to_string());
                    }
                    if out.max_str.as_deref().is_none_or(|m| s > m) {
                        out.max_str = Some(s.to_string());
                    }
                }
            });
        } else {
            scan_rows(&sel, |r| match col.as_f64(r) {
                None => out.missing += 1,
                Some(v) => {
                    out.present += 1;
                    out.min = Some(out.min.map_or(v, |m| m.min(v)));
                    out.max = Some(out.max.map_or(v, |m| m.max(v)));
                }
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{Column, DictColumn, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view() -> TableView {
        let t = Table::builder()
            .column(
                "D",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(5.0),
                    None,
                    Some(-3.5),
                    Some(12.0),
                ])),
            )
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([
                    Some("m"),
                    Some("a"),
                    None,
                    Some("z"),
                ])),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn numeric_range() {
        let s = RangeSketch::new("D").summarize(&view(), 0).unwrap();
        assert_eq!(s.present, 3);
        assert_eq!(s.missing, 1);
        assert_eq!(s.min, Some(-3.5));
        assert_eq!(s.max, Some(12.0));
        assert_eq!(s.min_str, None);
    }

    #[test]
    fn string_range() {
        let s = RangeSketch::new("S").summarize(&view(), 0).unwrap();
        assert_eq!(s.min_str.as_deref(), Some("a"));
        assert_eq!(s.max_str.as_deref(), Some("z"));
        assert_eq!(s.min, None);
    }

    #[test]
    fn merge_law() {
        let v = view();
        let t = v.table().clone();
        let parts = vec![
            TableView::with_members(t.clone(), Arc::new(MembershipSet::from_rows(vec![0, 1], 4))),
            TableView::with_members(t, Arc::new(MembershipSet::from_rows(vec![2, 3], 4))),
        ];
        assert!(merge_law_holds(&RangeSketch::new("D"), &v, &parts, 0));
        assert!(merge_law_holds(&RangeSketch::new("S"), &v, &parts, 0));
    }

    #[test]
    fn empty_view_gives_identity() {
        let v = view();
        let empty = TableView::with_members(
            v.table().clone(),
            Arc::new(MembershipSet::from_rows(vec![], 4)),
        );
        let sk = RangeSketch::new("D");
        assert_eq!(sk.summarize(&empty, 0).unwrap(), sk.identity());
    }

    #[test]
    fn wire_roundtrip() {
        let s = RangeSummary {
            present: 10,
            missing: 2,
            min: Some(-1.0),
            max: Some(9.0),
            min_str: None,
            max_str: Some("zz".into()),
        };
        assert_eq!(RangeSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
