//! The "next K items" summary that renders the tabular view.
//!
//! Paper §4.3: *"This vizketch is used to render a tabular view of the
//! spreadsheet given the current row shown at the top R (or R = ⊥ ...). We
//! are also given a column sort order, and the number K of rows to show.
//! This vizketch returns the contents of the K distinct rows that follow R
//! in the sort order. The summarize function scans the dataset and keeps a
//! priority heap with the K next values following row R ... The merge
//! function combines the two priority heaps by selecting the smallest K
//! elements and dropping the rest."*
//!
//! Duplicate rows (equal sort keys) are aggregated with repetition counts
//! (§3.3 "Aggregate duplicates and show repetition counts").

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_rows, Selection};
use hillview_columnar::{FrameFilter, Predicate, Row, RowKey, SortOrder};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Next-K-rows sketch.
#[derive(Debug, Clone)]
pub struct NextKSketch {
    /// Active sort order; its columns are also the deduplication key.
    pub order: SortOrder,
    /// Extra columns to materialize for display (beyond the sort columns).
    pub display: Vec<Arc<str>>,
    /// Exclusive start key (`None` starts at the beginning).
    pub start: Option<RowKey>,
    /// Number of distinct rows to return.
    pub k: usize,
}

impl NextKSketch {
    /// First `k` rows of the dataset in `order`.
    pub fn first_page(order: SortOrder, k: usize) -> Self {
        NextKSketch {
            order,
            display: Vec::new(),
            start: None,
            k: k.max(1),
        }
    }

    /// The `k` rows strictly after `start`.
    pub fn after(order: SortOrder, start: RowKey, k: usize) -> Self {
        NextKSketch {
            order,
            display: Vec::new(),
            start: Some(start),
            k: k.max(1),
        }
    }

    /// Also materialize these columns for display.
    pub fn with_display(mut self, cols: &[&str]) -> Self {
        self.display = cols.iter().map(|c| Arc::from(*c)).collect();
        self
    }
}

/// Up to K (key, display row, repetition count) entries, ascending by key.
#[derive(Debug, Clone, PartialEq)]
pub struct NextKSummary {
    /// Capacity.
    pub k: usize,
    /// Ascending by sort key; counts aggregate duplicate keys.
    pub rows: Vec<(RowKey, Row, u64)>,
    /// Rows matching (i.e. after `start`) in the scanned data, including
    /// those beyond the first K — drives the scroll-position indicator.
    pub matched: u64,
}

impl NextKSummary {
    fn zero(k: usize) -> Self {
        NextKSummary {
            k,
            rows: Vec::new(),
            matched: 0,
        }
    }
}

impl Summary for NextKSummary {
    fn merge(&self, other: &Self) -> Self {
        let k = self.k.max(other.k);
        let mut map: BTreeMap<RowKey, (Row, u64)> = BTreeMap::new();
        for (key, row, count) in self.rows.iter().chain(&other.rows) {
            map.entry(key.clone())
                .and_modify(|(_, c)| *c += count)
                .or_insert_with(|| (row.clone(), *count));
        }
        let rows: Vec<(RowKey, Row, u64)> = map
            .into_iter()
            .take(k)
            .map(|(key, (row, count))| (key, row, count))
            .collect();
        NextKSummary {
            k,
            rows,
            matched: self.matched + other.matched,
        }
    }
}

impl Wire for NextKSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.k as u64);
        w.put_varint(self.rows.len() as u64);
        for (key, row, count) in &self.rows {
            key.encode(w);
            row.encode(w);
            w.put_varint(*count);
        }
        w.put_varint(self.matched);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let k = r.get_len("nextk k")?;
        let n = r.get_len("nextk rows")?;
        let mut rows = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let key = RowKey::decode(r)?;
            let row = Row::decode(r)?;
            let count = r.get_varint()?;
            rows.push((key, row, count));
        }
        Ok(NextKSummary {
            k,
            rows,
            matched: r.get_varint()?,
        })
    }
}

impl Sketch for NextKSketch {
    type Summary = NextKSummary;

    fn name(&self) -> &'static str {
        "next-items"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<NextKSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<NextKSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<NextKSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<NextKSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> NextKSummary {
        NextKSummary::zero(self.k)
    }
}

impl NextKSketch {
    /// The shared scan body; the k-smallest-keys map is a lattice with
    /// exact duplicate-count addition, so split partials fold back to
    /// exactly the unsplit summary.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<NextKSummary> {
        let table = view.table();
        let resolved = self.order.resolve(table)?;
        let display_idx: Vec<usize> = self
            .display
            .iter()
            .map(|c| table.schema().index_of(c))
            .collect::<Result<_, _>>()?;

        // Bounded "heap": a BTreeMap of at most k+1 keys; evict the largest
        // when over capacity, exactly the paper's priority-heap behaviour
        // but with duplicate aggregation. Row enumeration is chunked so the
        // per-row membership probe disappears on dense views.
        let base = crate::view::bounded_selection(view, &None, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        let mut map: BTreeMap<RowKey, (Row, u64)> = BTreeMap::new();
        let mut matched = 0u64;
        scan_rows(&sel, |row| {
            let key = resolved.key(table, row);
            if let Some(start) = &self.start {
                if key <= *start {
                    return;
                }
            }
            matched += 1;
            // Skip rows beyond the current k-th smallest key, unless they
            // duplicate an existing key.
            if map.len() == self.k {
                let largest = map.keys().next_back().expect("non-empty");
                if key > *largest {
                    return;
                }
            }
            match map.get_mut(&key) {
                Some((_, c)) => *c += 1,
                None => {
                    let mut values = key.values().to_vec();
                    values.extend(display_idx.iter().map(|&c| table.column(c).value(row)));
                    map.insert(key, (Row::new(values), 1));
                    if map.len() > self.k {
                        let largest = map.keys().next_back().expect("over capacity").clone();
                        map.remove(&largest);
                    }
                }
            }
        });
        Ok(NextKSummary {
            k: self.k,
            rows: map
                .into_iter()
                .map(|(key, (row, count))| (key, row, count))
                .collect(),
            matched,
        })
    }

    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, _seed: u64) -> SketchResult<NextKSummary> {
        let table = view.table();
        let resolved = self.order.resolve(table)?;
        let display_idx: Vec<usize> = self
            .display
            .iter()
            .map(|c| table.schema().index_of(c))
            .collect::<Result<_, _>>()?;
        let mut map: BTreeMap<RowKey, (Row, u64)> = BTreeMap::new();
        let mut matched = 0u64;
        for row in view.iter_rows() {
            let key = resolved.key(table, row);
            if let Some(start) = &self.start {
                if key <= *start {
                    continue;
                }
            }
            matched += 1;
            if map.len() == self.k {
                let largest = map.keys().next_back().expect("non-empty");
                if key > *largest {
                    continue;
                }
            }
            match map.get_mut(&key) {
                Some((_, c)) => *c += 1,
                None => {
                    let mut values = key.values().to_vec();
                    values.extend(display_idx.iter().map(|&c| table.column(c).value(row)));
                    map.insert(key, (Row::new(values), 1));
                    if map.len() > self.k {
                        let largest = map.keys().next_back().expect("over capacity").clone();
                        map.remove(&largest);
                    }
                }
            }
        }
        Ok(NextKSummary {
            k: self.k,
            rows: map
                .into_iter()
                .map(|(key, (row, count))| (key, row, count))
                .collect(),
            matched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table, Value};

    fn view() -> TableView {
        let carriers = ["UA", "AA", "DL", "AA", "UA", "AA"];
        let delays = [10i64, 5, 7, 5, 2, 30];
        let t = Table::builder()
            .column(
                "Carrier",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(carriers.iter().map(|&c| Some(c)))),
            )
            .column(
                "Delay",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(delays.iter().map(|&d| Some(d)))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn first_page_sorted_with_dup_counts() {
        let sk = NextKSketch::first_page(SortOrder::ascending(&["Carrier", "Delay"]), 3);
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(s.rows.len(), 3);
        // (AA,5) ×2, (AA,30), (DL,7)
        assert_eq!(s.rows[0].0.values(), &[Value::str("AA"), Value::Int(5)]);
        assert_eq!(s.rows[0].2, 2, "duplicates aggregated");
        assert_eq!(s.rows[1].0.values(), &[Value::str("AA"), Value::Int(30)]);
        assert_eq!(s.rows[2].0.values(), &[Value::str("DL"), Value::Int(7)]);
        assert_eq!(s.matched, 6);
    }

    #[test]
    fn paging_continues_after_start_key() {
        let order = SortOrder::ascending(&["Carrier", "Delay"]);
        let first = NextKSketch::first_page(order.clone(), 2)
            .summarize(&view(), 0)
            .unwrap();
        let last_key = first.rows.last().unwrap().0.clone();
        let next = NextKSketch::after(order, last_key, 2)
            .summarize(&view(), 0)
            .unwrap();
        assert_eq!(next.rows[0].0.values(), &[Value::str("DL"), Value::Int(7)]);
        assert_eq!(next.rows[1].0.values(), &[Value::str("UA"), Value::Int(2)]);
    }

    #[test]
    fn merge_selects_globally_smallest() {
        let v = view();
        let t = v.table().clone();
        let order = SortOrder::ascending(&["Carrier", "Delay"]);
        let sk = NextKSketch::first_page(order, 3);
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows(vec![0, 1, 2], 6)),
                ),
                0,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(t, Arc::new(MembershipSet::from_rows(vec![3, 4, 5], 6))),
                0,
            )
            .unwrap();
        let merged = a.merge(&b);
        let whole = sk.summarize(&view(), 0).unwrap();
        assert_eq!(merged, whole, "merge law holds exactly");
    }

    #[test]
    fn descending_sort() {
        let order = SortOrder::with_directions(&[("Delay", true)]);
        let s = NextKSketch::first_page(order, 2)
            .summarize(&view(), 0)
            .unwrap();
        assert_eq!(s.rows[0].0.values(), &[Value::Int(30)]);
        assert_eq!(s.rows[1].0.values(), &[Value::Int(10)]);
    }

    #[test]
    fn display_columns_materialized() {
        let order = SortOrder::ascending(&["Delay"]);
        let sk = NextKSketch::first_page(order, 1).with_display(&["Carrier"]);
        let s = sk.summarize(&view(), 0).unwrap();
        // Row = sort key values + display values.
        assert_eq!(s.rows[0].1.values, vec![Value::Int(2), Value::str("UA")]);
    }

    #[test]
    fn k_bounds_summary_size() {
        let sk = NextKSketch::first_page(SortOrder::ascending(&["Delay"]), 2);
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(s.rows.len(), 2);
        assert_eq!(s.matched, 6, "matched counts everything scanned");
    }

    #[test]
    fn identity_is_unit() {
        let sk = NextKSketch::first_page(SortOrder::ascending(&["Delay"]), 3);
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(sk.identity().merge(&s), s);
        assert_eq!(s.merge(&sk.identity()), s);
    }

    #[test]
    fn wire_roundtrip() {
        let sk = NextKSketch::first_page(SortOrder::ascending(&["Carrier", "Delay"]), 4)
            .with_display(&["Delay"]);
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(NextKSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
