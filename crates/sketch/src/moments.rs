//! Statistical moments of a numeric column.
//!
//! Paper App. B.3: *"Given a column, this vizketch collects its minimum and
//! maximum values, number of rows, the number of missing values, and the
//! statistical moments up to a specified value K (including mean and
//! variance, the first two moments)."*
//!
//! ## Lane-structured accumulation
//!
//! The kernel's floating-point accumulation is *defined* over eight fixed
//! lanes: the value at row `r` accumulates into lane `r % 8`, and the
//! lanes combine as `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` once at the
//! end (see
//! [`hillview_columnar::simd::MomentLanes`]). Row → lane assignment is a
//! pure function of the data, so the block path (which processes
//! fully-live frames with the lane-parallel
//! [`hillview_columnar::simd::moments_frame`] primitive, AVX2-dispatched
//! under the `simd` feature), the per-row reference, every encoding, and
//! both codegens produce bit-identical power sums.

use crate::traits::{Sketch, SketchError, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::simd::{self, LaneValue, MomentLanes};
use hillview_columnar::{scan_blocks, Block, BlockSink, Column, FrameFilter, Predicate, Selection};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Computes min/max/counts and power sums up to order `k` of one column.
#[derive(Debug, Clone)]
pub struct MomentsSketch {
    /// Column name (must be numeric).
    pub column: Arc<str>,
    /// Highest moment order (≥ 1).
    pub k: usize,
}

impl MomentsSketch {
    /// Moments up to order `k` of the named column.
    pub fn new(column: &str, k: usize) -> Self {
        MomentsSketch {
            column: Arc::from(column),
            k: k.max(1),
        }
    }
}

/// Result of a [`MomentsSketch`]: mergeable power sums.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentsSummary {
    /// Present rows.
    pub present: u64,
    /// Missing rows.
    pub missing: u64,
    /// Minimum value, if any row present.
    pub min: Option<f64>,
    /// Maximum value, if any row present.
    pub max: Option<f64>,
    /// `sums[i]` = Σ vⁱ⁺¹ over present rows.
    pub sums: Vec<f64>,
}

impl MomentsSummary {
    fn zero(k: usize) -> Self {
        MomentsSummary {
            present: 0,
            missing: 0,
            min: None,
            max: None,
            sums: vec![0.0; k],
        }
    }

    /// Mean, if any row is present.
    pub fn mean(&self) -> Option<f64> {
        (self.present > 0).then(|| self.sums[0] / self.present as f64)
    }

    /// Population variance, if at least one row present and k ≥ 2.
    pub fn variance(&self) -> Option<f64> {
        if self.present == 0 || self.sums.len() < 2 {
            return None;
        }
        let n = self.present as f64;
        let mean = self.sums[0] / n;
        Some((self.sums[1] / n - mean * mean).max(0.0))
    }
}

impl Summary for MomentsSummary {
    fn merge(&self, other: &Self) -> Self {
        debug_assert_eq!(self.sums.len(), other.sums.len());
        MomentsSummary {
            present: self.present + other.present,
            missing: self.missing + other.missing,
            min: match (self.min, other.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) | (None, x) => x,
            },
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, None) | (None, x) => x,
            },
            sums: self
                .sums
                .iter()
                .zip(&other.sums)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Wire for MomentsSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.present);
        w.put_varint(self.missing);
        self.min.encode(w);
        self.max.encode(w);
        self.sums.encode(w);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        Ok(MomentsSummary {
            present: r.get_varint()?,
            missing: r.get_varint()?,
            min: Option::<f64>::decode(r)?,
            max: Option::<f64>::decode(r)?,
            sums: Vec::<f64>::decode(r)?,
        })
    }
}

impl Sketch for MomentsSketch {
    type Summary = MomentsSummary;

    fn name(&self) -> &'static str {
        "moments"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<MomentsSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<MomentsSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<MomentsSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<MomentsSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> MomentsSummary {
        MomentsSummary::zero(self.k)
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        Some(format!("{}|{}", self.column, self.k).into_bytes())
    }
}

impl MomentsSketch {
    /// The shared scan body over a whole partition (`bounds: None`) or a
    /// split sub-range. Counts and min/max fold back exactly; the
    /// floating-point power sums fold deterministically in range order —
    /// the split plan and fold order are fixed, so split execution is
    /// reproducible even though f64 addition is not associative.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<MomentsSummary> {
        struct Sink {
            acc: MomentLanes,
            present: u64,
        }
        impl<T: LaneValue> BlockSink<T> for Sink {
            fn block(&mut self, b: &Block<'_, T>) {
                if b.all_live() {
                    // Fully-live frame: lane-parallel accumulation. The
                    // frame base is 64-aligned, so lane k holds row
                    // `base + k` with `(base + k) % 8 == k % 8`.
                    self.present += b.len() as u64;
                    simd::moments_frame(b.values, &mut self.acc);
                } else {
                    let mut live = b.live();
                    while live != 0 {
                        let k = live.trailing_zeros() as usize;
                        live &= live - 1;
                        self.present += 1;
                        simd::moments_one(
                            b.values[k].lane_f64(),
                            (b.base + k) % simd::MOMENT_LANES,
                            &mut self.acc,
                        );
                    }
                }
            }
            #[inline]
            fn one(&mut self, row: usize, v: T) {
                self.present += 1;
                simd::moments_one(v.lane_f64(), row % simd::MOMENT_LANES, &mut self.acc);
            }
        }

        let col = view.table().column_by_name(&self.column)?;
        let mut out = MomentsSummary::zero(self.k);
        let base = crate::view::bounded_selection(view, &None, bounds);
        // Fused filtering keeps absolute row indexes, so the `row % 8` lane
        // assignment — and therefore the power sums — stay bit-identical to
        // the two-pass execution.
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        let mut sink = Sink {
            acc: MomentLanes::new(self.k),
            present: 0,
        };
        match col {
            Column::Double(c) => scan_blocks(
                &sel,
                c.data(),
                c.nulls().bitmap(),
                &mut out.missing,
                &mut sink,
            ),
            Column::Int(c) | Column::Date(c) => scan_blocks(
                &sel,
                c.storage(),
                c.nulls().bitmap(),
                &mut out.missing,
                &mut sink,
            ),
            _ => {
                return Err(SketchError::BadConfig(format!(
                    "moments require a numeric column, {} is {}",
                    self.column,
                    col.kind()
                )))
            }
        }
        out.present = sink.present;
        let (min, max, sums) = sink.acc.collapse();
        if out.present > 0 {
            out.min = Some(min);
            out.max = Some(max);
        }
        out.sums = sums;
        Ok(out)
    }
}

impl MomentsSketch {
    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests and the chunked-vs-rowwise benchmark. Must remain
    /// bit-identical to [`Sketch::summarize`]: it accumulates into the
    /// same eight `row % 8` lanes and collapses them in the same order.
    pub fn summarize_rowwise(&self, view: &TableView, _seed: u64) -> SketchResult<MomentsSummary> {
        let col = view.table().column_by_name(&self.column)?;
        if !col.kind().is_numeric() {
            return Err(SketchError::BadConfig(format!(
                "moments require a numeric column, {} is {}",
                self.column,
                col.kind()
            )));
        }
        let mut out = MomentsSummary::zero(self.k);
        let mut acc = MomentLanes::new(self.k);
        for r in view.iter_rows() {
            match col.as_f64(r) {
                None => out.missing += 1,
                Some(v) => {
                    out.present += 1;
                    simd::moments_one(v, r % simd::MOMENT_LANES, &mut acc);
                }
            }
        }
        let (min, max, sums) = acc.collapse();
        if out.present > 0 {
            out.min = Some(min);
            out.max = Some(max);
        }
        out.sums = sums;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view(vals: &[Option<f64>]) -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(vals.iter().copied())),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn mean_and_variance() {
        let v = view(&[Some(2.0), Some(4.0), Some(6.0), None]);
        let s = MomentsSketch::new("X", 2).summarize(&v, 0).unwrap();
        assert_eq!(s.present, 3);
        assert_eq!(s.missing, 1);
        assert_eq!(s.mean(), Some(4.0));
        let var = s.variance().unwrap();
        assert!((var - 8.0 / 3.0).abs() < 1e-12, "var={var}");
        assert_eq!(s.min, Some(2.0));
        assert_eq!(s.max, Some(6.0));
    }

    #[test]
    fn higher_moments() {
        let v = view(&[Some(1.0), Some(2.0)]);
        let s = MomentsSketch::new("X", 4).summarize(&v, 0).unwrap();
        assert_eq!(s.sums, vec![3.0, 5.0, 9.0, 17.0]);
    }

    #[test]
    fn merge_matches_whole_scan() {
        let v = view(&[Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        let t = v.table().clone();
        let sk = MomentsSketch::new("X", 3);
        let whole = sk.summarize(&v, 0).unwrap();
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows(vec![0, 1], 4)),
                ),
                0,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(t, Arc::new(MembershipSet::from_rows(vec![2, 3], 4))),
                0,
            )
            .unwrap();
        let merged = a.merge(&b).merge(&sk.identity());
        assert_eq!(merged.present, whole.present);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        for (m, w) in merged.sums.iter().zip(&whole.sums) {
            assert!((m - w).abs() < 1e-9);
        }
    }

    #[test]
    fn non_numeric_column_rejected() {
        use hillview_columnar::column::DictColumn;
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings([Some("a")])),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        assert!(matches!(
            MomentsSketch::new("S", 2).summarize(&v, 0),
            Err(SketchError::BadConfig(_))
        ));
    }

    #[test]
    fn empty_has_no_mean() {
        let v = view(&[]);
        let s = MomentsSketch::new("X", 2).summarize(&v, 0).unwrap();
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn wire_roundtrip() {
        let s = MomentsSummary {
            present: 3,
            missing: 1,
            min: Some(-1.0),
            max: Some(5.0),
            sums: vec![7.0, 35.0],
        };
        assert_eq!(MomentsSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
