//! Jacobi eigendecomposition for small symmetric matrices.
//!
//! PCA (paper App. B.3) projects M numeric columns along the eigenvectors of
//! their M×M correlation matrix. M is the number of columns a user selects —
//! tens at most — so the classic Jacobi rotation method is ideal: simple,
//! numerically robust, and exact enough for visualization.

/// A dense symmetric matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of size n×n.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Build from a row-major buffer (must be symmetric; enforced in debug).
    pub fn from_rows(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n);
        let m = SymMatrix { n, data };
        debug_assert!(m.is_symmetric(1e-9), "matrix is not symmetric");
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Set both (i, j) and (j, i).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Symmetry check within a tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in 0..i {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Sum of squares of off-diagonal elements (Jacobi convergence metric).
    fn off_diagonal_norm(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    s += self.get(i, j).powi(2);
                }
            }
        }
        s
    }
}

/// Result of an eigendecomposition: pairs sorted by descending eigenvalue.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// `vectors[k]` is the unit eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Jacobi rotation eigendecomposition of a symmetric matrix.
///
/// Iterates sweeps of 2×2 rotations until the off-diagonal mass drops below
/// `1e-12 · n²` or 100 sweeps pass (always converges long before that for
/// the matrix sizes PCA produces).
pub fn jacobi_eigen(m: &SymMatrix) -> Eigen {
    let n = m.n();
    let mut a = m.clone();
    // Eigenvector accumulator starts as identity.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let tol = 1e-18 * (n * n) as f64;
    for _sweep in 0..100 {
        if a.off_diagonal_norm() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Similarity transform A ← JᵀAJ for the (p, q) rotation:
                // off-block elements rotate once, the 2×2 block is explicit.
                for k in 0..n {
                    if k == p || k == q {
                        continue;
                    }
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                a.set(p, p, c * c * app - 2.0 * s * c * apq + s * s * aqq);
                a.set(q, q, s * s * app + 2.0 * s * c * apq + c * c * aqq);
                a.set(p, q, 0.0);
                for vk in v.iter_mut() {
                    let vp = vk[p];
                    let vq = vk[q];
                    vk[p] = c * vp - s * vq;
                    vk[q] = s * vp + c * vq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| (a.get(k, k), v.iter().map(|row| row[k]).collect()))
        .collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
    Eigen {
        values: pairs.iter().map(|(val, _)| *val).collect(),
        vectors: pairs.into_iter().map(|(_, vec)| vec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let mut m = SymMatrix::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, 1.0);
        m.set(2, 2, 2.0);
        let e = jacobi_eigen(&m);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 2.0, 1e-10);
        assert_close(e.values[2], 1.0, 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
        let m = SymMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 2.0]);
        let e = jacobi_eigen(&m);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        let v0 = &e.vectors[0];
        assert_close(v0[0].abs(), 1.0 / 2f64.sqrt(), 1e-8);
        assert_close(v0[1].abs(), 1.0 / 2f64.sqrt(), 1e-8);
        assert_close(v0[0] * v0[1], 0.5, 1e-8);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = SymMatrix::from_rows(3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]);
        let e = jacobi_eigen(&m);
        for i in 0..3 {
            let norm: f64 = e.vectors[i].iter().map(|x| x * x).sum();
            assert_close(norm, 1.0, 1e-8);
            for j in (i + 1)..3 {
                let dot: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert_close(dot, 0.0, 1e-8);
            }
        }
    }

    #[test]
    fn reconstruction_av_equals_lambda_v() {
        let m = SymMatrix::from_rows(
            4,
            vec![
                5.0, 1.0, 0.0, 2.0, //
                1.0, 4.0, 1.0, 0.0, //
                0.0, 1.0, 3.0, 1.0, //
                2.0, 0.0, 1.0, 2.0,
            ],
        );
        let e = jacobi_eigen(&m);
        for k in 0..4 {
            for i in 0..4 {
                let av: f64 = (0..4).map(|j| m.get(i, j) * e.vectors[k][j]).sum();
                assert_close(av, e.values[k] * e.vectors[k][i], 1e-6);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = SymMatrix::from_rows(3, vec![2.0, 0.3, 0.1, 0.3, 1.0, 0.2, 0.1, 0.2, 4.0]);
        let e = jacobi_eigen(&m);
        let trace = 2.0 + 1.0 + 4.0;
        assert_close(e.values.iter().sum::<f64>(), trace, 1e-9);
    }
}
