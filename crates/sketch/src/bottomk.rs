//! Bottom-k sampling over *distinct* values.
//!
//! Paper App. B.1: string charts need equi-width buckets over an
//! alphabetical ordering, *"found using a sketch based on bottom-k sampling
//! [92, 19], which is an efficient mergeable randomized streaming algorithm
//! that computes approximate quantiles over distinct strings."* Keeping the
//! k distinct values with the smallest hashes yields a uniform sample of the
//! distinct-value domain, from which quantile boundaries are read off.

use crate::hashutil::hash_str;
use crate::traits::{Sketch, SketchError, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_values, Selection};
use hillview_columnar::{FrameFilter, Predicate};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Bottom-k distinct-string sketch of one string column.
#[derive(Debug, Clone)]
pub struct BottomKSketch {
    /// Column name (must be a string/categorical column).
    pub column: Arc<str>,
    /// Number of smallest-hash distinct values to keep.
    pub k: usize,
    /// Hash seed; must be identical across partitions.
    pub seed: u64,
}

impl BottomKSketch {
    /// Keep the `k` distinct values with smallest hashes.
    pub fn new(column: &str, k: usize) -> Self {
        BottomKSketch {
            column: Arc::from(column),
            k: k.max(1),
            seed: 0x0B0_770,
        }
    }
}

/// The k smallest (hash, value) pairs over distinct values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BottomKSummary {
    /// Capacity.
    pub k: usize,
    /// Ascending by hash; values are distinct.
    pub entries: Vec<(u64, String)>,
    /// Total distinct-or-not present rows observed (for diagnostics).
    pub rows: u64,
}

impl BottomKSummary {
    fn zero(k: usize) -> Self {
        BottomKSummary {
            k,
            entries: Vec::new(),
            rows: 0,
        }
    }

    /// Equi-width bucket boundaries over the sampled distinct values: up to
    /// `buckets` lower bounds in alphabetical order (App. B.1: quantiles at
    /// 1/50, 2/50, ... of the distinct strings).
    pub fn bucket_boundaries(&self, buckets: usize) -> Vec<Arc<str>> {
        let mut values: Vec<&String> = self.entries.iter().map(|(_, v)| v).collect();
        values.sort();
        if values.is_empty() || buckets == 0 {
            return Vec::new();
        }
        if values.len() <= buckets {
            return values.into_iter().map(|s| Arc::from(s.as_str())).collect();
        }
        let mut out = Vec::with_capacity(buckets);
        for i in 0..buckets {
            let idx = i * values.len() / buckets;
            out.push(Arc::from(values[idx].as_str()));
        }
        out.dedup();
        out
    }

    /// Estimated number of distinct values: if the sketch saturated at k
    /// entries, the k-th smallest hash h estimates k·2⁶⁴/h distinct values;
    /// otherwise the count is exact.
    pub fn distinct_estimate(&self) -> f64 {
        if self.entries.len() < self.k {
            return self.entries.len() as f64;
        }
        let kth = self.entries.last().expect("k > 0").0;
        if kth == 0 {
            return self.entries.len() as f64;
        }
        (self.k as f64 - 1.0) * (u64::MAX as f64 / kth as f64)
    }
}

impl Summary for BottomKSummary {
    fn merge(&self, other: &Self) -> Self {
        let k = self.k.max(other.k);
        let mut map: BTreeMap<u64, String> = BTreeMap::new();
        for (h, v) in self.entries.iter().chain(&other.entries) {
            map.entry(*h).or_insert_with(|| v.clone());
        }
        let entries: Vec<(u64, String)> = map.into_iter().take(k).collect();
        BottomKSummary {
            k,
            entries,
            rows: self.rows + other.rows,
        }
    }
}

impl Wire for BottomKSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.k as u64);
        w.put_varint(self.entries.len() as u64);
        for (h, v) in &self.entries {
            w.put_varint(*h);
            w.put_str(v);
        }
        w.put_varint(self.rows);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let k = r.get_len("bottomk k")?;
        let n = r.get_len("bottomk entries")?;
        let mut entries = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let h = r.get_varint()?;
            let v = r.get_str()?;
            entries.push((h, v));
        }
        Ok(BottomKSummary {
            k,
            entries,
            rows: r.get_varint()?,
        })
    }
}

impl Sketch for BottomKSketch {
    type Summary = BottomKSummary;

    fn name(&self) -> &'static str {
        "bottom-k"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<BottomKSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<BottomKSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<BottomKSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<BottomKSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> BottomKSummary {
        BottomKSummary::zero(self.k)
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        // The hash seed is a sketch *parameter* (identical across
        // partitions), not per-run state, so it joins the identity bytes.
        Some(format!("{}|{}|{}", self.column, self.k, self.seed).into_bytes())
    }
}

impl BottomKSketch {
    /// The shared scan body; the k-smallest-hash entry set is a lattice
    /// (deterministic union + truncation), so split partials fold back to
    /// exactly the unsplit summary.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<BottomKSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let dict = col.as_dict_col().ok_or_else(|| {
            SketchError::BadConfig(format!(
                "bottom-k requires a string column, {} is {}",
                self.column,
                col.kind()
            ))
        })?;
        // Chunked scan over the raw code slice: mark which codes occur, with
        // one null-word probe per 64 rows instead of per-row `is_null`.
        let mut seen = vec![false; dict.dictionary().len()];
        let mut missing = 0u64;
        let base = crate::view::bounded_selection(view, &None, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        scan_values(
            &sel,
            dict.codes(),
            dict.nulls().bitmap(),
            &mut missing,
            |code| seen[code as usize] = true,
        );
        // Under fusion the filtered selection is single-pass; the
        // surviving-row count comes from the filter's popcounts.
        let rows = match &ff {
            Some(f) => f.borrow().matched() - missing,
            None => sel.count() as u64 - missing,
        };
        // Hash each distinct dictionary entry once — O(dict), not O(rows).
        let mut map: BTreeMap<u64, String> = BTreeMap::new();
        for (code, &s) in seen.iter().enumerate() {
            if s {
                map.entry(hash_str(dict.dictionary().get(code as u32), self.seed))
                    .or_insert_with(|| dict.dictionary().get(code as u32).to_string());
            }
        }
        let entries: Vec<(u64, String)> = map.into_iter().take(self.k).collect();
        Ok(BottomKSummary {
            k: self.k,
            entries,
            rows,
        })
    }

    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, _seed: u64) -> SketchResult<BottomKSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let dict = col.as_dict_col().ok_or_else(|| {
            SketchError::BadConfig(format!(
                "bottom-k requires a string column, {} is {}",
                self.column,
                col.kind()
            ))
        })?;
        let hashes: Vec<u64> = dict
            .dictionary()
            .iter()
            .map(|s| hash_str(s, self.seed))
            .collect();
        let mut seen = vec![false; hashes.len()];
        let mut rows = 0u64;
        for row in view.iter_rows() {
            if !dict.nulls().is_null(row) {
                rows += 1;
                seen[dict.code(row) as usize] = true;
            }
        }
        let mut map: BTreeMap<u64, String> = BTreeMap::new();
        for (code, &s) in seen.iter().enumerate() {
            if s {
                map.entry(hashes[code])
                    .or_insert_with(|| dict.dictionary().get(code as u32).to_string());
            }
        }
        let entries: Vec<(u64, String)> = map.into_iter().take(self.k).collect();
        Ok(BottomKSummary {
            k: self.k,
            entries,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{Column, DictColumn};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view(vals: Vec<String>) -> TableView {
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings(
                    vals.iter().map(|s| Some(s.as_str())),
                )),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn small_domains_kept_exactly() {
        let v = view((0..100).map(|i| format!("v{}", i % 7)).collect());
        let s = BottomKSketch::new("S", 50).summarize(&v, 0).unwrap();
        assert_eq!(s.entries.len(), 7);
        assert_eq!(s.distinct_estimate(), 7.0);
        let b = s.bucket_boundaries(50);
        assert_eq!(b.len(), 7, "one bucket per value for small domains");
        assert!(b.windows(2).all(|w| w[0] < w[1]), "alphabetical");
    }

    #[test]
    fn merge_law_is_exact() {
        // Bottom-k merge is deterministic set union + truncation.
        let v = view((0..200).map(|i| format!("key{i:03}")).collect());
        let t = v.table().clone();
        let parts = vec![
            TableView::with_members(
                t.clone(),
                Arc::new(MembershipSet::from_rows((0..100).collect(), 200)),
            ),
            TableView::with_members(
                t,
                Arc::new(MembershipSet::from_rows((100..200).collect(), 200)),
            ),
        ];
        let mut sk = BottomKSketch::new("S", 32);
        sk.seed = 5;
        // rows differ between whole and merged? No: rows counts present rows.
        assert!(merge_law_holds(&sk, &v, &parts, 0));
    }

    #[test]
    fn boundaries_approximate_string_quantiles() {
        // 1000 distinct keys; 10 boundaries should split them ~evenly.
        let v = view((0..1000).map(|i| format!("key{i:04}")).collect());
        let s = BottomKSketch::new("S", 256).summarize(&v, 0).unwrap();
        let b = s.bucket_boundaries(10);
        assert_eq!(b.len(), 10);
        // First boundary is near the beginning of the domain.
        assert!(b[0].as_ref() < "key0200", "{}", b[0]);
        // Boundaries are increasing and spread.
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        let mid: &str = &b[5];
        assert!(("key0300".."key0700").contains(&mid), "median-ish: {mid}");
    }

    #[test]
    fn distinct_estimate_tracks_cardinality() {
        let v = view((0..5000).map(|i| format!("key{i:05}")).collect());
        let s = BottomKSketch::new("S", 128).summarize(&v, 0).unwrap();
        let est = s.distinct_estimate();
        assert!(
            (2500.0..10_000.0).contains(&est),
            "estimate {est} for 5000 distinct"
        );
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let many_dups = view((0..1000).map(|i| format!("v{}", i % 3)).collect());
        let s = BottomKSketch::new("S", 10)
            .summarize(&many_dups, 0)
            .unwrap();
        assert_eq!(s.entries.len(), 3);
        assert_eq!(s.rows, 1000);
    }

    #[test]
    fn numeric_column_rejected() {
        use hillview_columnar::column::I64Column;
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options([Some(1)])),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        assert!(BottomKSketch::new("X", 4).summarize(&v, 0).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let v = view((0..50).map(|i| format!("s{i}")).collect());
        let s = BottomKSketch::new("S", 16).summarize(&v, 0).unwrap();
        assert_eq!(BottomKSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
