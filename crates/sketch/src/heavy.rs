//! Heavy hitters: Misra-Gries (streaming) and sampling variants.
//!
//! Paper App. B.2 gives both algorithms. Misra-Gries keeps K counters and is
//! exact up to an additive n/K undercount; the mergeable variant (Agarwal et
//! al. \[2\]) combines counter sets and re-truncates. The sampling variant
//! draws `n = K² log(K/δ)` rows and reports items with sample frequency
//! ≥ 3n/4K; Theorem 4 (App. C.3) shows this returns every item above 1/K and
//! none below 1/4K with probability 1−δ.

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_rows, scan_values, Selection};
use hillview_columnar::{
    row_sampled, scan_blocks, Block, BlockSink, FrameFilter, Predicate, Value,
};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Misra-Gries
// ---------------------------------------------------------------------------

/// Streaming Misra-Gries heavy hitters over one column.
#[derive(Debug, Clone)]
pub struct MisraGriesSketch {
    /// Column name.
    pub column: Arc<str>,
    /// Maximum number of counters (the paper's K).
    pub k: usize,
}

impl MisraGriesSketch {
    /// Track up to `k` heavy items of the named column.
    pub fn new(column: &str, k: usize) -> Self {
        MisraGriesSketch {
            column: Arc::from(column),
            k: k.max(1),
        }
    }
}

/// Misra-Gries counter set.
#[derive(Debug, Clone, PartialEq)]
pub struct MisraGriesSummary {
    /// Counter capacity.
    pub k: usize,
    /// (value, counter) pairs; counters underestimate true counts by at most
    /// `total/k`.
    pub counters: Vec<(Value, u64)>,
    /// Total rows observed (present values only).
    pub total: u64,
}

impl MisraGriesSummary {
    fn zero(k: usize) -> Self {
        MisraGriesSummary {
            k,
            counters: Vec::new(),
            total: 0,
        }
    }

    /// Estimated count of `v` (0 if not tracked).
    pub fn count_of(&self, v: &Value) -> u64 {
        self.counters
            .iter()
            .find(|(x, _)| x == v)
            .map_or(0, |(_, c)| *c)
    }

    /// Items whose estimated frequency is at least `threshold` (e.g. `1.0 /
    /// k as f64` for the paper's heavy-hitter definition), sorted by
    /// descending count.
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<(Value, u64)> {
        let mut out: Vec<(Value, u64)> = self
            .counters
            .iter()
            .filter(|(_, c)| self.total > 0 && *c as f64 / self.total as f64 >= threshold)
            .cloned()
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

impl Summary for MisraGriesSummary {
    fn merge(&self, other: &Self) -> Self {
        let k = self.k.max(other.k);
        // Combine counters additively.
        let mut map: HashMap<Value, u64> =
            HashMap::with_capacity(self.counters.len() + other.counters.len());
        for (v, c) in self.counters.iter().chain(&other.counters) {
            *map.entry(v.clone()).or_insert(0) += c;
        }
        let mut counters: Vec<(Value, u64)> = map.into_iter().collect();
        // If over capacity: subtract the (k+1)-th largest counter from all
        // and drop non-positive (the mergeable-summaries MG merge).
        if counters.len() > k {
            counters.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            let pivot = counters[k].1;
            counters = counters
                .into_iter()
                .filter_map(|(v, c)| (c > pivot).then(|| (v, c - pivot)))
                .collect();
        }
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        MisraGriesSummary {
            k,
            counters,
            total: self.total + other.total,
        }
    }
}

impl Wire for MisraGriesSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.k as u64);
        w.put_varint(self.counters.len() as u64);
        for (v, c) in &self.counters {
            v.encode(w);
            w.put_varint(*c);
        }
        w.put_varint(self.total);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let k = r.get_len("MG k")?;
        let n = r.get_len("MG counters")?;
        let mut counters = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let v = Value::decode(r)?;
            let c = r.get_varint()?;
            counters.push((v, c));
        }
        Ok(MisraGriesSummary {
            k,
            counters,
            total: r.get_varint()?,
        })
    }
}

impl Sketch for MisraGriesSketch {
    type Summary = MisraGriesSummary;

    fn name(&self) -> &'static str {
        "heavy-hitters-mg"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<MisraGriesSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<MisraGriesSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<MisraGriesSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<MisraGriesSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> MisraGriesSummary {
        MisraGriesSummary::zero(self.k)
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        Some(format!("{}|{}", self.column, self.k).into_bytes())
    }
}

impl MisraGriesSketch {
    /// The shared scan body over a whole partition or a split sub-range.
    /// MG counters are order-sensitive, so a split execution (sub-range
    /// counter sets folded with the mergeable-summaries merge) is a
    /// *different but equally valid* MG summary than the unsplit pass —
    /// same capacity, same `total/k` undercount bound. Determinism comes
    /// from the fixed split plan and range-ordered fold.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<MisraGriesSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let base = crate::view::bounded_selection(view, &None, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        // Dictionary fast path: run the MG counter updates keyed by u32
        // code over the raw code slice (chunked, null-word aware) and only
        // materialize `Value`s for the ≤ k surviving counters. The counter
        // dynamics see the identical value stream, so the result is
        // bit-identical to the per-row reference.
        let mut counters: Vec<(Value, u64)>;
        let total;
        if let Some(dict) = col.as_dict_col() {
            let mut code_counters: HashMap<u32, u64> = HashMap::with_capacity(self.k + 1);
            let mut missing = 0u64;
            scan_values(
                &sel,
                dict.codes(),
                dict.nulls().bitmap(),
                &mut missing,
                |code| {
                    if let Some(c) = code_counters.get_mut(&code) {
                        *c += 1;
                    } else if code_counters.len() < self.k {
                        code_counters.insert(code, 1);
                    } else {
                        code_counters.retain(|_, c| {
                            *c -= 1;
                            *c > 0
                        });
                    }
                },
            );
            // Under fusion the filtered selection is single-pass; the
            // surviving-row count comes from the filter's popcounts.
            total = match &ff {
                Some(f) => f.borrow().matched() - missing,
                None => sel.count() as u64 - missing,
            };
            counters = code_counters
                .into_iter()
                .map(|(code, c)| (Value::Str(dict.dictionary().get(code).clone()), c))
                .collect();
        } else {
            let mut val_counters: HashMap<Value, u64> = HashMap::with_capacity(self.k + 1);
            let mut present = 0u64;
            scan_rows(&sel, |row| {
                let v = col.value(row);
                if v.is_missing() {
                    return;
                }
                present += 1;
                if let Some(c) = val_counters.get_mut(&v) {
                    *c += 1;
                } else if val_counters.len() < self.k {
                    val_counters.insert(v, 1);
                } else {
                    // Decrement all; drop zeros. Amortized O(1) per row.
                    val_counters.retain(|_, c| {
                        *c -= 1;
                        *c > 0
                    });
                }
            });
            total = present;
            counters = val_counters.into_iter().collect();
        }
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(MisraGriesSummary {
            k: self.k,
            counters,
            total,
        })
    }
}

impl MisraGriesSketch {
    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(
        &self,
        view: &TableView,
        _seed: u64,
    ) -> SketchResult<MisraGriesSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let mut counters: HashMap<Value, u64> = HashMap::with_capacity(self.k + 1);
        let mut total = 0u64;
        for row in view.iter_rows() {
            let v = col.value(row);
            if v.is_missing() {
                continue;
            }
            total += 1;
            if let Some(c) = counters.get_mut(&v) {
                *c += 1;
            } else if counters.len() < self.k {
                counters.insert(v, 1);
            } else {
                counters.retain(|_, c| {
                    *c -= 1;
                    *c > 0
                });
            }
        }
        let mut counters: Vec<(Value, u64)> = counters.into_iter().collect();
        counters.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(MisraGriesSummary {
            k: self.k,
            counters,
            total,
        })
    }
}

// ---------------------------------------------------------------------------
// Sampling heavy hitters
// ---------------------------------------------------------------------------

/// Sampling heavy hitters (paper §4.3 "Heavy hitters (sampling)").
#[derive(Debug, Clone)]
pub struct SampledHeavyHittersSketch {
    /// Column name.
    pub column: Arc<str>,
    /// Maximum number of heavy hitters desired (the paper's K).
    pub k: usize,
    /// Row sampling rate chosen by the caller so the expected total sample
    /// size is `K² log(K/δ)`.
    pub rate: f64,
}

impl SampledHeavyHittersSketch {
    /// Sketch with an explicit rate.
    pub fn new(column: &str, k: usize, rate: f64) -> Self {
        SampledHeavyHittersSketch {
            column: Arc::from(column),
            k: k.max(1),
            rate,
        }
    }

    /// The paper's target sample size: `n = K² log(K/δ)`.
    pub fn target_sample_size(k: usize, delta: f64) -> u64 {
        let k = k.max(1) as f64;
        (k * k * (k / delta).ln()).ceil() as u64
    }
}

/// Exact counts over the sampled rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledHeavyHittersSummary {
    /// (value, sample count), all values seen in the sample.
    pub counts: Vec<(Value, u64)>,
    /// Total sampled rows with a present value.
    pub sampled: u64,
}

impl SampledHeavyHittersSummary {
    /// Items with sample frequency ≥ `3n/4K` (Theorem 4), sorted descending.
    pub fn heavy_hitters(&self, k: usize) -> Vec<(Value, u64)> {
        let threshold = 3.0 * self.sampled as f64 / (4.0 * k.max(1) as f64);
        let mut out: Vec<(Value, u64)> = self
            .counts
            .iter()
            .filter(|(_, c)| *c as f64 >= threshold)
            .cloned()
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

impl Summary for SampledHeavyHittersSummary {
    fn merge(&self, other: &Self) -> Self {
        let mut map: HashMap<Value, u64> =
            HashMap::with_capacity(self.counts.len() + other.counts.len());
        for (v, c) in self.counts.iter().chain(&other.counts) {
            *map.entry(v.clone()).or_insert(0) += c;
        }
        let mut counts: Vec<(Value, u64)> = map.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        SampledHeavyHittersSummary {
            counts,
            sampled: self.sampled + other.sampled,
        }
    }
}

impl Wire for SampledHeavyHittersSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.counts.len() as u64);
        for (v, c) in &self.counts {
            v.encode(w);
            w.put_varint(*c);
        }
        w.put_varint(self.sampled);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let n = r.get_len("HH counts")?;
        let mut counts = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let v = Value::decode(r)?;
            let c = r.get_varint()?;
            counts.push((v, c));
        }
        Ok(SampledHeavyHittersSummary {
            counts,
            sampled: r.get_varint()?,
        })
    }
}

impl Sketch for SampledHeavyHittersSketch {
    type Summary = SampledHeavyHittersSummary;

    fn name(&self) -> &'static str {
        "heavy-hitters-sampling"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<SampledHeavyHittersSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<SampledHeavyHittersSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<SampledHeavyHittersSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<SampledHeavyHittersSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> SampledHeavyHittersSummary {
        SampledHeavyHittersSummary {
            counts: Vec::new(),
            sampled: 0,
        }
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        // At rate >= 1 the "sample" is every row, so the counts are exact
        // and seed-independent.
        (self.rate >= 1.0).then(|| format!("{}|{}", self.column, self.k).into_bytes())
    }
}

impl SampledHeavyHittersSketch {
    /// The shared scan body. Counts are exact over the (clipped) sample, so
    /// split partials fold back to exactly the unsplit summary.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        seed: u64,
    ) -> SketchResult<SampledHeavyHittersSummary> {
        let col = view.table().column_by_name(&self.column)?;
        // rate >= 1.0 is exact: scan the membership chunks directly instead
        // of materializing every row index (sample_rows(1.0) returns all
        // members ascending, so results are identical either way). The
        // unfiltered sample is always drawn partition-wide and clipped to
        // the bounds; under fusion the sample must come from the *filtered*
        // stream, so each surviving row is instead tested with the
        // stateless hash-threshold decision [`row_sampled`] in the same
        // single pass — no materialized membership, and tiling stays exact
        // because the decision is a pure function of the row index.
        let hash_sample = self.rate < 1.0 && filter.is_some();
        let presampled =
            (self.rate < 1.0 && filter.is_none()).then(|| view.sample_rows(self.rate, seed));
        let sel = crate::view::bounded_selection(view, &presampled, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &sel,
                filter: f,
            },
            None => sel,
        };
        let mut counts: Vec<(Value, u64)>;
        let sampled;
        if hash_sample {
            // The dictionary fast path consumes whole frames without row
            // identities, so the fused *sampled* scan counts per row.
            let mut map: HashMap<Value, u64> = HashMap::new();
            let mut present = 0u64;
            scan_rows(&sel, |row| {
                if !row_sampled(row as u64, self.rate, seed) {
                    return;
                }
                let v = col.value(row);
                if v.is_missing() {
                    return;
                }
                present += 1;
                *map.entry(v).or_insert(0) += 1;
            });
            sampled = present;
            counts = map.into_iter().collect();
        } else if let Some(dict) = col.as_dict_col() {
            // Dictionary fast path: exact counts into a dictionary-sized
            // array, consumed frame-wise from the block pipeline — a
            // fully-live frame is 64 unconditional array increments with
            // no hashing, and values are materialized once per distinct
            // code, not once per row. Increments commute, so the result is
            // independent of frame shape.
            struct CodeCounts(Vec<u64>);
            impl BlockSink<u32> for CodeCounts {
                fn block(&mut self, b: &Block<'_, u32>) {
                    if b.all_live() {
                        for &code in b.values {
                            self.0[code as usize] += 1;
                        }
                    } else {
                        let mut live = b.live();
                        while live != 0 {
                            let k = live.trailing_zeros() as usize;
                            live &= live - 1;
                            self.0[b.values[k] as usize] += 1;
                        }
                    }
                }
                #[inline]
                fn one(&mut self, _row: usize, code: u32) {
                    self.0[code as usize] += 1;
                }
            }
            let mut by_code = CodeCounts(vec![0u64; dict.dictionary().len()]);
            let mut missing = 0u64;
            scan_blocks(
                &sel,
                dict.codes(),
                dict.nulls().bitmap(),
                &mut missing,
                &mut by_code,
            );
            // Under fusion the filtered selection is single-pass; the
            // surviving-row count comes from the filter's popcounts.
            sampled = match &ff {
                Some(f) => f.borrow().matched() - missing,
                None => sel.count() as u64 - missing,
            };
            counts = by_code
                .0
                .into_iter()
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .map(|(code, c)| (Value::Str(dict.dictionary().get(code as u32).clone()), c))
                .collect();
        } else {
            let mut map: HashMap<Value, u64> = HashMap::new();
            let mut present = 0u64;
            scan_rows(&sel, |row| {
                let v = col.value(row);
                if v.is_missing() {
                    return;
                }
                present += 1;
                *map.entry(v).or_insert(0) += 1;
            });
            sampled = present;
            counts = map.into_iter().collect();
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(SampledHeavyHittersSummary { counts, sampled })
    }
}

impl SampledHeavyHittersSketch {
    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(
        &self,
        view: &TableView,
        seed: u64,
    ) -> SketchResult<SampledHeavyHittersSummary> {
        let col = view.table().column_by_name(&self.column)?;
        let mut map: HashMap<Value, u64> = HashMap::new();
        let mut sampled = 0u64;
        for &row in view.sample_rows(self.rate.min(1.0), seed).iter() {
            let v = col.value(row as usize);
            if v.is_missing() {
                continue;
            }
            sampled += 1;
            *map.entry(v).or_insert(0) += 1;
        }
        let mut counts: Vec<(Value, u64)> = map.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(SampledHeavyHittersSummary { counts, sampled })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    /// 1000 rows: "whale" 40%, "shark" 25%, long tail of minnows.
    fn skewed_view() -> TableView {
        let mut vals = Vec::new();
        for i in 0..1000 {
            vals.push(if i % 10 < 4 {
                "whale".to_string()
            } else if i % 10 < 6 {
                "shark".to_string()
            } else {
                format!("minnow{}", i)
            });
        }
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings(
                    vals.iter().map(|s| Some(s.as_str())),
                )),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn mg_finds_the_heavy_items() {
        let sk = MisraGriesSketch::new("S", 10);
        let s = sk.summarize(&skewed_view(), 0).unwrap();
        let hh = s.heavy_hitters(0.1);
        assert_eq!(hh[0].0, Value::str("whale"));
        assert_eq!(hh[1].0, Value::str("shark"));
        // MG undercounts by at most total/k = 100.
        assert!(hh[0].1 >= 400 - 100);
        assert!(hh[0].1 <= 400);
    }

    #[test]
    fn mg_merge_preserves_heavy_items() {
        let v = skewed_view();
        let t = v.table().clone();
        let sk = MisraGriesSketch::new("S", 10);
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows((0..500).collect(), 1000)),
                ),
                0,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(
                    t,
                    Arc::new(MembershipSet::from_rows((500..1000).collect(), 1000)),
                ),
                0,
            )
            .unwrap();
        let merged = a.merge(&b);
        assert_eq!(merged.total, 1000);
        let hh = merged.heavy_hitters(0.1);
        assert_eq!(hh[0].0, Value::str("whale"));
        // Merged MG error bound: ≤ total/k per the mergeable-summaries paper.
        assert!(merged.count_of(&Value::str("whale")) >= 300);
        assert!(merged.counters.len() <= 10, "capacity respected");
    }

    #[test]
    fn mg_identity_is_unit() {
        let sk = MisraGriesSketch::new("S", 5);
        let s = sk.summarize(&skewed_view(), 0).unwrap();
        let m = sk.identity().merge(&s);
        assert_eq!(m.total, s.total);
        assert_eq!(m.heavy_hitters(0.1), s.heavy_hitters(0.1));
    }

    #[test]
    fn mg_never_tracks_more_than_k() {
        let sk = MisraGriesSketch::new("S", 3);
        let s = sk.summarize(&skewed_view(), 0).unwrap();
        assert!(s.counters.len() <= 3);
    }

    #[test]
    fn sampled_hh_finds_heavy_items() {
        let sk = SampledHeavyHittersSketch::new("S", 4, 0.5);
        let s = sk.summarize(&skewed_view(), 1).unwrap();
        let hh = s.heavy_hitters(4);
        let names: Vec<String> = hh.iter().map(|(v, _)| v.to_string()).collect();
        assert!(names.contains(&"whale".to_string()), "{names:?}");
        assert!(names.contains(&"shark".to_string()), "{names:?}");
        // No minnow occurs anywhere near 3n/4K of the sample.
        assert!(names.iter().all(|n| !n.starts_with("minnow")));
    }

    #[test]
    fn sampled_hh_merge_accumulates() {
        let v = skewed_view();
        let t = v.table().clone();
        let sk = SampledHeavyHittersSketch::new("S", 4, 0.6);
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows((0..500).collect(), 1000)),
                ),
                1,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(
                    t,
                    Arc::new(MembershipSet::from_rows((500..1000).collect(), 1000)),
                ),
                2,
            )
            .unwrap();
        let merged = a.merge(&b);
        assert_eq!(merged.sampled, a.sampled + b.sampled);
        let hh = merged.heavy_hitters(4);
        assert_eq!(hh[0].0, Value::str("whale"));
    }

    #[test]
    fn target_sample_size_formula() {
        // n = K² log(K/δ)
        let n = SampledHeavyHittersSketch::target_sample_size(10, 0.01);
        assert_eq!(n, (100.0 * (1000.0f64).ln()).ceil() as u64);
        assert!(SampledHeavyHittersSketch::target_sample_size(100, 0.01) > n);
    }

    #[test]
    fn wire_roundtrips() {
        let s = MisraGriesSketch::new("S", 5)
            .summarize(&skewed_view(), 0)
            .unwrap();
        assert_eq!(MisraGriesSummary::from_bytes(s.to_bytes()).unwrap(), s);
        let s = SampledHeavyHittersSketch::new("S", 5, 0.3)
            .summarize(&skewed_view(), 0)
            .unwrap();
        assert_eq!(
            SampledHeavyHittersSummary::from_bytes(s.to_bytes()).unwrap(),
            s
        );
    }

    #[test]
    fn fused_sampling_rate_is_calibrated() {
        // 200k rows, half passing the filter, rate 0.3: the fused
        // hash-threshold sample fraction concentrates around the rate
        // (binomial std err ~0.0014 at n=100k; 3 sigma is well under the
        // 0.015 tolerance), and the draw is seed-deterministic.
        use hillview_columnar::column::I64Column;
        use hillview_columnar::Predicate;
        let n = 200_000usize;
        let names = ["alpha", "beta", "gamma", "delta"];
        let t = Table::builder()
            .column(
                "S",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings((0..n).map(|i| Some(names[i % 4])))),
            )
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(
                    (0..n).map(|i| Some(i as i64 % 100)),
                )),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let p = Predicate::range("X", 0.0, 50.0);
        let rate = 0.3f64;
        let sk = SampledHeavyHittersSketch::new("S", 4, rate);
        let s1 = sk.summarize_filtered(&v, &p, 42).unwrap();
        let frac = s1.sampled as f64 / 100_000.0;
        assert!((frac - rate).abs() < 0.015, "sample fraction {frac}");
        // Each value appears in 1/4 of the filtered rows; the sampled
        // counts stay proportional.
        for (_, c) in &s1.counts {
            let share = *c as f64 / s1.sampled as f64;
            assert!((share - 0.25).abs() < 0.02, "value share {share}");
        }
        // Deterministic per seed, different across seeds.
        assert_eq!(s1, sk.summarize_filtered(&v, &p, 42).unwrap());
        assert_ne!(s1, sk.summarize_filtered(&v, &p, 43).unwrap());
    }
}
