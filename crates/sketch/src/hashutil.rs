//! Stable value hashing shared by the randomized sketches.
//!
//! Sketch hashes must be stable across processes and runs — summaries built
//! on different workers merge by hash (bottom-k, HLL), and the redo log
//! replays queries after failures expecting identical results (paper §5.8).
//! So hashing is explicit FNV-1a over a canonical byte encoding rather than
//! the (potentially process-seeded) standard hasher.

use hillview_columnar::Value;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// FNV-1a over raw bytes.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Finalizing mix (splitmix64) to spread FNV's weak high bits.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Stable 64-bit hash of a string, optionally seeded.
#[inline]
pub fn hash_str(s: &str, seed: u64) -> u64 {
    mix(fnv1a(s.as_bytes()) ^ seed)
}

/// Stable 64-bit hash of a cell value, optionally seeded. Values that
/// compare equal hash equally (Int 2 ≠ Double 2.0 *do* compare equal in the
/// Value order, but never co-occur within one column, which is the only
/// place sketch hashing is applied).
#[inline]
pub fn hash_value(v: &Value, seed: u64) -> u64 {
    let h = match v {
        Value::Missing => fnv1a(&[0xFF]),
        Value::Int(x) => fnv1a(&x.to_le_bytes()) ^ 0x01,
        Value::Double(x) => fnv1a(&x.to_bits().to_le_bytes()) ^ 0x02,
        Value::Date(x) => fnv1a(&x.to_le_bytes()) ^ 0x03,
        Value::Str(s) => fnv1a(s.as_bytes()) ^ 0x04,
    };
    mix(h ^ seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_constants() {
        // Regression pin: these exact values must never change, or merged
        // sketches from "different processes" would disagree.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"hillview"), fnv1a(b"hillview"));
        assert_eq!(hash_str("SFO", 0), hash_str("SFO", 0));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(hash_str("SFO", 1), hash_str("SFO", 2));
        assert_ne!(hash_value(&Value::Int(5), 1), hash_value(&Value::Int(5), 2));
    }

    #[test]
    fn distinct_values_rarely_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000i64 {
            seen.insert(hash_value(&Value::Int(i), 0));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn value_types_are_domain_separated() {
        assert_ne!(
            hash_value(&Value::Int(7), 0),
            hash_value(&Value::Date(7), 0)
        );
        assert_ne!(
            hash_value(&Value::Missing, 0),
            hash_value(&Value::Int(0), 0)
        );
    }

    #[test]
    fn mix_is_bijective_spot_check() {
        // splitmix64 finalizer is a bijection; different inputs → different
        // outputs on a sample.
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0u64..1000).map(mix).collect();
        assert_eq!(outs.len(), 1000);
    }
}
