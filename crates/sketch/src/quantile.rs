//! Sampled quantile estimation for the scroll bar.
//!
//! Paper App. C.1: when the user drags the scroll bar to pixel `j` of `V`,
//! the spreadsheet must display rows starting near relative rank `j/V`. A
//! uniform sample of `O(ε⁻² log 1/δ)` rows suffices (Theorem 2); with
//! ε = 1/2V that is `O(V²)` rows — independent of the dataset size.
//!
//! Each leaf Bernoulli-samples rows at the caller-chosen rate and keeps
//! their sort keys; merge concatenates, down-sampling deterministically if a
//! cap is exceeded (both inputs are uniform samples at equal rate, so
//! keeping every j-th element of the concatenation stays uniform).

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_rows, Selection};
use hillview_columnar::{row_sampled, FrameFilter, Predicate, RowKey, SortOrder};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;

/// Sampled quantile sketch over a sort order.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// The active sort order whose keys are sampled.
    pub order: SortOrder,
    /// Row sampling rate.
    pub rate: f64,
    /// Cap on retained keys per summary (≈ the paper's O(V²) budget).
    pub cap: usize,
}

impl QuantileSketch {
    /// Sample sort keys at `rate`, keeping at most `cap` per summary.
    pub fn new(order: SortOrder, rate: f64, cap: usize) -> Self {
        QuantileSketch {
            order,
            rate,
            cap: cap.max(1),
        }
    }

    /// The paper's sample budget for a `v`-pixel scroll bar: `O(V²)`;
    /// we use 4V² which keeps the rank error well under one pixel.
    pub fn sample_budget(scrollbar_pixels: usize) -> usize {
        4 * scrollbar_pixels * scrollbar_pixels
    }
}

/// A uniform sample of sort keys plus the population size it represents.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSummary {
    /// Sampled keys (unsorted until [`QuantileSummary::quantile`]).
    pub keys: Vec<RowKey>,
    /// Rows in the underlying (filtered) population.
    pub population: u64,
    /// Down-sampling cap.
    pub cap: usize,
}

impl QuantileSummary {
    /// The key at relative rank `q ∈ [0, 1]`, if any rows were sampled.
    pub fn quantile(&self, q: f64) -> Option<RowKey> {
        if self.keys.is_empty() {
            return None;
        }
        let mut sorted = self.keys.clone();
        sorted.sort();
        let idx = ((q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round()) as usize;
        Some(sorted[idx].clone())
    }
}

impl Summary for QuantileSummary {
    fn merge(&self, other: &Self) -> Self {
        let cap = self.cap.max(other.cap);
        let mut keys: Vec<RowKey> =
            Vec::with_capacity((self.keys.len() + other.keys.len()).min(2 * cap));
        keys.extend_from_slice(&self.keys);
        keys.extend_from_slice(&other.keys);
        if keys.len() > cap {
            // Deterministic uniform thinning: keep every stride-th element.
            let stride = keys.len().div_ceil(cap);
            keys = keys.into_iter().step_by(stride).collect();
        }
        QuantileSummary {
            keys,
            population: self.population + other.population,
            cap,
        }
    }
}

impl Wire for QuantileSummary {
    fn encode(&self, w: &mut WireWriter) {
        self.keys.encode(w);
        w.put_varint(self.population);
        w.put_varint(self.cap as u64);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        Ok(QuantileSummary {
            keys: Vec::<RowKey>::decode(r)?,
            population: r.get_varint()?,
            cap: r.get_len("quantile cap")?,
        })
    }
}

impl Sketch for QuantileSketch {
    type Summary = QuantileSummary;

    fn name(&self) -> &'static str {
        "quantile"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<QuantileSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<QuantileSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<QuantileSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<QuantileSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> QuantileSummary {
        QuantileSummary {
            keys: Vec::new(),
            population: 0,
            cap: self.cap,
        }
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        // At rate >= 1 every key is taken and cap-thinning is
        // deterministic, so the summary is seed-independent.
        (self.rate >= 1.0).then(|| format!("{:?}|{}", self.order, self.cap).into_bytes())
    }
}

impl QuantileSketch {
    /// The shared scan body. Sub-range populations count the membership
    /// rows in the bounds (not the sample), so split partials sum to the
    /// partition population exactly; merged keys stay a uniform sample.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        seed: u64,
    ) -> SketchResult<QuantileSummary> {
        let resolved = self.order.resolve(view.table())?;
        // Unfiltered sampling pre-draws a partition-wide sample
        // (representation-dependent walk, clipped to the bounds). Under
        // fusion the sample must come from the *filtered* stream, so each
        // surviving row is instead tested with the stateless hash-threshold
        // decision [`row_sampled`] — a pure function of `(row, rate, seed)`,
        // which keeps split tiling exact and the one-pass structure intact
        // (no materialized membership, no second decode).
        let hash_sample = self.rate < 1.0 && filter.is_some();
        let sampled =
            (self.rate < 1.0 && filter.is_none()).then(|| view.sample_rows(self.rate, seed));
        let base = crate::view::bounded_selection(view, &sampled, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        let mut keys = Vec::with_capacity(base.count().min(2 * self.cap));
        scan_rows(&sel, |row| {
            if !hash_sample || row_sampled(row as u64, self.rate, seed) {
                keys.push(resolved.key(view.table(), row));
            }
        });
        // The population is the rows the summary speaks for: the filtered
        // membership under fusion, the bounded membership otherwise.
        let population = match &ff {
            Some(f) => f.borrow().matched(),
            None => match bounds {
                None => view.len() as u64,
                Some((lo, hi)) => view.members().count_range(lo, hi) as u64,
            },
        };
        if keys.len() > self.cap {
            let stride = keys.len().div_ceil(self.cap);
            keys = keys.into_iter().step_by(stride).collect();
        }
        Ok(QuantileSummary {
            keys,
            population,
            cap: self.cap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::{ColumnKind, Table, Value};
    use std::sync::Arc;

    fn view(n: i64) -> TableView {
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Int,
                Column::Int(I64Column::from_options((0..n).map(Some))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    fn key_val(k: &RowKey) -> i64 {
        match &k.values()[0] {
            Value::Int(v) => *v,
            _ => panic!("expected int key"),
        }
    }

    #[test]
    fn median_estimate_is_close() {
        let sk = QuantileSketch::new(SortOrder::ascending(&["X"]), 0.2, 100_000);
        let s = sk.summarize(&view(100_000), 3).unwrap();
        let med = key_val(&s.quantile(0.5).unwrap());
        assert!((45_000..55_000).contains(&med), "median estimate {med}");
        let p10 = key_val(&s.quantile(0.1).unwrap());
        assert!((5_000..15_000).contains(&p10), "p10 {p10}");
    }

    #[test]
    fn extremes_map_to_ends() {
        let sk = QuantileSketch::new(SortOrder::ascending(&["X"]), 1.0, 1_000_000);
        let s = sk.summarize(&view(1000), 0).unwrap();
        assert_eq!(key_val(&s.quantile(0.0).unwrap()), 0);
        assert_eq!(key_val(&s.quantile(1.0).unwrap()), 999);
    }

    #[test]
    fn merge_preserves_accuracy() {
        let v = view(50_000);
        let t = v.table().clone();
        let sk = QuantileSketch::new(SortOrder::ascending(&["X"]), 0.3, 2_000);
        use hillview_columnar::MembershipSet;
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows((0..25_000).collect(), 50_000)),
                ),
                1,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(
                    t,
                    Arc::new(MembershipSet::from_rows((25_000..50_000).collect(), 50_000)),
                ),
                2,
            )
            .unwrap();
        let m = a.merge(&b);
        assert_eq!(m.population, 50_000);
        assert!(m.keys.len() <= 2_000);
        let med = key_val(&m.quantile(0.5).unwrap());
        assert!((20_000..30_000).contains(&med), "median {med}");
    }

    #[test]
    fn cap_enforced_at_leaf() {
        let sk = QuantileSketch::new(SortOrder::ascending(&["X"]), 1.0, 50);
        let s = sk.summarize(&view(10_000), 0).unwrap();
        assert!(s.keys.len() <= 50);
        // Even capped, quantiles remain roughly correct.
        let med = key_val(&s.quantile(0.5).unwrap());
        assert!((3_000..7_000).contains(&med), "median {med}");
    }

    #[test]
    fn empty_has_no_quantile() {
        let sk = QuantileSketch::new(SortOrder::ascending(&["X"]), 0.5, 10);
        assert!(sk.identity().quantile(0.5).is_none());
    }

    #[test]
    fn sample_budget_is_quadratic() {
        assert_eq!(QuantileSketch::sample_budget(10), 400);
        assert_eq!(QuantileSketch::sample_budget(100), 40_000);
    }

    #[test]
    fn wire_roundtrip() {
        let sk = QuantileSketch::new(SortOrder::ascending(&["X"]), 1.0, 64);
        let s = sk.summarize(&view(100), 0).unwrap();
        assert_eq!(QuantileSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
