//! Find-text: locate the next matching row in sort order.
//!
//! Paper App. B.2: *"Given a row R, a search criteria (the search text;
//! whether it is exact match, substring, or regexp; and whether it is case
//! sensitive), and a column sort order, we want to find the next row
//! satisfying the criteria in the sort order. This is similar to the next
//! item vizketch above except that we eliminate all rows that do not match
//! the search criteria."*

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_rows, Selection};
use hillview_columnar::{FrameFilter, Predicate, Row, RowKey, SortOrder, StrMatchKind};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Find-text sketch.
#[derive(Debug, Clone)]
pub struct FindSketch {
    /// Column searched.
    pub column: Arc<str>,
    /// Query text or pattern.
    pub query: Arc<str>,
    /// Match mode (exact / substring / regex).
    pub kind: StrMatchKind,
    /// Case-insensitive matching.
    pub case_insensitive: bool,
    /// Sort order defining "next".
    pub order: SortOrder,
    /// Exclusive start key; `None` searches from the beginning.
    pub start: Option<RowKey>,
}

impl FindSketch {
    /// Find the first match of `query` in `column` under `order`.
    pub fn new(column: &str, query: &str, kind: StrMatchKind, order: SortOrder) -> Self {
        FindSketch {
            column: Arc::from(column),
            query: Arc::from(query),
            kind,
            case_insensitive: false,
            order,
            start: None,
        }
    }

    /// Fold case when matching.
    pub fn case_insensitive(mut self) -> Self {
        self.case_insensitive = true;
        self
    }

    /// Continue from (strictly after) `start`.
    pub fn after(mut self, start: RowKey) -> Self {
        self.start = Some(start);
        self
    }
}

/// The first matching row after the start key, plus match counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FindSummary {
    /// Smallest matching (key, row) after the start key, if any.
    pub first: Option<(RowKey, Row)>,
    /// Matches after the start key (including `first`).
    pub matches_after: u64,
    /// Matches anywhere in the scanned data (lets the UI say "wrapped").
    pub matches_total: u64,
}

impl Summary for FindSummary {
    fn merge(&self, other: &Self) -> Self {
        let first = match (&self.first, &other.first) {
            (Some(a), Some(b)) => Some(if a.0 <= b.0 { a.clone() } else { b.clone() }),
            (x, None) => x.clone(),
            (None, x) => x.clone(),
        };
        FindSummary {
            first,
            matches_after: self.matches_after + other.matches_after,
            matches_total: self.matches_total + other.matches_total,
        }
    }
}

impl Wire for FindSummary {
    fn encode(&self, w: &mut WireWriter) {
        match &self.first {
            None => w.put_u8(0),
            Some((key, row)) => {
                w.put_u8(1);
                key.encode(w);
                row.encode(w);
            }
        }
        w.put_varint(self.matches_after);
        w.put_varint(self.matches_total);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let first = match r.get_u8()? {
            0 => None,
            1 => Some((RowKey::decode(r)?, Row::decode(r)?)),
            tag => {
                return Err(hillview_net::Error::BadTag {
                    context: "FindSummary",
                    tag,
                })
            }
        };
        Ok(FindSummary {
            first,
            matches_after: r.get_varint()?,
            matches_total: r.get_varint()?,
        })
    }
}

impl Sketch for FindSketch {
    type Summary = FindSummary;

    fn name(&self) -> &'static str {
        "find-text"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<FindSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<FindSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<FindSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<FindSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> FindSummary {
        FindSummary {
            first: None,
            matches_after: 0,
            matches_total: 0,
        }
    }
}

impl FindSketch {
    /// The shared scan body; match counts add and the first-match key is a
    /// minimum lattice, so split partials fold back to exactly the unsplit
    /// summary.
    ///
    /// The search criteria compile into the block-wise predicate engine: on
    /// dictionary columns the query is matched once per distinct entry into
    /// a code bitmap, and the frame scan probes 64-row match words — rows
    /// that fail the search (or the fused filter) never reach the key
    /// builder. Any extra `filter` is AND-composed into the same compiled
    /// pass.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<FindSummary> {
        let table = view.table();
        let resolved = self.order.resolve(table)?;
        let match_pred = Predicate::str_match(
            &self.column,
            &self.query,
            self.kind.clone(),
            self.case_insensitive,
        );
        let pred = match filter {
            Some(f) => f.clone().and(match_pred),
            None => match_pred,
        };
        let base = crate::view::bounded_selection(view, &None, bounds);
        let ff = RefCell::new(FrameFilter::compile(&pred, table)?);
        let sel = Selection::Filtered {
            base: &base,
            filter: &ff,
        };
        let mut out = FindSummary {
            first: None,
            matches_after: 0,
            matches_total: 0,
        };
        // Every surviving row already matches the criteria, so the scan
        // body only builds keys and maintains the minimum lattice.
        scan_rows(&sel, |row| {
            out.matches_total += 1;
            let key = resolved.key(table, row);
            if let Some(start) = &self.start {
                if key <= *start {
                    return;
                }
            }
            out.matches_after += 1;
            let better = match &out.first {
                None => true,
                Some((best, _)) => key < *best,
            };
            if better {
                out.first = Some((key, table.full_row(row)));
            }
        });
        Ok(out)
    }

    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, _seed: u64) -> SketchResult<FindSummary> {
        let table = view.table();
        let resolved = self.order.resolve(table)?;
        let mut pred = Predicate::str_match(
            &self.column,
            &self.query,
            self.kind.clone(),
            self.case_insensitive,
        )
        .compile(table)?;
        let mut out = FindSummary {
            first: None,
            matches_after: 0,
            matches_total: 0,
        };
        for row in view.iter_rows() {
            if !pred.eval(table, row) {
                continue;
            }
            out.matches_total += 1;
            let key = resolved.key(table, row);
            if let Some(start) = &self.start {
                if key <= *start {
                    continue;
                }
            }
            out.matches_after += 1;
            let better = match &out.first {
                None => true,
                Some((best, _)) => key < *best,
            };
            if better {
                out.first = Some((key, table.full_row(row)));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table, Value};

    fn view() -> TableView {
        let servers = ["frodo", "gandalf-1", "bilbo", "gandalf-2", "GANDALF-3"];
        let ord = [4i64, 1, 3, 2, 0];
        let t = Table::builder()
            .column(
                "Server",
                ColumnKind::String,
                Column::Str(DictColumn::from_strings(servers.iter().map(|&s| Some(s)))),
            )
            .column(
                "Ord",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(ord.iter().map(|&v| Some(v)))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn finds_first_in_sort_order() {
        let sk = FindSketch::new(
            "Server",
            "gandalf",
            StrMatchKind::Substring,
            SortOrder::ascending(&["Ord"]),
        );
        let s = sk.summarize(&view(), 0).unwrap();
        let (key, row) = s.first.unwrap();
        assert_eq!(key.values(), &[Value::Int(1)]);
        assert_eq!(row.values[0], Value::str("gandalf-1"));
        assert_eq!(s.matches_total, 2, "case-sensitive: GANDALF-3 excluded");
    }

    #[test]
    fn case_insensitive_widens_matches() {
        let sk = FindSketch::new(
            "Server",
            "gandalf",
            StrMatchKind::Substring,
            SortOrder::ascending(&["Ord"]),
        )
        .case_insensitive();
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(s.matches_total, 3);
        let (key, _) = s.first.unwrap();
        assert_eq!(key.values(), &[Value::Int(0)], "GANDALF-3 sorts first");
    }

    #[test]
    fn find_next_continues_after_start() {
        let order = SortOrder::ascending(&["Ord"]);
        let first = FindSketch::new("Server", "gandalf", StrMatchKind::Substring, order.clone())
            .summarize(&view(), 0)
            .unwrap();
        let start = first.first.unwrap().0;
        let next = FindSketch::new("Server", "gandalf", StrMatchKind::Substring, order)
            .after(start)
            .summarize(&view(), 0)
            .unwrap();
        let (key, row) = next.first.unwrap();
        assert_eq!(key.values(), &[Value::Int(2)]);
        assert_eq!(row.values[0], Value::str("gandalf-2"));
        assert_eq!(next.matches_after, 1);
        assert_eq!(next.matches_total, 2, "total ignores the start key");
    }

    #[test]
    fn regex_matching() {
        let sk = FindSketch::new(
            "Server",
            "^gandalf-[0-9]$",
            StrMatchKind::Regex,
            SortOrder::ascending(&["Ord"]),
        );
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(s.matches_total, 2);
    }

    #[test]
    fn merge_takes_global_minimum() {
        let v = view();
        let t = v.table().clone();
        let sk = FindSketch::new(
            "Server",
            "gandalf",
            StrMatchKind::Substring,
            SortOrder::ascending(&["Ord"]),
        );
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows(vec![0, 3], 5)),
                ),
                0,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(t, Arc::new(MembershipSet::from_rows(vec![1, 2, 4], 5))),
                0,
            )
            .unwrap();
        let merged = a.merge(&b);
        let whole = sk.summarize(&view(), 0).unwrap();
        assert_eq!(merged, whole);
    }

    #[test]
    fn no_match_yields_none() {
        let sk = FindSketch::new(
            "Server",
            "sauron",
            StrMatchKind::Substring,
            SortOrder::ascending(&["Ord"]),
        );
        let s = sk.summarize(&view(), 0).unwrap();
        assert!(s.first.is_none());
        assert_eq!(s.matches_total, 0);
    }

    #[test]
    fn wire_roundtrip() {
        let sk = FindSketch::new(
            "Server",
            "gandalf",
            StrMatchKind::Substring,
            SortOrder::ascending(&["Ord"]),
        );
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(FindSummary::from_bytes(s.to_bytes()).unwrap(), s);
        let empty = sk.identity();
        assert_eq!(FindSummary::from_bytes(empty.to_bytes()).unwrap(), empty);
    }
}
