//! Two-dimensional bucket counts (heat maps).
//!
//! Paper §4.3: *"The summarize function samples data with the target rate,
//! counting the number of values that fall in each bin. It outputs a matrix
//! of Bx×By bin counts. The merge function adds two such matrices."*

use crate::bind::{BoundColumn, Cell, FrameCells};
use crate::buckets::BucketSpec;
use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::{scan_frames, FrameEvent, FrameFilter, Predicate, Selection, BLOCK_ROWS};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Heat map sketch over two columns.
#[derive(Debug, Clone)]
pub struct HeatmapSketch {
    /// X-axis column.
    pub col_x: Arc<str>,
    /// Y-axis column.
    pub col_y: Arc<str>,
    /// X bucket boundaries.
    pub buckets_x: BucketSpec,
    /// Y bucket boundaries.
    pub buckets_y: BucketSpec,
    /// Sampling rate; `>= 1.0` is exact. Sampling is only sound when the
    /// count→color map is linear (paper §4.3 footnote).
    pub rate: f64,
}

impl HeatmapSketch {
    /// Exact heat map.
    pub fn streaming(col_x: &str, col_y: &str, bx: BucketSpec, by: BucketSpec) -> Self {
        HeatmapSketch {
            col_x: Arc::from(col_x),
            col_y: Arc::from(col_y),
            buckets_x: bx,
            buckets_y: by,
            rate: 1.0,
        }
    }

    /// Sampled heat map.
    pub fn sampled(col_x: &str, col_y: &str, bx: BucketSpec, by: BucketSpec, rate: f64) -> Self {
        HeatmapSketch {
            rate,
            ..Self::streaming(col_x, col_y, bx, by)
        }
    }
}

/// A Bx×By count matrix in row-major order (`counts[x * by + y]`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeatmapSummary {
    /// X bucket count.
    pub bx: usize,
    /// Y bucket count.
    pub by: usize,
    /// Bin counts, row-major by X.
    pub counts: Vec<u64>,
    /// Rows where either coordinate was missing.
    pub missing: u64,
    /// Rows where either coordinate was out of range.
    pub out_of_range: u64,
    /// Rows inspected.
    pub rows_inspected: u64,
}

impl HeatmapSummary {
    /// Zero matrix of the given shape.
    pub fn zero(bx: usize, by: usize) -> Self {
        HeatmapSummary {
            bx,
            by,
            counts: vec![0; bx * by],
            ..Default::default()
        }
    }

    /// Count in cell (x, y).
    pub fn get(&self, x: usize, y: usize) -> u64 {
        self.counts[x * self.by + y]
    }

    /// Largest cell count.
    pub fn max_count(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

impl Summary for HeatmapSummary {
    fn merge(&self, other: &Self) -> Self {
        if self.counts.is_empty() && self.bx == 0 {
            return other.clone();
        }
        if other.counts.is_empty() && other.bx == 0 {
            return self.clone();
        }
        debug_assert_eq!((self.bx, self.by), (other.bx, other.by));
        HeatmapSummary {
            bx: self.bx,
            by: self.by,
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
            missing: self.missing + other.missing,
            out_of_range: self.out_of_range + other.out_of_range,
            rows_inspected: self.rows_inspected + other.rows_inspected,
        }
    }
}

impl Wire for HeatmapSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.bx as u64);
        w.put_varint(self.by as u64);
        for &c in &self.counts {
            w.put_varint(c);
        }
        w.put_varint(self.missing);
        w.put_varint(self.out_of_range);
        w.put_varint(self.rows_inspected);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let bx = r.get_len("heatmap bx")?;
        let by = r.get_len("heatmap by")?;
        let n = bx.checked_mul(by).ok_or(hillview_net::Error::BadLength {
            context: "heatmap size",
            len: u64::MAX,
        })?;
        let mut counts = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            counts.push(r.get_varint()?);
        }
        Ok(HeatmapSummary {
            bx,
            by,
            counts,
            missing: r.get_varint()?,
            out_of_range: r.get_varint()?,
            rows_inspected: r.get_varint()?,
        })
    }
}

impl Sketch for HeatmapSketch {
    type Summary = HeatmapSummary;

    fn name(&self) -> &'static str {
        "heatmap"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<HeatmapSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<HeatmapSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<HeatmapSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<HeatmapSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> HeatmapSummary {
        HeatmapSummary::zero(self.buckets_x.count(), self.buckets_y.count())
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        (self.rate >= 1.0).then(|| {
            format!(
                "{}|{}|{:?}|{:?}",
                self.col_x, self.col_y, self.buckets_x, self.buckets_y
            )
            .into_bytes()
        })
    }
}

impl HeatmapSketch {
    /// The shared scan body; matrix counts are integers, so split partials
    /// fold back to exactly the unsplit summary.
    ///
    /// Dense selections stream as 64-row block frames: each bound column
    /// decodes its lanes once per frame (zero-copy for plain storage) and
    /// produces a frame of bucket cells through the lane-parallel binding,
    /// so the per-row work is two array reads and a matrix increment.
    /// Sparse row lists keep the per-row binding probe.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        seed: u64,
    ) -> SketchResult<HeatmapSummary> {
        if let Some(pred) = filter {
            // Sampled sketches draw from the *filtered* membership, so they
            // take the two-pass path; exact ones fuse the predicate into the
            // frame stream below.
            if self.rate < 1.0 {
                let narrowed = crate::view::filtered_view(view, pred)?;
                return self.summarize_bounded(&narrowed, bounds, None, seed);
            }
        }
        let cx = view.table().column_by_name(&self.col_x)?;
        let cy = view.table().column_by_name(&self.col_y)?;
        // Bind once: raw storage + null bitmaps, no per-row enum dispatch.
        let bx = BoundColumn::bind(cx, &self.buckets_x)?;
        let by = BoundColumn::bind(cy, &self.buckets_y)?;
        let sampled = (self.rate < 1.0).then(|| view.sample_rows(self.rate, seed));
        let base = crate::view::bounded_selection(view, &sampled, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        let mut out = HeatmapSummary::zero(self.buckets_x.count(), self.buckets_y.count());
        if ff.is_none() {
            out.rows_inspected = base.count() as u64;
        }
        let width_y = out.by;
        let mut fx = FrameCells::new(&bx, out.bx);
        let mut fy = FrameCells::new(&by, out.by);
        let (x_out, x_miss) = (fx.out(), fx.miss());
        let (y_out, y_miss) = (fy.out(), fy.miss());
        let mut xs = [0u32; BLOCK_ROWS];
        let mut ys = [0u32; BLOCK_ROWS];
        let tally_row =
            |out: &mut HeatmapSummary, row: usize| match (bx.bucket(row), by.bucket(row)) {
                (Cell::In(x), Cell::In(y)) => out.counts[x * width_y + y] += 1,
                (Cell::Missing, _) | (_, Cell::Missing) => out.missing += 1,
                _ => out.out_of_range += 1,
            };
        scan_frames(&sel, |ev| match ev {
            // Mostly-selected frames amortize two full-frame cell
            // computations; sparser ones keep the per-row probe (decoding
            // 2×64 lanes to consume a couple of rows would cost more than
            // the probes).
            FrameEvent::Frame { base, len, word } if word.count_ones() as usize * 2 >= len => {
                fx.frame(base, len, &mut xs);
                fy.frame(base, len, &mut ys);
                let mut m = word;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let (x, y) = (xs[k], ys[k]);
                    if x == x_miss || y == y_miss {
                        out.missing += 1;
                    } else if x == x_out || y == y_out {
                        out.out_of_range += 1;
                    } else {
                        out.counts[x as usize * width_y + y as usize] += 1;
                    }
                }
            }
            FrameEvent::Frame { base, word, .. } => {
                let mut m = word;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    tally_row(&mut out, base + k);
                }
            }
            FrameEvent::Row(row) => tally_row(&mut out, row),
        });
        if let Some(f) = &ff {
            out.rows_inspected = f.borrow().matched();
        }
        Ok(out)
    }
}

impl HeatmapSketch {
    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, seed: u64) -> SketchResult<HeatmapSummary> {
        let cx = view.table().column_by_name(&self.col_x)?;
        let cy = view.table().column_by_name(&self.col_y)?;
        let bx = BoundColumn::bind(cx, &self.buckets_x)?;
        let by = BoundColumn::bind(cy, &self.buckets_y)?;
        let mut out = HeatmapSummary::zero(self.buckets_x.count(), self.buckets_y.count());
        let width_y = out.by;
        let mut tally = |row: usize| {
            out.rows_inspected += 1;
            match (bx.bucket(row), by.bucket(row)) {
                (Cell::In(x), Cell::In(y)) => out.counts[x * width_y + y] += 1,
                (Cell::Missing, _) | (_, Cell::Missing) => out.missing += 1,
                _ => out.out_of_range += 1,
            }
        };
        if self.rate >= 1.0 {
            for row in view.iter_rows() {
                tally(row);
            }
        } else {
            for &row in view.sample_rows(self.rate, seed).iter() {
                tally(row as usize);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{Column, DictColumn, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view() -> TableView {
        // 8 rows on a 2x2 grid plus a missing and an out-of-range row.
        let xs = [0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 5.0, 0.0, f64::NAN, 100.0];
        let ys = ["a", "a", "n", "a", "n", "n", "n", "n", "a", "a"];
        let t = Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(xs.iter().map(|&v| Some(v)))),
            )
            .column(
                "Y",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(ys.iter().map(|&s| Some(s)))),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    fn sketch() -> HeatmapSketch {
        HeatmapSketch::streaming(
            "X",
            "Y",
            BucketSpec::numeric(0.0, 10.0, 2),
            BucketSpec::strings(vec!["a".into(), "n".into()]),
        )
    }

    #[test]
    fn counts_land_in_cells() {
        let s = sketch().summarize(&view(), 0).unwrap();
        assert_eq!(s.get(0, 0), 2, "x<5, y=a*");
        assert_eq!(s.get(0, 1), 2, "x<5, y=n*");
        assert_eq!(s.get(1, 0), 1);
        assert_eq!(s.get(1, 1), 3);
        assert_eq!(s.missing, 1);
        assert_eq!(s.out_of_range, 1);
        assert_eq!(s.max_count(), 3);
    }

    #[test]
    fn merge_law_on_partitions() {
        let v = view();
        let t = v.table().clone();
        let parts = vec![
            TableView::with_members(
                t.clone(),
                Arc::new(MembershipSet::from_rows((0..5).collect(), 10)),
            ),
            TableView::with_members(t, Arc::new(MembershipSet::from_rows((5..10).collect(), 10))),
        ];
        assert!(merge_law_holds(&sketch(), &v, &parts, 0));
    }

    #[test]
    fn identity_is_unit() {
        let sk = sketch();
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(sk.identity().merge(&s), s);
    }

    #[test]
    fn sampled_heatmap_is_deterministic() {
        let sk = HeatmapSketch::sampled(
            "X",
            "Y",
            BucketSpec::numeric(0.0, 10.0, 2),
            BucketSpec::strings(vec!["a".into(), "n".into()]),
            0.5,
        );
        let v = view();
        assert_eq!(sk.summarize(&v, 7).unwrap(), sk.summarize(&v, 7).unwrap());
    }

    #[test]
    fn wire_roundtrip() {
        let s = sketch().summarize(&view(), 0).unwrap();
        assert_eq!(HeatmapSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn summary_size_is_screen_bound_not_data_bound() {
        // The serialized summary of a 2x2 heat map must stay small no matter
        // how many rows were scanned — the core vizketch property.
        let s = sketch().summarize(&view(), 0).unwrap();
        assert!(s.to_bytes().len() < 64);
    }
}
