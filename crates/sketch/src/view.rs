//! Partition views: the data a sketch's `summarize` sees.
//!
//! A view pairs an immutable [`Table`] (one micropartition of columnar data)
//! with a [`MembershipSet`] selecting which of its rows belong to the
//! current (possibly filtered) dataset — the paper's §5.6 derived-table
//! representation, where filtered tables share storage with their parents.

use crate::traits::SketchResult;
use hillview_columnar::scan::{rows_in_range, Selection};
use hillview_columnar::{filter_members, MembershipSet, Predicate, Table};
use std::sync::{Arc, Mutex};

/// The driver [`Selection`] for a possibly row-bounded kernel scan: a
/// pre-drawn partition-wide sample clipped to the bounds, or the membership
/// set clipped to the bounds. Centralizes the rule every splittable kernel
/// follows — samples are drawn once per partition and *clipped*, never
/// re-drawn per sub-range.
pub(crate) fn bounded_selection<'a>(
    view: &'a TableView,
    sampled: &'a Option<Arc<Vec<u32>>>,
    bounds: Option<(usize, usize)>,
) -> Selection<'a> {
    match (sampled, bounds) {
        (Some(rows), None) => Selection::Rows(rows),
        (Some(rows), Some((lo, hi))) => Selection::Rows(rows_in_range(rows, lo, hi)),
        (None, None) => Selection::Members(view.members()),
        (None, Some((lo, hi))) => Selection::members_in(view.members(), lo, hi),
    }
}

/// Materialize `predicate` over `view` into a narrowed view — the
/// **two-pass** execution of a filtered query (filter to a membership set,
/// then sketch it). This is the reference the fused one-pass path is pinned
/// against, and the fallback kernels use whenever fusion can't apply (e.g.
/// sampled sketches, whose sample must be drawn from the *filtered*
/// membership).
pub fn filtered_view(view: &TableView, predicate: &Predicate) -> SketchResult<TableView> {
    let members = filter_members(view.table(), predicate, view.members())?;
    Ok(TableView::with_members(
        view.table().clone(),
        Arc::new(members),
    ))
}

/// A memoized sample draw: `((rate bits, seed), rows)`.
type SampleMemo = Option<((u64, u64), Arc<Vec<u32>>)>;

/// One partition's worth of (possibly filtered) data.
#[derive(Debug, Clone)]
pub struct TableView {
    table: Arc<Table>,
    members: Arc<MembershipSet>,
    /// Memo for the most recent partition-wide sample, keyed by
    /// `(rate bits, seed)` and shared across clones of this view. Split
    /// sub-tasks all request the identical sample (the splitting contract
    /// forbids re-drawing per range), so one draw serves every piece; a
    /// single slot bounds memory on views that live across many queries in
    /// the worker's dataset cache.
    sample_memo: Arc<Mutex<SampleMemo>>,
}

impl TableView {
    /// View over every row of `table`.
    pub fn full(table: Arc<Table>) -> Self {
        let n = table.num_rows();
        TableView {
            table,
            members: Arc::new(MembershipSet::full(n)),
            sample_memo: Arc::new(Mutex::new(None)),
        }
    }

    /// View over a subset of rows.
    pub fn with_members(table: Arc<Table>, members: Arc<MembershipSet>) -> Self {
        debug_assert_eq!(members.universe(), table.num_rows());
        TableView {
            table,
            members,
            sample_memo: Arc::new(Mutex::new(None)),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The membership set.
    pub fn members(&self) -> &Arc<MembershipSet> {
        &self.members
    }

    /// Number of rows present in the view.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterate present row indexes in ascending order.
    pub fn iter_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter()
    }

    /// Uniform row sample at `rate`, deterministic in `seed` (§5.6).
    ///
    /// The draw is memoized: when split sub-tasks of one partition all ask
    /// for the same `(rate, seed)` — which the splitting contract
    /// guarantees — only the first actually walks the membership; the rest
    /// share the `Arc`. Sampling is a pure function of
    /// `(members, rate, seed)`, so a racing double-draw is harmless.
    pub fn sample_rows(&self, rate: f64, seed: u64) -> Arc<Vec<u32>> {
        let key = (rate.to_bits(), seed);
        if let Some((k, sample)) = &*self.sample_memo.lock().unwrap() {
            if *k == key {
                return sample.clone();
            }
        }
        let drawn = Arc::new(self.members.sample(rate, seed));
        *self.sample_memo.lock().unwrap() = Some((key, drawn.clone()));
        drawn
    }

    /// Derive a narrower view by intersecting membership.
    pub fn restrict(&self, members: &MembershipSet) -> TableView {
        TableView {
            table: self.table.clone(),
            members: Arc::new(self.members.intersect(members)),
            sample_memo: Arc::new(Mutex::new(None)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, I64Column};
    use hillview_columnar::ColumnKind;

    fn table(n: usize) -> Arc<Table> {
        Arc::new(
            Table::builder()
                .column(
                    "X",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options((0..n as i64).map(Some))),
                )
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn full_view_covers_table() {
        let v = TableView::full(table(10));
        assert_eq!(v.len(), 10);
        assert_eq!(v.iter_rows().count(), 10);
    }

    #[test]
    fn filtered_view() {
        let t = table(10);
        let m = Arc::new(MembershipSet::from_rows(vec![1, 3, 5], 10));
        let v = TableView::with_members(t, m);
        assert_eq!(v.len(), 3);
        assert_eq!(v.iter_rows().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn restrict_intersects() {
        let v = TableView::full(table(10));
        let v2 = v.restrict(&MembershipSet::from_rows(vec![0, 2, 9], 10));
        assert_eq!(v2.iter_rows().collect::<Vec<_>>(), vec![0, 2, 9]);
        let v3 = v2.restrict(&MembershipSet::from_rows(vec![2, 3], 10));
        assert_eq!(v3.iter_rows().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let v = TableView::full(table(1000));
        assert_eq!(v.sample_rows(0.3, 5), v.sample_rows(0.3, 5));
    }
}
