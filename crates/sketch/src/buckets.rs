//! Bucket boundary specifications shared by the chart sketches.
//!
//! Numeric columns use equi-sized intervals over `[lo, hi)` (paper §4.3);
//! string columns use equi-width buckets over an alphabetical ordering with
//! explicit boundary strings computed by the bottom-k quantile sketch
//! (App. B.1 "Equi-width buckets for string data").

use hillview_net::{Error as WireError, Result as WireResult, Wire, WireReader, WireWriter};
use std::sync::Arc;

/// How values map to histogram/heatmap buckets.
#[derive(Debug, Clone, PartialEq)]
pub enum BucketSpec {
    /// `count` equal intervals over `[lo, hi)`.
    Numeric {
        /// Inclusive lower edge of the first bucket.
        lo: f64,
        /// Exclusive upper edge of the last bucket.
        hi: f64,
        /// Number of buckets.
        count: usize,
    },
    /// Alphabetical ranges: bucket `i` covers `[boundaries[i],
    /// boundaries[i+1])`, the last bucket is unbounded above. Built from
    /// bottom-k string quantiles.
    Strings {
        /// Ascending bucket lower bounds; `len()` = number of buckets.
        boundaries: Vec<Arc<str>>,
    },
}

impl BucketSpec {
    /// Equi-sized numeric buckets. `hi` must exceed `lo` and `count > 0`.
    pub fn numeric(lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "bucket count must be positive");
        assert!(hi > lo, "empty bucket range [{lo}, {hi})");
        BucketSpec::Numeric { lo, hi, count }
    }

    /// String buckets from ascending boundary strings.
    pub fn strings(boundaries: Vec<Arc<str>>) -> Self {
        assert!(!boundaries.is_empty(), "need at least one string bucket");
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be ascending"
        );
        BucketSpec::Strings { boundaries }
    }

    /// Number of buckets.
    pub fn count(&self) -> usize {
        match self {
            BucketSpec::Numeric { count, .. } => *count,
            BucketSpec::Strings { boundaries } => boundaries.len(),
        }
    }

    /// Bucket index of a numeric value, or `None` if out of range or the
    /// spec is for strings.
    ///
    /// The index is `(v - lo) * (count / (hi - lo))`, i.e. a multiply by a
    /// precomputable scale rather than a per-value division — the chunked
    /// histogram kernel hoists the scale out of its inner loop and must
    /// produce bit-identical buckets to this function.
    #[inline]
    pub fn index_of_f64(&self, v: f64) -> Option<usize> {
        match self {
            BucketSpec::Numeric { lo, hi, count } => {
                if v < *lo || v >= *hi {
                    return None;
                }
                let scale = *count as f64 / (hi - lo);
                let idx = ((v - lo) * scale) as usize;
                Some(idx.min(count - 1))
            }
            BucketSpec::Strings { .. } => None,
        }
    }

    /// Bucket index of a string value, or `None` if below the first
    /// boundary or the spec is numeric.
    #[inline]
    pub fn index_of_str(&self, s: &str) -> Option<usize> {
        match self {
            BucketSpec::Strings { boundaries } => {
                match boundaries.binary_search_by(|b| b.as_ref().cmp(s)) {
                    Ok(i) => Some(i),
                    Err(0) => None, // below the smallest boundary
                    Err(i) => Some(i - 1),
                }
            }
            BucketSpec::Numeric { .. } => None,
        }
    }

    /// The numeric sub-range covered by bucket `i` (numeric specs only).
    pub fn numeric_bounds(&self, i: usize) -> Option<(f64, f64)> {
        match self {
            BucketSpec::Numeric { lo, hi, count } => {
                if i >= *count {
                    return None;
                }
                let w = (hi - lo) / *count as f64;
                Some((lo + w * i as f64, lo + w * (i + 1) as f64))
            }
            _ => None,
        }
    }

    /// Label for bucket `i`, for rendering axes.
    pub fn label(&self, i: usize) -> String {
        match self {
            BucketSpec::Numeric { .. } => {
                let (a, b) = self.numeric_bounds(i).expect("index in range");
                format!("[{a:.4}, {b:.4})")
            }
            BucketSpec::Strings { boundaries } => boundaries[i].to_string(),
        }
    }
}

impl Wire for BucketSpec {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            BucketSpec::Numeric { lo, hi, count } => {
                w.put_u8(0);
                w.put_f64(*lo);
                w.put_f64(*hi);
                w.put_varint(*count as u64);
            }
            BucketSpec::Strings { boundaries } => {
                w.put_u8(1);
                w.put_varint(boundaries.len() as u64);
                for b in boundaries {
                    w.put_str(b);
                }
            }
        }
    }

    fn decode(r: &mut WireReader) -> WireResult<Self> {
        match r.get_u8()? {
            0 => {
                let lo = r.get_f64()?;
                let hi = r.get_f64()?;
                let count = r.get_len("bucket count")?;
                Ok(BucketSpec::Numeric { lo, hi, count })
            }
            1 => {
                let n = r.get_len("boundaries")?;
                let mut boundaries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    boundaries.push(Arc::from(r.get_str()?.as_str()));
                }
                Ok(BucketSpec::Strings { boundaries })
            }
            tag => Err(WireError::BadTag {
                context: "BucketSpec",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_bucketing_covers_range() {
        let b = BucketSpec::numeric(0.0, 100.0, 10);
        assert_eq!(b.index_of_f64(0.0), Some(0));
        assert_eq!(b.index_of_f64(9.999), Some(0));
        assert_eq!(b.index_of_f64(10.0), Some(1));
        assert_eq!(b.index_of_f64(99.999), Some(9));
        assert_eq!(b.index_of_f64(100.0), None, "hi is exclusive");
        assert_eq!(b.index_of_f64(-0.001), None);
    }

    #[test]
    fn numeric_rounding_never_overflows_last_bucket() {
        // A value infinitesimally below hi must land in the last bucket even
        // with FP rounding.
        let b = BucketSpec::numeric(0.0, 0.3, 3);
        let v = 0.3 - f64::EPSILON;
        assert_eq!(b.index_of_f64(v), Some(2));
    }

    #[test]
    fn numeric_bounds_partition_the_range() {
        let b = BucketSpec::numeric(-10.0, 10.0, 4);
        let (l0, h0) = b.numeric_bounds(0).unwrap();
        let (l3, h3) = b.numeric_bounds(3).unwrap();
        assert_eq!(l0, -10.0);
        assert_eq!(h0, -5.0);
        assert_eq!(l3, 5.0);
        assert_eq!(h3, 10.0);
        assert!(b.numeric_bounds(4).is_none());
    }

    #[test]
    fn string_bucketing_by_boundaries() {
        let b = BucketSpec::strings(vec!["a".into(), "g".into(), "n".into(), "t".into()]);
        assert_eq!(b.count(), 4);
        assert_eq!(b.index_of_str("a"), Some(0));
        assert_eq!(b.index_of_str("apple"), Some(0));
        assert_eq!(b.index_of_str("golf"), Some(1));
        assert_eq!(b.index_of_str("n"), Some(2));
        assert_eq!(b.index_of_str("zebra"), Some(3), "last bucket open above");
        assert_eq!(b.index_of_str("Z"), None, "below first boundary");
    }

    #[test]
    fn single_value_buckets_for_small_domains() {
        // Fewer than 50 distinct values: one bucket per value (App. B.1).
        let b = BucketSpec::strings(vec!["AA".into(), "DL".into(), "UA".into()]);
        assert_eq!(b.index_of_str("DL"), Some(1));
        assert_eq!(b.index_of_str("DLX"), Some(1), "range semantics");
    }

    #[test]
    fn cross_type_queries_return_none() {
        let n = BucketSpec::numeric(0.0, 1.0, 2);
        assert_eq!(n.index_of_str("x"), None);
        let s = BucketSpec::strings(vec!["a".into()]);
        assert_eq!(s.index_of_f64(0.5), None);
    }

    #[test]
    fn labels() {
        let n = BucketSpec::numeric(0.0, 10.0, 2);
        assert!(n.label(0).starts_with('['));
        let s = BucketSpec::strings(vec!["alpha".into()]);
        assert_eq!(s.label(0), "alpha");
    }

    #[test]
    fn wire_roundtrip() {
        for spec in [
            BucketSpec::numeric(-1.5, 9.25, 40),
            BucketSpec::strings(vec!["a".into(), "m".into()]),
        ] {
            let got = BucketSpec::from_bytes(spec.to_bytes()).unwrap();
            assert_eq!(got, spec);
        }
    }

    #[test]
    #[should_panic(expected = "empty bucket range")]
    fn invalid_numeric_range_panics() {
        let _ = BucketSpec::numeric(1.0, 1.0, 5);
    }
}
