//! Exact row/missing counting — the simplest mergeable summary.
//!
//! Used by the preparation phase of every visualization (paper §5.3: the
//! first execution tree "computes data-wide parameters such as the size ...
//! of the data set").
//!
//! Count is the degenerate consumer of the block ABI: it needs only the
//! frames' selection and validity *words*, never the value lanes, so
//! [`count_missing`] runs pure word-AND popcounts (one per 64 rows) and
//! touches no column data at all.

use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{count_missing, Selection};
use hillview_columnar::{FrameFilter, Predicate};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Counts present and missing rows, optionally of one column.
#[derive(Debug, Clone)]
pub struct CountSketch {
    /// Column whose missing values are counted; `None` counts rows only.
    pub column: Option<Arc<str>>,
}

impl CountSketch {
    /// Count rows of the whole table.
    pub fn rows() -> Self {
        CountSketch { column: None }
    }

    /// Count rows and missing values of one column.
    pub fn of_column(name: &str) -> Self {
        CountSketch {
            column: Some(Arc::from(name)),
        }
    }
}

/// Result of a [`CountSketch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountSummary {
    /// Rows present in the view (including ones missing in the column).
    pub rows: u64,
    /// Rows whose tracked column is missing.
    pub missing: u64,
}

impl Summary for CountSummary {
    fn merge(&self, other: &Self) -> Self {
        CountSummary {
            rows: self.rows + other.rows,
            missing: self.missing + other.missing,
        }
    }
}

impl Wire for CountSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.rows);
        w.put_varint(self.missing);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        Ok(CountSummary {
            rows: r.get_varint()?,
            missing: r.get_varint()?,
        })
    }
}

impl Sketch for CountSketch {
    type Summary = CountSummary;

    fn name(&self) -> &'static str {
        "count"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<CountSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<CountSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<CountSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<CountSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> CountSummary {
        CountSummary::default()
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        // Exact counts: pure function of data + membership.
        Some(format!("{:?}", self.column).into_bytes())
    }
}

impl CountSketch {
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        _seed: u64,
    ) -> SketchResult<CountSummary> {
        let base = crate::view::bounded_selection(view, &None, bounds);
        match filter {
            None => {
                let rows = base.count() as u64;
                let missing = match &self.column {
                    None => 0,
                    Some(name) => {
                        let col = view.table().column_by_name(name)?;
                        // Word-AND popcounts of membership × null mask: no
                        // column data is touched at all.
                        count_missing(&base, col.null_bitmap())
                    }
                };
                Ok(CountSummary { rows, missing })
            }
            Some(pred) => {
                // Fused: the predicate evaluates per 64-row frame while the
                // selection streams — one pass, no membership materialized.
                // The filter is single-pass, so the row count is read back
                // from it *after* the scan instead of a pre-scan count().
                let ff = RefCell::new(FrameFilter::compile(pred, view.table())?);
                let sel = Selection::Filtered {
                    base: &base,
                    filter: &ff,
                };
                let mut missing = 0;
                let nulls = match &self.column {
                    None => None,
                    Some(name) => view.table().column_by_name(name)?.null_bitmap(),
                };
                match nulls {
                    Some(_) => missing = count_missing(&sel, nulls),
                    // `count_missing` short-circuits on a null-free column
                    // without consuming the chunks, so drain explicitly to
                    // drive the predicate over every frame.
                    None => sel.chunks().for_each(drop),
                }
                let rows = ff.borrow().matched();
                Ok(CountSummary { rows, missing })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view() -> TableView {
        let t = Table::builder()
            .column(
                "D",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([
                    Some(1.0),
                    None,
                    Some(3.0),
                    None,
                    Some(5.0),
                ])),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn counts_rows_and_missing() {
        let s = CountSketch::of_column("D");
        let sum = s.summarize(&view(), 0).unwrap();
        assert_eq!(sum.rows, 5);
        assert_eq!(sum.missing, 2);
    }

    #[test]
    fn row_only_count() {
        let s = CountSketch::rows();
        let sum = s.summarize(&view(), 0).unwrap();
        assert_eq!(
            sum,
            CountSummary {
                rows: 5,
                missing: 0
            }
        );
    }

    #[test]
    fn respects_membership() {
        let v = view();
        let v = TableView::with_members(
            v.table().clone(),
            Arc::new(MembershipSet::from_rows(vec![0, 1], 5)),
        );
        let sum = CountSketch::of_column("D").summarize(&v, 0).unwrap();
        assert_eq!(
            sum,
            CountSummary {
                rows: 2,
                missing: 1
            }
        );
    }

    #[test]
    fn merge_adds_and_identity_is_unit() {
        let s = CountSketch::of_column("D");
        let a = CountSummary {
            rows: 3,
            missing: 1,
        };
        let b = CountSummary {
            rows: 2,
            missing: 1,
        };
        assert_eq!(
            a.merge(&b),
            CountSummary {
                rows: 5,
                missing: 2
            }
        );
        assert_eq!(a.merge(&s.identity()), a);
    }

    #[test]
    fn unknown_column_errors() {
        assert!(CountSketch::of_column("X").summarize(&view(), 0).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let s = CountSummary {
            rows: 7,
            missing: 2,
        };
        assert_eq!(CountSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
