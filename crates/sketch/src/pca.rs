//! Principal component analysis via a sampled correlation-matrix sketch.
//!
//! Paper App. B.3: *"PCA can summarize M numeric columns into K<M columns,
//! by projecting the M×N matrix ... along the eigen vectors of the M×M
//! correlation matrix. This matrix can be efficiently computed by a
//! sampling-based sketch."* The sketch accumulates per-column sums and
//! pairwise product sums — a classic mergeable summary — and the root runs
//! the Jacobi eigensolver on the assembled correlation matrix.

use crate::eigen::{jacobi_eigen, Eigen, SymMatrix};
use crate::traits::{Sketch, SketchError, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::scan::{scan_rows, Selection};
use hillview_columnar::{FrameFilter, Predicate};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Correlation-matrix sketch over M numeric columns.
#[derive(Debug, Clone)]
pub struct PcaSketch {
    /// The numeric columns to correlate.
    pub columns: Vec<Arc<str>>,
    /// Row sampling rate (`>= 1.0` scans everything).
    pub rate: f64,
}

impl PcaSketch {
    /// PCA over the named columns at the given sampling rate.
    pub fn new(columns: &[&str], rate: f64) -> Self {
        PcaSketch {
            columns: columns.iter().map(|c| Arc::from(*c)).collect(),
            rate,
        }
    }
}

/// Accumulated sums for the correlation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaSummary {
    /// Number of columns M.
    pub m: usize,
    /// Rows where *all* M values were present (rows with any missing value
    /// are skipped, as in standard complete-case PCA).
    pub count: u64,
    /// Σ xᵢ per column.
    pub sums: Vec<f64>,
    /// Upper-triangle (including diagonal) of Σ xᵢxⱼ, row-major.
    pub prods: Vec<f64>,
}

impl PcaSummary {
    fn zero(m: usize) -> Self {
        PcaSummary {
            m,
            count: 0,
            sums: vec![0.0; m],
            prods: vec![0.0; m * (m + 1) / 2],
        }
    }

    #[inline]
    fn tri_index(m: usize, i: usize, j: usize) -> usize {
        // i <= j; row-major upper triangle.
        debug_assert!(i <= j && j < m);
        i * m - i * (i + 1) / 2 + j
    }

    /// Assemble the covariance matrix (population covariance).
    pub fn covariance(&self) -> Option<SymMatrix> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mut cov = SymMatrix::zeros(self.m);
        for i in 0..self.m {
            for j in i..self.m {
                let eij = self.prods[Self::tri_index(self.m, i, j)] / n;
                let c = eij - (self.sums[i] / n) * (self.sums[j] / n);
                cov.set(i, j, c);
            }
        }
        Some(cov)
    }

    /// Assemble the correlation matrix (unit diagonal); zero-variance
    /// columns correlate 0 with everything.
    pub fn correlation(&self) -> Option<SymMatrix> {
        let cov = self.covariance()?;
        let m = self.m;
        let sd: Vec<f64> = (0..m).map(|i| cov.get(i, i).max(0.0).sqrt()).collect();
        let mut corr = SymMatrix::zeros(m);
        for i in 0..m {
            corr.set(i, i, 1.0);
            for j in (i + 1)..m {
                let denom = sd[i] * sd[j];
                let r = if denom > 0.0 {
                    (cov.get(i, j) / denom).clamp(-1.0, 1.0)
                } else {
                    0.0
                };
                corr.set(i, j, r);
            }
        }
        Some(corr)
    }

    /// Eigendecomposition of the correlation matrix: the principal
    /// components, strongest first.
    pub fn principal_components(&self) -> Option<Eigen> {
        Some(jacobi_eigen(&self.correlation()?))
    }
}

impl Summary for PcaSummary {
    fn merge(&self, other: &Self) -> Self {
        debug_assert_eq!(self.m, other.m);
        PcaSummary {
            m: self.m,
            count: self.count + other.count,
            sums: self
                .sums
                .iter()
                .zip(&other.sums)
                .map(|(a, b)| a + b)
                .collect(),
            prods: self
                .prods
                .iter()
                .zip(&other.prods)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Wire for PcaSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.m as u64);
        w.put_varint(self.count);
        self.sums.encode(w);
        self.prods.encode(w);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        Ok(PcaSummary {
            m: r.get_len("pca m")?,
            count: r.get_varint()?,
            sums: Vec::<f64>::decode(r)?,
            prods: Vec::<f64>::decode(r)?,
        })
    }
}

impl Sketch for PcaSketch {
    type Summary = PcaSummary;

    fn name(&self) -> &'static str {
        "pca"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<PcaSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<PcaSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<PcaSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<PcaSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> PcaSummary {
        PcaSummary::zero(self.columns.len())
    }
}

impl PcaSketch {
    /// The shared scan body; the complete-case count folds exactly and the
    /// floating-point sums fold deterministically in range order (fixed
    /// split plan, fixed fold order).
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        seed: u64,
    ) -> SketchResult<PcaSummary> {
        // Sampled + filtered: the sample must be drawn from the *filtered*
        // membership to match two-pass execution, so fall back to the
        // materialized path.
        if self.rate < 1.0 {
            if let Some(pred) = filter {
                let narrowed = crate::view::filtered_view(view, pred)?;
                return self.summarize_bounded(&narrowed, bounds, None, seed);
            }
        }
        let table = view.table();
        let m = self.columns.len();
        if m == 0 {
            return Err(SketchError::BadConfig("PCA over zero columns".into()));
        }
        let cols: Vec<&hillview_columnar::Column> = self
            .columns
            .iter()
            .map(|c| table.column_by_name(c))
            .collect::<Result<_, _>>()?;
        for (name, c) in self.columns.iter().zip(&cols) {
            if !c.kind().is_numeric() {
                return Err(SketchError::BadConfig(format!(
                    "PCA requires numeric columns; {} is {}",
                    name,
                    c.kind()
                )));
            }
        }
        let mut out = PcaSummary::zero(m);
        let mut vals = vec![0.0f64; m];
        let tally = |row: usize, out: &mut PcaSummary, vals: &mut [f64]| {
            for (k, c) in cols.iter().enumerate() {
                match c.as_f64(row) {
                    Some(v) => vals[k] = v,
                    None => return, // complete-case: skip the row
                }
            }
            out.count += 1;
            let mut t = 0;
            for i in 0..m {
                out.sums[i] += vals[i];
                for j in i..m {
                    out.prods[t] += vals[i] * vals[j];
                    t += 1;
                }
            }
        };
        // Chunked row enumeration, streaming or over a pre-drawn sample
        // clipped to the bounds; sums accumulate in ascending row order
        // either way, bit-identical to the per-row reference.
        let sampled = (self.rate < 1.0).then(|| view.sample_rows(self.rate, seed));
        let base = crate::view::bounded_selection(view, &sampled, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        scan_rows(&sel, |row| tally(row, &mut out, &mut vals));
        Ok(out)
    }

    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, seed: u64) -> SketchResult<PcaSummary> {
        let table = view.table();
        let m = self.columns.len();
        if m == 0 {
            return Err(SketchError::BadConfig("PCA over zero columns".into()));
        }
        let cols: Vec<&hillview_columnar::Column> = self
            .columns
            .iter()
            .map(|c| table.column_by_name(c))
            .collect::<Result<_, _>>()?;
        for (name, c) in self.columns.iter().zip(&cols) {
            if !c.kind().is_numeric() {
                return Err(SketchError::BadConfig(format!(
                    "PCA requires numeric columns; {} is {}",
                    name,
                    c.kind()
                )));
            }
        }
        let mut out = PcaSummary::zero(m);
        let mut vals = vec![0.0f64; m];
        let tally = |row: usize, out: &mut PcaSummary, vals: &mut [f64]| {
            for (k, c) in cols.iter().enumerate() {
                match c.as_f64(row) {
                    Some(v) => vals[k] = v,
                    None => return, // complete-case: skip the row
                }
            }
            out.count += 1;
            let mut t = 0;
            for i in 0..m {
                out.sums[i] += vals[i];
                for j in i..m {
                    out.prods[t] += vals[i] * vals[j];
                    t += 1;
                }
            }
        };
        if self.rate >= 1.0 {
            for row in view.iter_rows() {
                tally(row, &mut out, &mut vals);
            }
        } else {
            for &row in view.sample_rows(self.rate, seed).iter() {
                tally(row as usize, &mut out, &mut vals);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hillview_columnar::column::{Column, F64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Two strongly correlated columns plus one independent column.
    fn view(n: usize) -> TableView {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        let mut c = Vec::with_capacity(n);
        for _ in 0..n {
            let x: f64 = rng.gen_range(-1.0..1.0);
            a.push(Some(x));
            b.push(Some(2.0 * x + rng.gen_range(-0.01..0.01)));
            c.push(Some(rng.gen_range(-1.0..1.0)));
        }
        let t = Table::builder()
            .column(
                "A",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(a)),
            )
            .column(
                "B",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(b)),
            )
            .column(
                "C",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(c)),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    #[test]
    fn correlation_matrix_structure() {
        let s = PcaSketch::new(&["A", "B", "C"], 1.0)
            .summarize(&view(5000), 0)
            .unwrap();
        let corr = s.correlation().unwrap();
        assert!((corr.get(0, 0) - 1.0).abs() < 1e-9);
        assert!(corr.get(0, 1) > 0.99, "A and B strongly correlated");
        assert!(corr.get(0, 2).abs() < 0.1, "A and C independent");
    }

    #[test]
    fn principal_component_captures_correlated_pair() {
        let s = PcaSketch::new(&["A", "B", "C"], 1.0)
            .summarize(&view(5000), 0)
            .unwrap();
        let e = s.principal_components().unwrap();
        // First eigenvalue ≈ 2 (A+B collapse into one direction), second ≈ 1.
        assert!(e.values[0] > 1.8, "λ1 = {}", e.values[0]);
        assert!((e.values[1] - 1.0).abs() < 0.2, "λ2 = {}", e.values[1]);
        // First component loads on A and B, not C.
        let v = &e.vectors[0];
        assert!(v[0].abs() > 0.5 && v[1].abs() > 0.5 && v[2].abs() < 0.2);
    }

    #[test]
    fn merge_equals_whole() {
        let v = view(2000);
        let t = v.table().clone();
        let sk = PcaSketch::new(&["A", "B", "C"], 1.0);
        let whole = sk.summarize(&v, 0).unwrap();
        let a = sk
            .summarize(
                &TableView::with_members(
                    t.clone(),
                    Arc::new(MembershipSet::from_rows((0..1000).collect(), 2000)),
                ),
                0,
            )
            .unwrap();
        let b = sk
            .summarize(
                &TableView::with_members(
                    t,
                    Arc::new(MembershipSet::from_rows((1000..2000).collect(), 2000)),
                ),
                0,
            )
            .unwrap();
        let merged = a.merge(&b);
        assert_eq!(merged.count, whole.count);
        for (x, y) in merged.sums.iter().zip(&whole.sums) {
            assert!((x - y).abs() < 1e-6);
        }
        for (x, y) in merged.prods.iter().zip(&whole.prods) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn sampled_pca_approximates_exact() {
        let v = view(50_000);
        let exact = PcaSketch::new(&["A", "B", "C"], 1.0)
            .summarize(&v, 0)
            .unwrap();
        let sampled = PcaSketch::new(&["A", "B", "C"], 0.1)
            .summarize(&v, 7)
            .unwrap();
        let ce = exact.correlation().unwrap();
        let cs = sampled.correlation().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((ce.get(i, j) - cs.get(i, j)).abs() < 0.05, "corr[{i}][{j}]");
            }
        }
    }

    #[test]
    fn rows_with_missing_values_skipped() {
        let t = Table::builder()
            .column(
                "A",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([Some(1.0), None, Some(3.0)])),
            )
            .column(
                "B",
                ColumnKind::Double,
                Column::Double(F64Column::from_options([Some(2.0), Some(9.0), Some(6.0)])),
            )
            .build()
            .unwrap();
        let v = TableView::full(Arc::new(t));
        let s = PcaSketch::new(&["A", "B"], 1.0).summarize(&v, 0).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sums[0], 4.0);
    }

    #[test]
    fn config_errors() {
        let v = view(10);
        assert!(PcaSketch::new(&[], 1.0).summarize(&v, 0).is_err());
        assert!(PcaSketch::new(&["Nope"], 1.0).summarize(&v, 0).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let s = PcaSketch::new(&["A", "B"], 1.0)
            .summarize(&view(100), 0)
            .unwrap();
        assert_eq!(PcaSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }
}
