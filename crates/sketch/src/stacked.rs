//! Stacked-histogram kernel: X bucket totals plus (X, Y) subdivision counts.
//!
//! Paper §4.3 / App. B.1: *"The stacked histogram represents counts in two
//! ways: (1) the height of each histogram bar represents counts of bins of X
//! (like a histogram), (2) the height of a subdivision of a bar represents
//! counts of a bin of Y within the bin of X of that bar. ... The function
//! outputs a small vector of Bx + Bx×By bin counts."* The normalized variant
//! uses this same kernel without sampling (App. B.1).

use crate::bind::{BoundColumn, Cell, FrameCells};
use crate::buckets::BucketSpec;
use crate::traits::{Sketch, SketchResult, Summary};
use crate::view::TableView;
use hillview_columnar::{scan_frames, FrameEvent, FrameFilter, Predicate, Selection, BLOCK_ROWS};
use hillview_net::{Result as WireResult, Wire, WireReader, WireWriter};
use std::cell::RefCell;
use std::sync::Arc;

/// Stacked histogram sketch over an X column subdivided by a Y column.
#[derive(Debug, Clone)]
pub struct StackedHistogramSketch {
    /// Bar (X) column.
    pub col_x: Arc<str>,
    /// Subdivision (Y) column.
    pub col_y: Arc<str>,
    /// X bucket boundaries.
    pub buckets_x: BucketSpec,
    /// Y bucket boundaries (≤ ~20 colors; paper: "the human eye cannot
    /// distinguish many colors reliably").
    pub buckets_y: BucketSpec,
    /// Sampling rate; `>= 1.0` is exact. Normalized stacked histograms must
    /// use 1.0 (App. B.1).
    pub rate: f64,
}

impl StackedHistogramSketch {
    /// Exact stacked histogram.
    pub fn streaming(col_x: &str, col_y: &str, bx: BucketSpec, by: BucketSpec) -> Self {
        StackedHistogramSketch {
            col_x: Arc::from(col_x),
            col_y: Arc::from(col_y),
            buckets_x: bx,
            buckets_y: by,
            rate: 1.0,
        }
    }

    /// Sampled stacked histogram.
    pub fn sampled(col_x: &str, col_y: &str, bx: BucketSpec, by: BucketSpec, rate: f64) -> Self {
        StackedHistogramSketch {
            rate,
            ..Self::streaming(col_x, col_y, bx, by)
        }
    }
}

/// `Bx` bar totals plus `Bx×By` subdivision counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StackedSummary {
    /// Number of X buckets.
    pub bx: usize,
    /// Number of Y buckets.
    pub by: usize,
    /// Per-bar totals (count of rows in the X bucket, any Y).
    pub x_counts: Vec<u64>,
    /// Subdivision counts, row-major by X.
    pub xy_counts: Vec<u64>,
    /// Rows with X missing.
    pub missing: u64,
    /// Rows with X out of range.
    pub out_of_range: u64,
    /// Rows inspected.
    pub rows_inspected: u64,
}

impl StackedSummary {
    /// Zero summary of the given shape.
    pub fn zero(bx: usize, by: usize) -> Self {
        StackedSummary {
            bx,
            by,
            x_counts: vec![0; bx],
            xy_counts: vec![0; bx * by],
            ..Default::default()
        }
    }

    /// Subdivision count for (x, y).
    pub fn get(&self, x: usize, y: usize) -> u64 {
        self.xy_counts[x * self.by + y]
    }
}

impl Summary for StackedSummary {
    fn merge(&self, other: &Self) -> Self {
        if self.bx == 0 && self.by == 0 {
            return other.clone();
        }
        if other.bx == 0 && other.by == 0 {
            return self.clone();
        }
        debug_assert_eq!((self.bx, self.by), (other.bx, other.by));
        StackedSummary {
            bx: self.bx,
            by: self.by,
            x_counts: add(&self.x_counts, &other.x_counts),
            xy_counts: add(&self.xy_counts, &other.xy_counts),
            missing: self.missing + other.missing,
            out_of_range: self.out_of_range + other.out_of_range,
            rows_inspected: self.rows_inspected + other.rows_inspected,
        }
    }
}

fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

impl Wire for StackedSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.bx as u64);
        w.put_varint(self.by as u64);
        for &c in &self.x_counts {
            w.put_varint(c);
        }
        for &c in &self.xy_counts {
            w.put_varint(c);
        }
        w.put_varint(self.missing);
        w.put_varint(self.out_of_range);
        w.put_varint(self.rows_inspected);
    }
    fn decode(r: &mut WireReader) -> WireResult<Self> {
        let bx = r.get_len("stacked bx")?;
        let by = r.get_len("stacked by")?;
        let mut x_counts = Vec::with_capacity(bx.min(4096));
        for _ in 0..bx {
            x_counts.push(r.get_varint()?);
        }
        let n = bx.checked_mul(by).ok_or(hillview_net::Error::BadLength {
            context: "stacked size",
            len: u64::MAX,
        })?;
        let mut xy_counts = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            xy_counts.push(r.get_varint()?);
        }
        Ok(StackedSummary {
            bx,
            by,
            x_counts,
            xy_counts,
            missing: r.get_varint()?,
            out_of_range: r.get_varint()?,
            rows_inspected: r.get_varint()?,
        })
    }
}

impl Sketch for StackedHistogramSketch {
    type Summary = StackedSummary;

    fn name(&self) -> &'static str {
        "stacked-histogram"
    }

    fn summarize(&self, view: &TableView, seed: u64) -> SketchResult<StackedSummary> {
        self.summarize_bounded(view, None, None, seed)
    }

    fn splittable(&self) -> bool {
        true
    }

    fn summarize_range(
        &self,
        view: &TableView,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<StackedSummary> {
        self.summarize_bounded(view, Some((lo, hi)), None, seed)
    }

    fn summarize_filtered(
        &self,
        view: &TableView,
        predicate: &Predicate,
        seed: u64,
    ) -> SketchResult<StackedSummary> {
        self.summarize_bounded(view, None, Some(predicate), seed)
    }

    fn summarize_filtered_range(
        &self,
        view: &TableView,
        predicate: &Predicate,
        lo: usize,
        hi: usize,
        seed: u64,
    ) -> SketchResult<StackedSummary> {
        self.summarize_bounded(view, Some((lo, hi)), Some(predicate), seed)
    }

    fn identity(&self) -> StackedSummary {
        StackedSummary::zero(self.buckets_x.count(), self.buckets_y.count())
    }

    fn cache_identity(&self) -> Option<Vec<u8>> {
        (self.rate >= 1.0).then(|| {
            format!(
                "{}|{}|{:?}|{:?}",
                self.col_x, self.col_y, self.buckets_x, self.buckets_y
            )
            .into_bytes()
        })
    }
}

impl StackedHistogramSketch {
    /// The shared scan body; bar and subdivision counts are integers, so
    /// split partials fold back to exactly the unsplit summary.
    fn summarize_bounded(
        &self,
        view: &TableView,
        bounds: Option<(usize, usize)>,
        filter: Option<&Predicate>,
        seed: u64,
    ) -> SketchResult<StackedSummary> {
        if let Some(pred) = filter {
            // Sampled sketches draw from the *filtered* membership, so they
            // take the two-pass path; exact ones fuse the predicate into the
            // frame stream below.
            if self.rate < 1.0 {
                let narrowed = crate::view::filtered_view(view, pred)?;
                return self.summarize_bounded(&narrowed, bounds, None, seed);
            }
        }
        let cx = view.table().column_by_name(&self.col_x)?;
        let cy = view.table().column_by_name(&self.col_y)?;
        let bound_x = BoundColumn::bind(cx, &self.buckets_x)?;
        let bound_y = BoundColumn::bind(cy, &self.buckets_y)?;
        let sampled = (self.rate < 1.0).then(|| view.sample_rows(self.rate, seed));
        let base = crate::view::bounded_selection(view, &sampled, bounds);
        let ff = match filter {
            Some(pred) => Some(RefCell::new(FrameFilter::compile(pred, view.table())?)),
            None => None,
        };
        let sel = match &ff {
            Some(f) => Selection::Filtered {
                base: &base,
                filter: f,
            },
            None => base,
        };
        let mut out = StackedSummary::zero(self.buckets_x.count(), self.buckets_y.count());
        if ff.is_none() {
            out.rows_inspected = base.count() as u64;
        }
        let width_y = out.by;
        // Dense selections stream as 64-row block frames of precomputed
        // bucket cells (see the heat-map kernel); sparse rows keep the
        // per-row binding probe.
        let mut fx = FrameCells::new(&bound_x, out.bx);
        let mut fy = FrameCells::new(&bound_y, out.by);
        let (x_out, x_miss) = (fx.out(), fx.miss());
        let y_out = fy.out();
        let mut xs = [0u32; BLOCK_ROWS];
        let mut ys = [0u32; BLOCK_ROWS];
        let tally_row = |out: &mut StackedSummary, row: usize| match bound_x.bucket(row) {
            Cell::Missing => out.missing += 1,
            Cell::Out => out.out_of_range += 1,
            Cell::In(x) => {
                out.x_counts[x] += 1;
                if let Cell::In(y) = bound_y.bucket(row) {
                    out.xy_counts[x * width_y + y] += 1;
                }
            }
        };
        scan_frames(&sel, |ev| match ev {
            // Mostly-selected frames amortize the full-frame cell
            // computations; sparser ones keep the per-row probe (see the
            // heat-map kernel).
            FrameEvent::Frame { base, len, word } if word.count_ones() as usize * 2 >= len => {
                fx.frame(base, len, &mut xs);
                fy.frame(base, len, &mut ys);
                let mut m = word;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let x = xs[k];
                    if x == x_miss {
                        out.missing += 1;
                    } else if x == x_out {
                        out.out_of_range += 1;
                    } else {
                        // The bar counts every row in the X bucket, even
                        // when Y is missing or out of range (paper: bar
                        // height is the X histogram); only in-range Y
                        // contributes a subdivision.
                        out.x_counts[x as usize] += 1;
                        if ys[k] < y_out {
                            out.xy_counts[x as usize * width_y + ys[k] as usize] += 1;
                        }
                    }
                }
            }
            FrameEvent::Frame { base, word, .. } => {
                let mut m = word;
                while m != 0 {
                    let k = m.trailing_zeros() as usize;
                    m &= m - 1;
                    tally_row(&mut out, base + k);
                }
            }
            FrameEvent::Row(row) => tally_row(&mut out, row),
        });
        if let Some(f) = &ff {
            out.rows_inspected = f.borrow().matched();
        }
        Ok(out)
    }
}

impl StackedHistogramSketch {
    /// Per-row reference implementation, kept for the scan-equivalence
    /// property tests. Must remain bit-identical to [`Sketch::summarize`].
    pub fn summarize_rowwise(&self, view: &TableView, seed: u64) -> SketchResult<StackedSummary> {
        let cx = view.table().column_by_name(&self.col_x)?;
        let cy = view.table().column_by_name(&self.col_y)?;
        let bound_x = BoundColumn::bind(cx, &self.buckets_x)?;
        let bound_y = BoundColumn::bind(cy, &self.buckets_y)?;
        let mut out = StackedSummary::zero(self.buckets_x.count(), self.buckets_y.count());
        let width_y = out.by;
        let mut tally = |row: usize| {
            out.rows_inspected += 1;
            match bound_x.bucket(row) {
                Cell::Missing => out.missing += 1,
                Cell::Out => out.out_of_range += 1,
                Cell::In(x) => {
                    out.x_counts[x] += 1;
                    if let Cell::In(y) = bound_y.bucket(row) {
                        out.xy_counts[x * width_y + y] += 1;
                    }
                }
            }
        };
        if self.rate >= 1.0 {
            for row in view.iter_rows() {
                tally(row);
            }
        } else {
            for &row in view.sample_rows(self.rate, seed).iter() {
                tally(row as usize);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::merge_law_holds;
    use hillview_columnar::column::{Column, DictColumn, I64Column};
    use hillview_columnar::{ColumnKind, MembershipSet, Table};

    fn view() -> TableView {
        let hours = [1i64, 1, 1, 8, 8, 8, 8, 1];
        let kinds = [
            Some("get"),
            Some("put"),
            Some("get"),
            Some("get"),
            None,
            Some("put"),
            Some("zzz-unbucketed"),
            Some("get"),
        ];
        let t = Table::builder()
            .column(
                "Hour",
                ColumnKind::Int,
                Column::Int(I64Column::from_options(hours.iter().map(|&h| Some(h)))),
            )
            .column(
                "Kind",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(kinds)),
            )
            .build()
            .unwrap();
        TableView::full(Arc::new(t))
    }

    fn sketch() -> StackedHistogramSketch {
        StackedHistogramSketch::streaming(
            "Hour",
            "Kind",
            BucketSpec::numeric(0.0, 10.0, 2),
            // Two Y buckets: get..put, put..(open); "zzz" lands in bucket 1.
            BucketSpec::strings(vec!["get".into(), "put".into()]),
        )
    }

    #[test]
    fn bar_totals_include_unsubdivided_rows() {
        let s = sketch().summarize(&view(), 0).unwrap();
        assert_eq!(s.x_counts, vec![4, 4]);
        // Bucket (0..5): rows 0,1,2,7 → get,put,get,get.
        assert_eq!(s.get(0, 0), 3);
        assert_eq!(s.get(0, 1), 1);
        // Bucket (5..10): get, missing, put, zzz → subdivisions 1 and 2; the
        // missing-Y row counts toward the bar but no subdivision.
        assert_eq!(s.get(1, 0), 1);
        assert_eq!(s.get(1, 1), 2, "put + zzz share the open last bucket");
        let subdivided: u64 = s.xy_counts.iter().sum();
        assert_eq!(subdivided, 7, "one row has missing Y");
    }

    #[test]
    fn merge_law_on_partitions() {
        let v = view();
        let t = v.table().clone();
        let parts = vec![
            TableView::with_members(
                t.clone(),
                Arc::new(MembershipSet::from_rows((0..3).collect(), 8)),
            ),
            TableView::with_members(t, Arc::new(MembershipSet::from_rows((3..8).collect(), 8))),
        ];
        assert!(merge_law_holds(&sketch(), &v, &parts, 0));
    }

    #[test]
    fn identity_is_unit() {
        let sk = sketch();
        let s = sk.summarize(&view(), 0).unwrap();
        assert_eq!(sk.identity().merge(&s), s);
        assert_eq!(s.merge(&sk.identity()), s);
    }

    #[test]
    fn wire_roundtrip() {
        let s = sketch().summarize(&view(), 0).unwrap();
        assert_eq!(StackedSummary::from_bytes(s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn summary_has_bx_plus_bxby_counts() {
        let s = sketch().summarize(&view(), 0).unwrap();
        assert_eq!(s.x_counts.len(), 2);
        assert_eq!(s.xy_counts.len(), 4);
    }
}
