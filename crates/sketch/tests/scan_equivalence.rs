//! Scan-equivalence property tests: every chunked kernel must produce
//! **bit-identical** summaries to its per-row reference implementation,
//! across random tables, membership representations (full / dense / sparse /
//! contiguous-range / empty), null densities from 0% to ~100%, and sampling
//! rates. This is the contract that lets the chunked scan layer replace the
//! per-row path wholesale.

use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{ColumnKind, MembershipSet, SortOrder, StrMatchKind, Table};
use hillview_sketch::bottomk::BottomKSketch;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::count::CountSketch;
use hillview_sketch::distinct::DistinctSketch;
use hillview_sketch::find::FindSketch;
use hillview_sketch::heatmap::HeatmapSketch;
use hillview_sketch::heavy::{MisraGriesSketch, SampledHeavyHittersSketch};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::nextk::NextKSketch;
use hillview_sketch::pca::PcaSketch;
use hillview_sketch::quantile::QuantileSketch;
use hillview_sketch::stacked::StackedHistogramSketch;
use hillview_sketch::traits::Sketch;
use hillview_sketch::TableView;
use proptest::prelude::*;
use std::sync::Arc;

const CATS: [&str; 6] = ["aa", "bb", "cc", "dd", "ee", "ff"];

/// Random mixed-type table. `null_p` drives the Double column's null
/// density anywhere from 0% to ~100%; the Int and Category columns carry
/// their own sparser null flags.
fn table_strategy() -> impl Strategy<Value = Table> {
    (
        0.0f64..1.1, // > 1.0 ⇒ fully-null Double column sometimes
        proptest::collection::vec(
            (
                (0.0f64..1.0, -50.0f64..150.0),
                (0.0f64..1.0, -100i64..100),
                (0.0f64..1.0, 0usize..6),
            ),
            1..300,
        ),
    )
        .prop_map(|(null_p, rows)| {
            Table::builder()
                .column(
                    "X",
                    ColumnKind::Double,
                    Column::Double(F64Column::from_options(
                        rows.iter().map(|r| (r.0 .0 >= null_p).then_some(r.0 .1)),
                    )),
                )
                .column(
                    "I",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        rows.iter().map(|r| (r.1 .0 >= 0.15).then_some(r.1 .1)),
                    )),
                )
                .column(
                    "C",
                    ColumnKind::Category,
                    Column::Cat(DictColumn::from_strings(
                        rows.iter().map(|r| (r.2 .0 >= 0.1).then(|| CATS[r.2 .1])),
                    )),
                )
                .build()
                .unwrap()
        })
}

/// Build a membership set of the requested shape over `n` rows. Covers
/// every representation the chunk iterator decomposes differently.
fn membership(kind: usize, raw: &[u32], cuts: (f64, f64), n: usize) -> MembershipSet {
    match kind {
        0 => MembershipSet::full(n),
        1 => MembershipSet::from_rows(Vec::new(), n),
        // Sparse-ish: arbitrary rows (representation picked by selectivity).
        2 => MembershipSet::from_rows(raw.iter().map(|r| r % n as u32).collect(), n),
        // Dense: ~70% of rows, which lands above the sparse threshold.
        3 => MembershipSet::from_rows(
            (0..n as u32)
                .filter(|r| r % 10 != 3 && r % 7 != 1)
                .collect(),
            n,
        ),
        // Contiguous range: exercises all-ones word coalescing.
        _ => {
            let a = ((cuts.0 * n as f64) as usize).min(n);
            let b = ((cuts.1 * n as f64) as usize).min(n);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            MembershipSet::from_rows((lo as u32..hi as u32).collect(), n)
        }
    }
}

fn num_spec() -> BucketSpec {
    BucketSpec::numeric(-50.0, 150.0, 17)
}

fn str_spec() -> BucketSpec {
    BucketSpec::strings(vec!["aa".into(), "cc".into(), "ee".into()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_numeric_streaming_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        for col in ["X", "I"] {
            let sk = HistogramSketch::streaming(col, num_spec());
            prop_assert_eq!(
                sk.summarize(&v, 0).unwrap(),
                sk.summarize_rowwise(&v, 0).unwrap()
            );
        }
    }

    #[test]
    fn histogram_sampled_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        rate in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = HistogramSketch::sampled("X", num_spec(), rate);
        prop_assert_eq!(
            sk.summarize(&v, seed).unwrap(),
            sk.summarize_rowwise(&v, seed).unwrap()
        );
    }

    #[test]
    fn histogram_string_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = HistogramSketch::streaming("C", str_spec());
        prop_assert_eq!(
            sk.summarize(&v, 0).unwrap(),
            sk.summarize_rowwise(&v, 0).unwrap()
        );
    }

    #[test]
    fn heatmap_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        rate in 0.3f64..1.2, // crosses the streaming/sampled boundary
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = HeatmapSketch::sampled("X", "C", num_spec(), str_spec(), rate);
        prop_assert_eq!(
            sk.summarize(&v, seed).unwrap(),
            sk.summarize_rowwise(&v, seed).unwrap()
        );
    }

    #[test]
    fn stacked_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = StackedHistogramSketch::streaming("I", "C", num_spec(), str_spec());
        prop_assert_eq!(
            sk.summarize(&v, 0).unwrap(),
            sk.summarize_rowwise(&v, 0).unwrap()
        );
    }

    /// Moments must match *bit for bit*: the chunked scan visits rows in
    /// the same order, so even floating-point power sums are identical.
    #[test]
    fn moments_match_reference_bitwise(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        for col in ["X", "I"] {
            let sk = MomentsSketch::new(col, 4);
            let chunked = sk.summarize(&v, 0).unwrap();
            let rowwise = sk.summarize_rowwise(&v, 0).unwrap();
            prop_assert_eq!(chunked.present, rowwise.present);
            prop_assert_eq!(chunked.missing, rowwise.missing);
            prop_assert_eq!(chunked.min, rowwise.min);
            prop_assert_eq!(chunked.max, rowwise.max);
            for (c, r) in chunked.sums.iter().zip(&rowwise.sums) {
                prop_assert!(
                    c.to_bits() == r.to_bits(),
                    "power sums differ bitwise: {c} vs {r}"
                );
            }
        }
    }

    #[test]
    fn bottomk_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = BottomKSketch::new("C", 8);
        prop_assert_eq!(
            sk.summarize(&v, 0).unwrap(),
            sk.summarize_rowwise(&v, 0).unwrap()
        );
    }

    #[test]
    fn nextk_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        k in 1usize..8,
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = NextKSketch::first_page(SortOrder::ascending(&["C", "I"]), k)
            .with_display(&["X"]);
        prop_assert_eq!(
            sk.summarize(&v, 0).unwrap(),
            sk.summarize_rowwise(&v, 0).unwrap()
        );
    }

    /// Misra-Gries is order-sensitive; chunked enumeration preserves row
    /// order, so the counter sets must agree exactly — including on the
    /// dictionary fast path.
    #[test]
    fn misra_gries_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        k in 1usize..6,
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        for col in ["C", "I"] {
            let sk = MisraGriesSketch::new(col, k);
            prop_assert_eq!(
                sk.summarize(&v, 0).unwrap(),
                sk.summarize_rowwise(&v, 0).unwrap()
            );
        }
    }

    #[test]
    fn sampled_heavy_hitters_match_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        rate in 0.05f64..1.2,
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        for col in ["C", "X"] {
            let sk = SampledHeavyHittersSketch::new(col, 4, rate);
            prop_assert_eq!(
                sk.summarize(&v, seed).unwrap(),
                sk.summarize_rowwise(&v, seed).unwrap()
            );
        }
    }

    /// Count's word-popcount missing tally vs a naive per-row filter.
    #[test]
    fn count_matches_naive(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let table = Arc::new(t);
        let v = TableView::with_members(table.clone(), Arc::new(membership(kind, &raw, cuts, n)));
        for col_name in ["X", "I", "C"] {
            let s = CountSketch::of_column(col_name).summarize(&v, 0).unwrap();
            let col = table.column_by_name(col_name).unwrap();
            let naive = v.iter_rows().filter(|&r| col.is_null(r)).count() as u64;
            prop_assert_eq!(s.missing, naive, "column {}", col_name);
            prop_assert_eq!(s.rows, v.len() as u64);
        }
    }

    /// HLL registers: the chunked dictionary fast path and the chunked
    /// generic path must build the identical register array.
    #[test]
    fn distinct_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        for col in ["X", "I", "C"] {
            let sk = DistinctSketch::new(col);
            prop_assert_eq!(
                sk.summarize(&v, 0).unwrap(),
                sk.summarize_rowwise(&v, 0).unwrap(),
                "column {}", col
            );
        }
    }

    /// Find-text: chunked row enumeration preserves the scan order the
    /// first-match and count logic depend on.
    #[test]
    fn find_matches_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        query in "[a-f]{1,2}",
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = FindSketch::new(
            "C",
            &query,
            StrMatchKind::Substring,
            SortOrder::ascending(&["I", "X"]),
        );
        prop_assert_eq!(
            sk.summarize(&v, 0).unwrap(),
            sk.summarize_rowwise(&v, 0).unwrap()
        );
    }

    /// PCA accumulates floating-point sums in row order, so the chunked
    /// path must match *bit for bit*, streaming and sampled.
    #[test]
    fn pca_matches_reference_bitwise(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        rate in 0.3f64..1.2, // crosses the streaming/sampled boundary
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let sk = PcaSketch::new(&["X", "I"], rate);
        let chunked = sk.summarize(&v, seed).unwrap();
        let rowwise = sk.summarize_rowwise(&v, seed).unwrap();
        prop_assert_eq!(chunked.count, rowwise.count);
        for (c, r) in chunked.sums.iter().zip(&rowwise.sums) {
            prop_assert!(c.to_bits() == r.to_bits(), "sums differ bitwise: {} vs {}", c, r);
        }
        for (c, r) in chunked.prods.iter().zip(&rowwise.prods) {
            prop_assert!(c.to_bits() == r.to_bits(), "prods differ bitwise: {} vs {}", c, r);
        }
    }

    /// The same kernel over the same logical data must produce identical
    /// results whichever physical encoding backs the integer column — the
    /// chunk decoder is invisible to kernels.
    #[test]
    fn kernels_agree_across_encodings(
        vals in proptest::collection::vec((0.0f64..1.0, -40i64..40), 1..300),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        use hillview_columnar::{I64Storage, NullMask};
        let n = vals.len();
        let data: Vec<i64> = vals.iter().map(|r| r.1).collect();
        let nulls = NullMask::from_flags(vals.iter().map(|r| r.0 < 0.15), n);
        let mut columns: Vec<I64Column> = vec![
            I64Column::plain(data.clone(), nulls.clone()),
        ];
        if let Some(s) = I64Storage::bit_packed_of(&data) {
            columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        if let Some(s) = I64Storage::run_length_of(&data) {
            columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        // Delta needs ascending data: a sorted copy of the same values,
        // compared between plain and delta storage.
        let mut ascending = data.clone();
        ascending.sort_unstable();
        let mut delta_columns: Vec<I64Column> =
            vec![I64Column::plain(ascending.clone(), nulls.clone())];
        if let Some(s) = I64Storage::delta_of(&ascending) {
            delta_columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        let members = Arc::new(membership(kind, &raw, cuts, n));
        let hist = HistogramSketch::streaming("V", num_spec());
        let moments = MomentsSketch::new("V", 3);
        for group in [columns, delta_columns] {
            let mut results = Vec::new();
            for col in group {
                let t = Table::builder()
                    .column("V", ColumnKind::Int, Column::Int(col))
                    .build()
                    .unwrap();
                let v = TableView::with_members(Arc::new(t), members.clone());
                let h = hist.summarize(&v, 0).unwrap();
                let m = moments.summarize(&v, 0).unwrap();
                results.push((h, m.present, m.missing, m.min, m.max,
                    m.sums.iter().map(|s| s.to_bits()).collect::<Vec<_>>()));
            }
            for r in &results[1..] {
                prop_assert_eq!(r, &results[0]);
            }
        }
    }

    /// Work-stealing split execution must be bit-identical to the serial
    /// per-partition summary for every kernel with an exact merge:
    /// recursively split at any grain, summarize each sub-range, fold in
    /// range order — same bytes as one unsplit pass. Covers split grain ×
    /// membership representations × null densities; sampled variants pin
    /// that partition-wide samples are clipped (not re-drawn) per range.
    #[test]
    fn split_execution_bit_identical_for_exact_kernels(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        grain in 1usize..96,
        rate in 0.2f64..1.2,
        seed in any::<u64>(),
    ) {
        use hillview_sketch::traits::split_law_holds;
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        prop_assert!(split_law_holds(
            &HistogramSketch::streaming("X", num_spec()), &v, grain, seed));
        prop_assert!(split_law_holds(
            &HistogramSketch::sampled("X", num_spec(), rate.min(0.95)), &v, grain, seed));
        prop_assert!(split_law_holds(
            &HistogramSketch::streaming("C", str_spec()), &v, grain, seed));
        prop_assert!(split_law_holds(
            &HeatmapSketch::sampled("X", "C", num_spec(), str_spec(), rate), &v, grain, seed));
        prop_assert!(split_law_holds(
            &StackedHistogramSketch::streaming("I", "C", num_spec(), str_spec()), &v, grain, seed));
        prop_assert!(split_law_holds(&CountSketch::of_column("X"), &v, grain, seed));
        prop_assert!(split_law_holds(&CountSketch::rows(), &v, grain, seed));
        prop_assert!(split_law_holds(&BottomKSketch::new("C", 8), &v, grain, seed));
        prop_assert!(split_law_holds(&DistinctSketch::new("I"), &v, grain, seed));
        prop_assert!(split_law_holds(
            &SampledHeavyHittersSketch::new("C", 4, rate), &v, grain, seed));
        prop_assert!(split_law_holds(
            &NextKSketch::first_page(SortOrder::ascending(&["C", "I"]), 5).with_display(&["X"]),
            &v, grain, seed));
        prop_assert!(split_law_holds(
            &FindSketch::new("C", "a", StrMatchKind::Substring, SortOrder::ascending(&["I", "X"])),
            &v, grain, seed));
        prop_assert!(split_law_holds(
            &hillview_sketch::range::RangeSketch::new("X"), &v, grain, seed));
        // Quantile below its cap is a pure concatenation in range order.
        prop_assert!(split_law_holds(
            &QuantileSketch::new(SortOrder::ascending(&["I", "X"]), 1.0, 100_000),
            &v, grain, seed));
    }

    /// Order-sensitive and floating-point kernels (Misra-Gries, moments,
    /// PCA): split execution is a *deterministic* function of (data,
    /// grain, seed) — the engine folds sub-ranges in range order — and at
    /// grain >= partition size it degenerates to exactly the serial
    /// summary. Aggregate invariants (totals, counts, min/max) match the
    /// serial pass at every grain.
    #[test]
    fn split_execution_deterministic_for_order_sensitive_kernels(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        grain in 1usize..96,
        k in 1usize..6,
    ) {
        use hillview_sketch::traits::summarize_split;
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));

        let mg = MisraGriesSketch::new("C", k);
        let serial = mg.summarize(&v, 0).unwrap();
        let split = summarize_split(&mg, &v, grain, 0).unwrap();
        let split2 = summarize_split(&mg, &v, grain, 0).unwrap();
        prop_assert_eq!(&split, &split2, "MG split fold is deterministic");
        prop_assert_eq!(split.total, serial.total);
        prop_assert!(split.counters.len() <= k);
        // Whole-partition grain degenerates to the serial pass.
        let whole = summarize_split(&mg, &v, n.max(1), 0).unwrap();
        prop_assert_eq!(&whole, &serial);

        let mo = MomentsSketch::new("X", 3);
        let serial = mo.summarize(&v, 0).unwrap();
        let split = summarize_split(&mo, &v, grain, 0).unwrap();
        prop_assert_eq!(split.present, serial.present);
        prop_assert_eq!(split.missing, serial.missing);
        prop_assert_eq!(split.min, serial.min);
        prop_assert_eq!(split.max, serial.max);
        for (s, w) in split.sums.iter().zip(&serial.sums) {
            let tol = 1e-9 * w.abs().max(1.0);
            prop_assert!((s - w).abs() <= tol, "sum {s} vs {w}");
        }
        let whole = summarize_split(&mo, &v, n.max(1), 0).unwrap();
        prop_assert_eq!(&whole, &serial);

        let pca = PcaSketch::new(&["X", "I"], 1.0);
        let serial = pca.summarize(&v, 0).unwrap();
        let split = summarize_split(&pca, &v, grain, 0).unwrap();
        prop_assert_eq!(split.count, serial.count);
        let whole = summarize_split(&pca, &v, n.max(1), 0).unwrap();
        prop_assert_eq!(&whole, &serial);
    }

    /// Split execution is invisible to the encoding layer: identical
    /// summaries whichever physical storage backs the column, at any
    /// grain — split boundaries land mid-word, mid-run, anywhere.
    #[test]
    fn split_agrees_across_encodings(
        vals in proptest::collection::vec((0.0f64..1.0, -40i64..40), 1..300),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        grain in 1usize..96,
    ) {
        use hillview_columnar::{I64Storage, NullMask};
        use hillview_sketch::traits::summarize_split;
        let n = vals.len();
        let data: Vec<i64> = vals.iter().map(|r| r.1).collect();
        let nulls = NullMask::from_flags(vals.iter().map(|r| r.0 < 0.15), n);
        let mut columns: Vec<I64Column> = vec![I64Column::plain(data.clone(), nulls.clone())];
        if let Some(s) = I64Storage::bit_packed_of(&data) {
            columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        if let Some(s) = I64Storage::run_length_of(&data) {
            columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        // Split boundaries land mid-block for delta storage too: compare
        // plain vs delta over a sorted copy of the same values.
        let mut ascending = data.clone();
        ascending.sort_unstable();
        let mut delta_columns: Vec<I64Column> =
            vec![I64Column::plain(ascending.clone(), nulls.clone())];
        if let Some(s) = I64Storage::delta_of(&ascending) {
            delta_columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        let members = Arc::new(membership(kind, &raw, cuts, n));
        let hist = HistogramSketch::streaming("V", num_spec());
        let mg = MisraGriesSketch::new("V", 4);
        for group in [columns, delta_columns] {
            let mut results = Vec::new();
            for col in group {
                let t = Table::builder()
                    .column("V", ColumnKind::Int, Column::Int(col))
                    .build()
                    .unwrap();
                let v = TableView::with_members(Arc::new(t), members.clone());
                let h = summarize_split(&hist, &v, grain, 0).unwrap();
                let m = summarize_split(&mg, &v, grain, 0).unwrap();
                results.push((h, m));
            }
            for r in &results[1..] {
                prop_assert_eq!(r, &results[0]);
            }
        }
    }

    /// With the `simd` feature on, every kernel's summary is byte-identical
    /// between the vector codegen and the forced-scalar fallback, across
    /// encodings × membership representations × null densities × sampling.
    /// (CI additionally runs the whole suite with the feature off; the
    /// fallback is the same code either way, so the two builds agree.)
    #[cfg(feature = "simd")]
    #[test]
    fn simd_on_off_summaries_byte_identical(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        rate in 0.3f64..1.2,
        seed in any::<u64>(),
    ) {
        use hillview_columnar::simd::set_force_scalar;
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let hist_x = HistogramSketch::streaming("X", num_spec());
        let hist_i = HistogramSketch::streaming("I", num_spec());
        let hist_s = HistogramSketch::sampled("X", num_spec(), rate.min(0.95));
        let hist_c = HistogramSketch::streaming("C", str_spec());
        let mom_x = MomentsSketch::new("X", 4);
        let mom_i = MomentsSketch::new("I", 4);
        let heat = HeatmapSketch::sampled("X", "C", num_spec(), str_spec(), rate);
        let stack = StackedHistogramSketch::streaming("I", "C", num_spec(), str_spec());
        let count = CountSketch::of_column("X");
        let hh = SampledHeavyHittersSketch::new("C", 4, rate);
        let run = |scalar: bool| {
            set_force_scalar(scalar);
            let mom_bits = |m: &hillview_sketch::moments::MomentsSummary| {
                (
                    m.present,
                    m.missing,
                    m.min.map(f64::to_bits),
                    m.max.map(f64::to_bits),
                    m.sums.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
                )
            };
            let out = (
                hist_x.summarize(&v, seed).unwrap(),
                hist_i.summarize(&v, seed).unwrap(),
                hist_s.summarize(&v, seed).unwrap(),
                hist_c.summarize(&v, seed).unwrap(),
                mom_bits(&mom_x.summarize(&v, seed).unwrap()),
                mom_bits(&mom_i.summarize(&v, seed).unwrap()),
                heat.summarize(&v, seed).unwrap(),
                stack.summarize(&v, seed).unwrap(),
                count.summarize(&v, seed).unwrap(),
                hh.summarize(&v, seed).unwrap(),
            );
            set_force_scalar(false);
            out
        };
        let fast = run(false);
        let slow = run(true);
        prop_assert_eq!(fast, slow);
    }

    /// Quantile keys: chunked row enumeration vs a naive per-row walk with
    /// the same down-sampling.
    #[test]
    fn quantile_matches_naive(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        cap in 1usize..64,
    ) {
        let n = t.num_rows();
        let table = Arc::new(t);
        let v = TableView::with_members(table.clone(), Arc::new(membership(kind, &raw, cuts, n)));
        let order = SortOrder::ascending(&["I", "X"]);
        let sk = QuantileSketch::new(order.clone(), 1.0, cap);
        let s = sk.summarize(&v, 0).unwrap();
        let resolved = order.resolve(&table).unwrap();
        let mut naive: Vec<_> = v.iter_rows().map(|r| resolved.key(&table, r)).collect();
        if naive.len() > cap {
            let stride = naive.len().div_ceil(cap);
            naive = naive.into_iter().step_by(stride).collect();
        }
        prop_assert_eq!(s.keys, naive);
        prop_assert_eq!(s.population, v.len() as u64);
    }
}
