//! Property tests for the sketch merge laws (paper §4.1).
//!
//! For every summary type: merge is commutative, associative, and has the
//! sketch identity as unit; and for exact (non-sampled) sketches,
//! `summarize(D1 ⊎ D2) = merge(summarize(D1), summarize(D2))` over random
//! data and random partition splits.

use hillview_columnar::column::{Column, DictColumn, F64Column};
use hillview_columnar::{ColumnKind, MembershipSet, SortOrder, StrMatchKind, Table};
use hillview_sketch::bottomk::BottomKSketch;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::count::CountSketch;
use hillview_sketch::distinct::DistinctSketch;
use hillview_sketch::find::FindSketch;
use hillview_sketch::heatmap::HeatmapSketch;
use hillview_sketch::heavy::{MisraGriesSketch, SampledHeavyHittersSketch};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::nextk::NextKSketch;
use hillview_sketch::pca::PcaSketch;
use hillview_sketch::quantile::QuantileSketch;
use hillview_sketch::range::RangeSketch;
use hillview_sketch::stacked::StackedHistogramSketch;
use hillview_sketch::traits::{Sketch, Summary};
use hillview_sketch::TableView;
use proptest::prelude::*;
use std::sync::Arc;

/// Relative-tolerance comparison for merged f64 accumulators: partitioning
/// regroups the additions, so sums agree to rounding, not bit-for-bit.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Random table: numeric column X in [0, 100) with nulls, category column C.
fn table_strategy() -> impl Strategy<Value = Table> {
    let rows = proptest::collection::vec(
        (
            proptest::option::weighted(0.9, 0.0f64..100.0),
            0usize..5usize,
        ),
        1..200,
    );
    rows.prop_map(|rows| {
        let cats = ["aa", "bb", "cc", "dd", "ee"];
        Table::builder()
            .column(
                "X",
                ColumnKind::Double,
                Column::Double(F64Column::from_options(rows.iter().map(|(x, _)| *x))),
            )
            .column(
                "C",
                ColumnKind::Category,
                Column::Cat(DictColumn::from_strings(
                    rows.iter().map(|(_, c)| Some(cats[*c])),
                )),
            )
            .build()
            .unwrap()
    })
}

/// Split `n` rows into three disjoint views by `split` percentages.
fn three_way_split(table: Arc<Table>, cut1: usize, cut2: usize) -> Vec<TableView> {
    let n = table.num_rows();
    let c1 = (cut1 % (n + 1)).min(n);
    let c2 = c1 + (cut2 % (n - c1 + 1));
    [(0..c1), (c1..c2), (c2..n)]
        .into_iter()
        .map(|r| {
            TableView::with_members(
                table.clone(),
                Arc::new(MembershipSet::from_rows(r.map(|i| i as u32).collect(), n)),
            )
        })
        .collect()
}

/// Assert the full merge-law battery for an exact sketch, returning the
/// error string on failure so proptest can shrink.
fn check_exact_sketch<S>(
    sketch: &S,
    table: Arc<Table>,
    cut1: usize,
    cut2: usize,
) -> Result<(), TestCaseError>
where
    S: Sketch,
    S::Summary: PartialEq + std::fmt::Debug,
{
    let whole = TableView::full(table.clone());
    let parts = three_way_split(table, cut1, cut2);
    let direct = sketch.summarize(&whole, 7).unwrap();
    let s: Vec<_> = parts
        .iter()
        .map(|p| sketch.summarize(p, 7).unwrap())
        .collect();
    // Mergeability.
    let merged = s[0].merge(&s[1]).merge(&s[2]);
    prop_assert_eq!(&merged, &direct, "summarize(⊎) == fold(merge)");
    // Commutativity & associativity.
    let ab_c = s[0].merge(&s[1]).merge(&s[2]);
    let a_bc = s[0].merge(&s[1].merge(&s[2]));
    prop_assert_eq!(&ab_c, &a_bc, "associative");
    let ba = s[1].merge(&s[0]);
    let ab = s[0].merge(&s[1]);
    prop_assert_eq!(&ba, &ab, "commutative");
    // Identity.
    let with_id = direct.merge(&sketch.identity());
    prop_assert_eq!(&with_id, &direct, "identity is unit");
    // Split law: recursive range-split execution (the engine's parallel
    // leaf plan, run serially) reproduces the whole-partition summary
    // bit-for-bit for exact sketches.
    let grain = (cut1 % 64) + 1;
    prop_assert!(
        hillview_sketch::traits::split_law_holds(sketch, &whole, grain, 7),
        "split law at grain {}",
        grain
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn count_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        check_exact_sketch(&CountSketch::of_column("X"), Arc::new(t), c1, c2)?;
    }

    #[test]
    fn range_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        check_exact_sketch(&RangeSketch::new("X"), Arc::new(t), c1, c2)?;
    }

    #[test]
    fn histogram_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let sk = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 13));
        check_exact_sketch(&sk, Arc::new(t), c1, c2)?;
    }

    #[test]
    fn string_histogram_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let sk = HistogramSketch::streaming(
            "C",
            BucketSpec::strings(vec!["aa".into(), "cc".into()]),
        );
        check_exact_sketch(&sk, Arc::new(t), c1, c2)?;
    }

    #[test]
    fn heatmap_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let sk = HeatmapSketch::streaming(
            "X",
            "C",
            BucketSpec::numeric(0.0, 100.0, 5),
            BucketSpec::strings(vec!["aa".into(), "cc".into(), "ee".into()]),
        );
        check_exact_sketch(&sk, Arc::new(t), c1, c2)?;
    }

    #[test]
    fn stacked_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let sk = StackedHistogramSketch::streaming(
            "X",
            "C",
            BucketSpec::numeric(0.0, 100.0, 4),
            BucketSpec::strings(vec!["aa".into(), "bb".into(), "cc".into()]),
        );
        check_exact_sketch(&sk, Arc::new(t), c1, c2)?;
    }

    #[test]
    fn hll_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        check_exact_sketch(&DistinctSketch::new("C"), Arc::new(t), c1, c2)?;
    }

    #[test]
    fn nextk_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let sk = NextKSketch::first_page(SortOrder::ascending(&["C", "X"]), 7);
        check_exact_sketch(&sk, Arc::new(t), c1, c2)?;
    }

    #[test]
    fn bottomk_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        check_exact_sketch(&BottomKSketch::new("C", 8), Arc::new(t), c1, c2)?;
    }

    #[test]
    fn find_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let sk = FindSketch::new(
            "C",
            "a",
            StrMatchKind::Substring,
            SortOrder::ascending(&["C", "X"]),
        );
        check_exact_sketch(&sk, Arc::new(t), c1, c2)?;
    }

    /// At rate 1.0 the sampled heavy-hitters sketch counts every row exactly
    /// and keeps all distinct values; both `summarize` and `merge` finish
    /// with the same (count desc, value asc) sort, so the summary is
    /// partition-invariant and the full exact battery applies.
    #[test]
    fn sampled_heavy_hitters_merge_laws(
        t in table_strategy(),
        c1 in 0usize..200,
        c2 in 0usize..200,
    ) {
        check_exact_sketch(&SampledHeavyHittersSketch::new("C", 4, 1.0), Arc::new(t), c1, c2)?;
    }

    /// Moments power sums are f64 additions regrouped by the partitioning:
    /// counts and extrema merge exactly, the sums to rounding. Commutativity
    /// and the identity unit stay bitwise (IEEE `a+b == b+a`, and the power
    /// sums of X ∈ [0, 100) are non-negative so `x + 0.0 == x`).
    #[test]
    fn moments_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let table = Arc::new(t);
        let sk = MomentsSketch::new("X", 4);
        let whole = TableView::full(table.clone());
        let parts = three_way_split(table, c1, c2);
        let direct = sk.summarize(&whole, 7).unwrap();
        let s: Vec<_> = parts.iter().map(|p| sk.summarize(p, 7).unwrap()).collect();
        let merged = s[0].merge(&s[1]).merge(&s[2]);
        prop_assert_eq!(merged.present, direct.present);
        prop_assert_eq!(merged.missing, direct.missing);
        prop_assert_eq!(merged.min, direct.min);
        prop_assert_eq!(merged.max, direct.max);
        for (m, d) in merged.sums.iter().zip(&direct.sums) {
            prop_assert!(close(*m, *d), "power sum {} vs {}", m, d);
        }
        let a_bc = s[0].merge(&s[1].merge(&s[2]));
        prop_assert_eq!(a_bc.present, merged.present);
        for (g, m) in a_bc.sums.iter().zip(&merged.sums) {
            prop_assert!(close(*g, *m), "regrouped power sum {} vs {}", g, m);
        }
        prop_assert_eq!(s[1].merge(&s[0]), s[0].merge(&s[1]), "commutative");
        prop_assert_eq!(direct.merge(&sk.identity()), direct, "identity is unit");
    }

    /// Complete-case PCA accumulators behave like the moments sums: exact
    /// counts, rounding-level Σx / Σxᵢxⱼ under regrouped partition merges.
    #[test]
    fn pca_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let table = Arc::new(t);
        let sk = PcaSketch::new(&["X"], 1.0);
        let whole = TableView::full(table.clone());
        let parts = three_way_split(table, c1, c2);
        let direct = sk.summarize(&whole, 7).unwrap();
        let s: Vec<_> = parts.iter().map(|p| sk.summarize(p, 7).unwrap()).collect();
        let merged = s[0].merge(&s[1]).merge(&s[2]);
        prop_assert_eq!(merged.m, direct.m);
        prop_assert_eq!(merged.count, direct.count);
        for (m, d) in merged.sums.iter().zip(&direct.sums) {
            prop_assert!(close(*m, *d), "column sum {} vs {}", m, d);
        }
        for (m, d) in merged.prods.iter().zip(&direct.prods) {
            prop_assert!(close(*m, *d), "co-moment {} vs {}", m, d);
        }
        prop_assert_eq!(s[1].merge(&s[0]), s[0].merge(&s[1]), "commutative");
        prop_assert_eq!(direct.merge(&sk.identity()), direct, "identity is unit");
    }

    /// At rate 1.0 with the cap above any generated table, the quantile
    /// sample is the whole population and merging only concatenates — so the
    /// merged key *multiset* must equal the direct one under any partition
    /// split, grouping, or operand order, even though the raw key order is
    /// concatenation-dependent.
    #[test]
    fn quantile_merge_laws(t in table_strategy(), c1 in 0usize..200, c2 in 0usize..200) {
        let table = Arc::new(t);
        let sk = QuantileSketch::new(SortOrder::ascending(&["C", "X"]), 1.0, 100_000);
        let whole = TableView::full(table.clone());
        let parts = three_way_split(table, c1, c2);
        let direct = sk.summarize(&whole, 7).unwrap();
        let s: Vec<_> = parts.iter().map(|p| sk.summarize(p, 7).unwrap()).collect();
        let sorted_keys = |sm: &hillview_sketch::quantile::QuantileSummary| {
            let mut keys = sm.keys.clone();
            keys.sort();
            keys
        };
        let merged = s[0].merge(&s[1]).merge(&s[2]);
        prop_assert_eq!(merged.population, direct.population);
        prop_assert_eq!(merged.cap, direct.cap);
        prop_assert_eq!(sorted_keys(&merged), sorted_keys(&direct), "key multiset");
        let a_bc = s[0].merge(&s[1].merge(&s[2]));
        prop_assert_eq!(a_bc.population, merged.population);
        prop_assert_eq!(sorted_keys(&a_bc), sorted_keys(&merged), "associative up to order");
        let ba = s[1].merge(&s[0]);
        let ab = s[0].merge(&s[1]);
        prop_assert_eq!(ba.population, ab.population);
        prop_assert_eq!(sorted_keys(&ba), sorted_keys(&ab), "commutative up to order");
        let with_id = direct.merge(&sk.identity());
        prop_assert_eq!(with_id.population, direct.population);
        prop_assert_eq!(sorted_keys(&with_id), sorted_keys(&direct), "identity is unit");
    }

    /// Misra-Gries is not exactly partition-invariant (the summary depends on
    /// arrival order), but the heavy-hitter *guarantee* must survive merging:
    /// any item with true frequency > total/k appears in the merged counters.
    #[test]
    fn misra_gries_guarantee_survives_merge(
        t in table_strategy(),
        c1 in 0usize..200,
        c2 in 0usize..200,
    ) {
        let table = Arc::new(t);
        let k = 3usize;
        let sk = MisraGriesSketch::new("C", k);
        let parts = three_way_split(table.clone(), c1, c2);
        let merged = parts
            .iter()
            .map(|p| sk.summarize(p, 0).unwrap())
            .fold(sk.identity(), |acc, s| acc.merge(&s));
        // Exact counts for comparison.
        let col = table.column_by_name("C").unwrap();
        let mut exact = std::collections::HashMap::new();
        for i in 0..table.num_rows() {
            *exact.entry(col.value(i).to_string()).or_insert(0u64) += 1;
        }
        let total = table.num_rows() as u64;
        for (v, count) in exact {
            if count > total / k as u64 {
                let found = merged
                    .counters
                    .iter()
                    .any(|(val, _)| val.to_string() == v);
                prop_assert!(found, "heavy item {} (count {}) missing", v, count);
            }
        }
    }

    /// Wire round-trips on randomly generated summaries.
    #[test]
    fn summaries_roundtrip_wire(t in table_strategy()) {
        use hillview_net::Wire;
        let v = TableView::full(Arc::new(t));
        let h = HistogramSketch::streaming("X", BucketSpec::numeric(0.0, 100.0, 9))
            .summarize(&v, 0)
            .unwrap();
        prop_assert_eq!(
            hillview_sketch::histogram::HistogramSummary::from_bytes(h.to_bytes()).unwrap(),
            h
        );
        let n = NextKSketch::first_page(SortOrder::ascending(&["X"]), 5)
            .summarize(&v, 0)
            .unwrap();
        prop_assert_eq!(
            hillview_sketch::nextk::NextKSummary::from_bytes(n.to_bytes()).unwrap(),
            n
        );
    }
}
