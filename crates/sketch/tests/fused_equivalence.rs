//! Fusion-law property tests: for every kernel, the fused filtered entry
//! points (`summarize_filtered` / `summarize_filtered_range`) must
//! reproduce the two-pass execution — materialize the predicate into a
//! membership set with `filter_members`, then sketch it — **bit for bit**,
//! across random tables, predicate shapes, membership representations,
//! null densities, split grains, and physical encodings. Because the
//! two-pass side is itself pinned to the per-row reference by
//! `scan_equivalence.rs`, these laws chain to `fused ≡ two-pass ≡ rowwise`.
//!
//! Float- and order-sensitive kernels (moments, PCA, Misra-Gries) are held
//! to the same bit-exact bar: the fused pass visits the surviving rows in
//! the same order the two-pass scan does, so even power sums agree to the
//! last bit. Split laws are checked over leaf ranges planned from the
//! *parent* membership — exactly how the engine plans fused leaves before
//! any filter has been materialized.

use hillview_columnar::column::{Column, DictColumn, F64Column, I64Column};
use hillview_columnar::{ColumnKind, MembershipSet, Predicate, SortOrder, StrMatchKind, Table};
use hillview_sketch::bottomk::BottomKSketch;
use hillview_sketch::buckets::BucketSpec;
use hillview_sketch::count::CountSketch;
use hillview_sketch::distinct::DistinctSketch;
use hillview_sketch::find::FindSketch;
use hillview_sketch::heatmap::HeatmapSketch;
use hillview_sketch::heavy::{MisraGriesSketch, SampledHeavyHittersSketch};
use hillview_sketch::histogram::HistogramSketch;
use hillview_sketch::moments::MomentsSketch;
use hillview_sketch::nextk::NextKSketch;
use hillview_sketch::pca::PcaSketch;
use hillview_sketch::quantile::QuantileSketch;
use hillview_sketch::range::RangeSketch;
use hillview_sketch::stacked::StackedHistogramSketch;
use hillview_sketch::traits::{fused_law_holds, summarize_filtered_split, Sketch};
#[cfg(feature = "simd")]
use hillview_sketch::view::filtered_view;
use hillview_sketch::TableView;
use proptest::prelude::*;
use std::sync::Arc;

const CATS: [&str; 6] = ["aa", "bb", "cc", "dd", "ee", "ff"];

/// Random mixed-type table (same shape as `scan_equivalence.rs`): `null_p`
/// drives the Double column's null density from 0% to ~100%.
fn table_strategy() -> impl Strategy<Value = Table> {
    (
        0.0f64..1.1,
        proptest::collection::vec(
            (
                (0.0f64..1.0, -50.0f64..150.0),
                (0.0f64..1.0, -100i64..100),
                (0.0f64..1.0, 0usize..6),
            ),
            1..300,
        ),
    )
        .prop_map(|(null_p, rows)| {
            Table::builder()
                .column(
                    "X",
                    ColumnKind::Double,
                    Column::Double(F64Column::from_options(
                        rows.iter().map(|r| (r.0 .0 >= null_p).then_some(r.0 .1)),
                    )),
                )
                .column(
                    "I",
                    ColumnKind::Int,
                    Column::Int(I64Column::from_options(
                        rows.iter().map(|r| (r.1 .0 >= 0.15).then_some(r.1 .1)),
                    )),
                )
                .column(
                    "C",
                    ColumnKind::Category,
                    Column::Cat(DictColumn::from_strings(
                        rows.iter().map(|r| (r.2 .0 >= 0.1).then(|| CATS[r.2 .1])),
                    )),
                )
                .build()
                .unwrap()
        })
}

/// Membership of the requested representation (full / empty / sparse /
/// dense / contiguous range) over `n` rows.
fn membership(kind: usize, raw: &[u32], cuts: (f64, f64), n: usize) -> MembershipSet {
    match kind {
        0 => MembershipSet::full(n),
        1 => MembershipSet::from_rows(Vec::new(), n),
        2 => MembershipSet::from_rows(raw.iter().map(|r| r % n as u32).collect(), n),
        3 => MembershipSet::from_rows(
            (0..n as u32)
                .filter(|r| r % 10 != 3 && r % 7 != 1)
                .collect(),
            n,
        ),
        _ => {
            let a = ((cuts.0 * n as f64) as usize).min(n);
            let b = ((cuts.1 * n as f64) as usize).min(n);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            MembershipSet::from_rows((lo as u32..hi as u32).collect(), n)
        }
    }
}

/// Predicate family covering every leaf the block compiler special-cases:
/// numeric range (zone-map skippable), integer range, dictionary equality
/// (code zone maps), text match, the exact-complement `Not`, and an `And`
/// that makes the second leaf see a partial selection word.
fn predicate(pick: usize, bounds: (f64, f64), cat: usize) -> Predicate {
    let (a, b) = bounds;
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    match pick {
        0 => Predicate::range("X", lo, hi),
        1 => Predicate::range("I", lo, hi),
        2 => Predicate::equals("C", CATS[cat]),
        3 => Predicate::range("X", lo, hi).not(),
        4 => Predicate::range("X", lo, hi).and(Predicate::equals("C", CATS[cat])),
        _ => Predicate::str_match("C", "a", StrMatchKind::Substring, false),
    }
}

fn num_spec() -> BucketSpec {
    BucketSpec::numeric(-50.0, 150.0, 17)
}

fn str_spec() -> BucketSpec {
    BucketSpec::strings(vec!["aa".into(), "cc".into(), "ee".into()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fusion law, all 14 kernels: fused ≡ two-pass, whole-partition
    /// and per parent-planned leaf range. `fused_law_holds` compares the
    /// range summaries leaf by leaf, so this also pins the fused split
    /// plumbing the cluster's work-stealing leaves run on.
    #[test]
    fn fused_law_all_kernels(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        pick in 0usize..6,
        bounds in (-60.0f64..160.0, -60.0f64..160.0),
        cat in 0usize..6,
        grain in 1usize..96,
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let p = predicate(pick, bounds, cat);
        macro_rules! law {
            ($sk:expr) => {
                prop_assert!(
                    fused_law_holds(&$sk, &v, &p, grain, seed),
                    "fusion law failed for {} under {:?}", $sk.name(), p
                );
            };
        }
        law!(CountSketch::rows());
        law!(CountSketch::of_column("X"));
        law!(HistogramSketch::streaming("X", num_spec()));
        law!(HistogramSketch::streaming("C", str_spec()));
        law!(HeatmapSketch::sampled("X", "C", num_spec(), str_spec(), 1.0));
        law!(StackedHistogramSketch::streaming("I", "C", num_spec(), str_spec()));
        law!(MomentsSketch::new("X", 4));
        law!(BottomKSketch::new("C", 8));
        law!(NextKSketch::first_page(SortOrder::ascending(&["C", "I"]), 5).with_display(&["X"]));
        law!(MisraGriesSketch::new("C", 4));
        law!(SampledHeavyHittersSketch::new("C", 4, 1.0));
        law!(DistinctSketch::new("I"));
        law!(FindSketch::new("C", "a", StrMatchKind::Substring, SortOrder::ascending(&["I", "X"])));
        law!(PcaSketch::new(&["X", "I"], 1.0));
        law!(RangeSketch::new("X"));
        law!(QuantileSketch::new(SortOrder::ascending(&["I", "X"]), 1.0, 100_000));
    }

    /// Sampled kernels that fuse by falling back to the two-pass filtered
    /// view — samples must draw from the *filtered* membership — keep the
    /// law bit-for-bit at every rate. (Quantile and sampled heavy hitters
    /// now sample the filtered stream directly; their contract is pinned by
    /// `fused_sampling_matches_hash_threshold_reference` below instead.)
    #[test]
    fn fused_law_sampled_kernels(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        pick in 0usize..6,
        bounds in (-60.0f64..160.0, -60.0f64..160.0),
        cat in 0usize..6,
        grain in 1usize..96,
        rate in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let p = predicate(pick, bounds, cat);
        prop_assert!(fused_law_holds(
            &HistogramSketch::sampled("X", num_spec(), rate), &v, &p, grain, seed));
        prop_assert!(fused_law_holds(
            &HeatmapSketch::sampled("X", "C", num_spec(), str_spec(), rate), &v, &p, grain, seed));
        prop_assert!(fused_law_holds(
            &PcaSketch::new(&["X", "I"], rate), &v, &p, grain, seed));
    }

    /// The fused-sampling distribution contract: under a fused plan,
    /// quantile and sampled heavy hitters draw the sample from the filtered
    /// stream with the stateless hash-threshold test
    /// [`hillview_columnar::row_sampled`]. The sampled row *set* is pinned
    /// exactly — it must equal the rowwise-filtered membership intersected
    /// with `row_sampled` — which both fixes the per-row inclusion
    /// probability (uniform at `rate`, independent across rows) and makes
    /// the sample a pure function of `(membership, predicate, rate, seed)`.
    /// Tiling is pinned too: leaf ranges fold to the unsplit summary.
    #[test]
    fn fused_sampling_matches_hash_threshold_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        pick in 0usize..6,
        bounds in (-60.0f64..160.0, -60.0f64..160.0),
        cat in 0usize..6,
        grain in 1usize..96,
        rate in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        use hillview_columnar::predicate::filter_members_rowwise;
        use hillview_columnar::row_sampled;
        use hillview_sketch::traits::summarize_filtered_split;

        let n = t.num_rows();
        let table = Arc::new(t);
        let v = TableView::with_members(
            table.clone(), Arc::new(membership(kind, &raw, cuts, n)));
        let p = predicate(pick, bounds, cat);

        // Reference sample: rowwise-filtered membership ∩ hash test.
        let filtered = filter_members_rowwise(&table, &p, v.members()).unwrap();
        let sample: Vec<usize> = filtered
            .iter()
            .filter(|&r| row_sampled(r as u64, rate, seed))
            .collect();

        // Sampled heavy hitters: counts over the reference sample, exactly.
        let hh = SampledHeavyHittersSketch::new("C", 4, rate);
        let fused = hh.summarize_filtered(&v, &p, seed).unwrap();
        let col = table.column_by_name("C").unwrap();
        let mut want: std::collections::HashMap<hillview_columnar::Value, u64> =
            std::collections::HashMap::new();
        let mut present = 0u64;
        for &r in &sample {
            let val = col.value(r);
            if !val.is_missing() {
                present += 1;
                *want.entry(val).or_insert(0) += 1;
            }
        }
        prop_assert_eq!(fused.sampled, present);
        let mut got: Vec<_> = fused.counts.clone();
        got.sort();
        let mut want: Vec<_> = want.into_iter().collect();
        want.sort();
        prop_assert_eq!(got, want);
        // Tiling: parent-planned leaves fold to the unsplit fused summary.
        prop_assert_eq!(
            summarize_filtered_split(&hh, &v, &p, grain, seed).unwrap(),
            fused
        );

        // Quantile: keys of the reference sample (cap chosen above any
        // plausible sample size, so no thinning confounds the comparison),
        // population = the full filtered membership.
        let order = SortOrder::ascending(&["I", "X"]);
        let qs = QuantileSketch::new(order.clone(), rate, 100_000);
        let fused = qs.summarize_filtered(&v, &p, seed).unwrap();
        prop_assert_eq!(fused.population, filtered.len() as u64);
        let resolved = order.resolve(&table).unwrap();
        let want_keys: Vec<_> = sample.iter().map(|&r| resolved.key(&table, r)).collect();
        prop_assert_eq!(&fused.keys, &want_keys);
        prop_assert_eq!(
            summarize_filtered_split(&qs, &v, &p, grain, seed).unwrap().keys,
            want_keys
        );
    }

    /// Chain the law to the per-row reference: the fused pass must equal
    /// the rowwise kernel walked over the rowwise-filtered membership.
    #[test]
    fn fused_matches_rowwise_reference(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        pick in 0usize..6,
        bounds in (-60.0f64..160.0, -60.0f64..160.0),
        cat in 0usize..6,
        seed in any::<u64>(),
    ) {
        use hillview_columnar::predicate::filter_members_rowwise;
        let n = t.num_rows();
        let table = Arc::new(t);
        let v = TableView::with_members(
            table.clone(), Arc::new(membership(kind, &raw, cuts, n)));
        let p = predicate(pick, bounds, cat);
        let narrowed = TableView::with_members(
            table.clone(),
            Arc::new(filter_members_rowwise(&table, &p, v.members()).unwrap()),
        );
        let hist = HistogramSketch::streaming("X", num_spec());
        prop_assert_eq!(
            hist.summarize_filtered(&v, &p, seed).unwrap(),
            hist.summarize_rowwise(&narrowed, seed).unwrap()
        );
        let mg = MisraGriesSketch::new("C", 4);
        prop_assert_eq!(
            mg.summarize_filtered(&v, &p, seed).unwrap(),
            mg.summarize_rowwise(&narrowed, seed).unwrap()
        );
        let mo = MomentsSketch::new("X", 4);
        let fused = mo.summarize_filtered(&v, &p, seed).unwrap();
        let rowwise = mo.summarize_rowwise(&narrowed, seed).unwrap();
        prop_assert_eq!(fused.present, rowwise.present);
        prop_assert_eq!(fused.missing, rowwise.missing);
        prop_assert_eq!(fused.min, rowwise.min);
        prop_assert_eq!(fused.max, rowwise.max);
        for (f, r) in fused.sums.iter().zip(&rowwise.sums) {
            prop_assert!(f.to_bits() == r.to_bits(), "power sums differ: {f} vs {r}");
        }
        let ds = DistinctSketch::new("C");
        prop_assert_eq!(
            ds.summarize_filtered(&v, &p, seed).unwrap(),
            ds.summarize_rowwise(&narrowed, seed).unwrap()
        );
        let fs = FindSketch::new(
            "C", "a", StrMatchKind::Substring, SortOrder::ascending(&["I", "X"]));
        prop_assert_eq!(
            fs.summarize_filtered(&v, &p, seed).unwrap(),
            fs.summarize_rowwise(&narrowed, seed).unwrap()
        );
    }

    /// Fused split law for exact-merge kernels: folding parent-planned
    /// leaves of `summarize_filtered_range` equals the unsplit fused pass
    /// at every grain — what keeps PR 3's parallel leaves and PR 6's
    /// retry-on-failure sites correct under fusion.
    #[test]
    fn fused_split_equals_unsplit_for_exact_kernels(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        pick in 0usize..6,
        bounds in (-60.0f64..160.0, -60.0f64..160.0),
        cat in 0usize..6,
        grain in 1usize..96,
        seed in any::<u64>(),
    ) {
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let p = predicate(pick, bounds, cat);
        macro_rules! split_law {
            ($sk:expr) => {{
                let sk = $sk;
                prop_assert_eq!(
                    summarize_filtered_split(&sk, &v, &p, grain, seed).unwrap(),
                    sk.summarize_filtered(&v, &p, seed).unwrap(),
                    "fused split law failed for {} under {:?}", sk.name(), &p
                );
            }};
        }
        split_law!(CountSketch::rows());
        split_law!(CountSketch::of_column("X"));
        split_law!(HistogramSketch::streaming("X", num_spec()));
        split_law!(HistogramSketch::streaming("C", str_spec()));
        split_law!(StackedHistogramSketch::streaming("I", "C", num_spec(), str_spec()));
        split_law!(BottomKSketch::new("C", 8));
        split_law!(DistinctSketch::new("I"));
        split_law!(NextKSketch::first_page(SortOrder::ascending(&["C", "I"]), 5));
        split_law!(FindSketch::new(
            "C", "a", StrMatchKind::Substring, SortOrder::ascending(&["I", "X"])));
        split_law!(RangeSketch::new("X"));
        split_law!(QuantileSketch::new(SortOrder::ascending(&["I", "X"]), 1.0, 100_000));
    }

    /// The fusion law is invisible to the encoding layer: identical fused
    /// summaries whichever physical storage backs the integer column, with
    /// split boundaries landing mid-word, mid-run, mid-delta-block.
    #[test]
    fn fused_law_across_encodings(
        vals in proptest::collection::vec((0.0f64..1.0, -40i64..40), 1..300),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        bounds in (-50.0f64..50.0, -50.0f64..50.0),
        grain in 1usize..96,
    ) {
        use hillview_columnar::{I64Storage, NullMask};
        let n = vals.len();
        let data: Vec<i64> = vals.iter().map(|r| r.1).collect();
        let nulls = NullMask::from_flags(vals.iter().map(|r| r.0 < 0.15), n);
        let mut columns: Vec<I64Column> = vec![I64Column::plain(data.clone(), nulls.clone())];
        if let Some(s) = I64Storage::bit_packed_of(&data) {
            columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        if let Some(s) = I64Storage::run_length_of(&data) {
            columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        // Delta needs ascending data: sorted copy, plain vs delta.
        let mut ascending = data.clone();
        ascending.sort_unstable();
        let mut delta_columns: Vec<I64Column> =
            vec![I64Column::plain(ascending.clone(), nulls.clone())];
        if let Some(s) = I64Storage::delta_of(&ascending) {
            delta_columns.push(I64Column::with_storage(s, nulls.clone()));
        }
        let members = Arc::new(membership(kind, &raw, cuts, n));
        let (a, b) = bounds;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p = Predicate::range("V", lo, hi);
        let hist = HistogramSketch::streaming("V", num_spec());
        let mo = MomentsSketch::new("V", 3);
        for group in [columns, delta_columns] {
            let mut results = Vec::new();
            for col in group {
                let t = Table::builder()
                    .column("V", ColumnKind::Int, Column::Int(col))
                    .build()
                    .unwrap();
                let v = TableView::with_members(Arc::new(t), members.clone());
                prop_assert!(fused_law_holds(&hist, &v, &p, grain, 0));
                let h = hist.summarize_filtered(&v, &p, 0).unwrap();
                let m = mo.summarize_filtered(&v, &p, 0).unwrap();
                results.push((h, m.present, m.missing, m.min, m.max,
                    m.sums.iter().map(|s| s.to_bits()).collect::<Vec<_>>()));
            }
            for r in &results[1..] {
                prop_assert_eq!(r, &results[0]);
            }
        }
    }

    /// With the `simd` feature on, the fused path's summaries are
    /// byte-identical between the vector codegen and the forced-scalar
    /// fallback — and both still satisfy the fusion law.
    #[cfg(feature = "simd")]
    #[test]
    fn fused_simd_on_off_byte_identical(
        t in table_strategy(),
        kind in 0usize..5,
        raw in proptest::collection::vec(any::<u32>(), 0..200),
        cuts in (0.0f64..1.0, 0.0f64..1.0),
        pick in 0usize..6,
        bounds in (-60.0f64..160.0, -60.0f64..160.0),
        cat in 0usize..6,
        seed in any::<u64>(),
    ) {
        use hillview_columnar::simd::set_force_scalar;
        let n = t.num_rows();
        let v = TableView::with_members(Arc::new(t), Arc::new(membership(kind, &raw, cuts, n)));
        let p = predicate(pick, bounds, cat);
        let hist = HistogramSketch::streaming("X", num_spec());
        let stack = StackedHistogramSketch::streaming("I", "C", num_spec(), str_spec());
        let count = CountSketch::of_column("X");
        let mo = MomentsSketch::new("X", 4);
        let run = |scalar: bool| {
            set_force_scalar(scalar);
            let m = mo.summarize_filtered(&v, &p, seed).unwrap();
            let out = (
                hist.summarize_filtered(&v, &p, seed).unwrap(),
                stack.summarize_filtered(&v, &p, seed).unwrap(),
                count.summarize_filtered(&v, &p, seed).unwrap(),
                (m.present, m.missing, m.min.map(f64::to_bits), m.max.map(f64::to_bits),
                 m.sums.iter().map(|s| s.to_bits()).collect::<Vec<_>>()),
            );
            set_force_scalar(false);
            out
        };
        let fast = run(false);
        let slow = run(true);
        prop_assert_eq!(&fast, &slow);
        // Both modes also satisfy the law against the (scalar) two-pass.
        let narrowed = filtered_view(&v, &p).unwrap();
        prop_assert_eq!(&fast.0, &hist.summarize(&narrowed, seed).unwrap());
    }
}
